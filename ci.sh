#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# No network access required — the workspace has no external
# dependencies (see DESIGN.md §5).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings + curated pedantic lints) =="
cargo clippy --workspace --all-targets -- -D warnings \
  -W clippy::redundant-closure-for-method-calls \
  -W clippy::semicolon-if-nothing-returned \
  -W clippy::manual-let-else \
  -W clippy::explicit-iter-loop \
  -W clippy::needless-continue \
  -W clippy::inefficient-to-string

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "== observability artifact smoke (fig1, scaled down) =="
CI_RESULTS=$(mktemp -d)
trap 'rm -rf "$CI_RESULTS"' EXIT
TS_SCALE=0.05 TS_RESULTS="$CI_RESULTS" \
  cargo run -q --release -p tscout-bench --bin fig1_user_vs_kernel
test -s "$CI_RESULTS/profile_fig1.folded" \
  || { echo "FAIL: profile_fig1.folded missing or empty"; exit 1; }
grep -q ';' "$CI_RESULTS/profile_fig1.folded" \
  || { echo "FAIL: profile_fig1.folded has no multi-frame stacks"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$CI_RESULTS/timeseries_fig1.json" >/dev/null \
    || { echo "FAIL: timeseries_fig1.json is not valid JSON"; exit 1; }
else
  grep -q '"timeseries"' "$CI_RESULTS/timeseries_fig1.json" \
    || { echo "FAIL: timeseries_fig1.json missing timeseries key"; exit 1; }
  grep -q '"attribution"' "$CI_RESULTS/timeseries_fig1.json" \
    || { echo "FAIL: timeseries_fig1.json missing attribution key"; exit 1; }
fi
test -s "$CI_RESULTS/health_fig1.json" \
  || { echo "FAIL: health_fig1.json missing or empty"; exit 1; }
grep -q '"subsystems"' "$CI_RESULTS/health_fig1.json" \
  || { echo "FAIL: health_fig1.json missing subsystems key"; exit 1; }
echo "observability artifacts OK"

echo "== archive smoke (write -> reopen -> scan) =="
TS_RESULTS="$CI_RESULTS" cargo run -q --release --example archive_smoke
test -d "$CI_RESULTS/archive_smoke" \
  || { echo "FAIL: archive_smoke store missing"; exit 1; }
echo "archive smoke OK"

echo "== metric docs cross-check (README table + runtime names) =="
cargo run -q --release -p tscout-bench --bin metrics_doc -- --check

echo "== drift-detector smoke (injected shift must alert, control silent) =="
# Fixed virtual duration by design (no TS_SCALE): the binary asserts the
# detector contract itself; CI checks it exits clean and dumps health.
TS_RESULTS="$CI_RESULTS" cargo run -q --release -p tscout-bench --bin ablation_drift
test -s "$CI_RESULTS/health_ablation_drift.json" \
  || { echo "FAIL: health_ablation_drift.json missing or empty"; exit 1; }
grep -q 'ou_drift' "$CI_RESULTS/health_ablation_drift.json" \
  || { echo "FAIL: health_ablation_drift.json records no ou_drift alerts"; exit 1; }
test -s "$CI_RESULTS/flightrec_ablation_drift_1.json" \
  || { echo "FAIL: CRITICAL transition left no flight-recorder bundle"; exit 1; }
echo "drift smoke OK"

echo "== lineage-trace smoke (traced workload -> artifact + accounting) =="
# Fixed virtual duration by design (no TS_SCALE): the binary asserts the
# tracer contract itself; CI re-checks the exported artifact.
TS_RESULTS="$CI_RESULTS" cargo run -q --release -p tscout-bench --bin ablation_trace
TRACE_JSON="$CI_RESULTS/trace_ablation_trace.json"
test -s "$TRACE_JSON" \
  || { echo "FAIL: trace_ablation_trace.json missing or empty"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TRACE_JSON" <<'EOF' || { echo "FAIL: trace artifact check"; exit 1; }
import json, sys
t = json.load(open(sys.argv[1]))
st = t["stats"]
assert st["started"] == st["completed"] + st["dropped"] + st["in_flight"], \
    f"trace accounting does not close: {st}"
done = [x for x in t["traces"] if x["outcome"] != "in_flight"]
assert len(done) >= 1, "no completed traces in artifact"
for tr in done:
    assert tr["monotone"], f"trace {tr['id']} not monotone"
    prev = tr["started_ns"]
    for s in tr["stages"]:
        assert s["enter_ns"] >= prev - 1e-9, f"trace {tr['id']}: stage enters backwards"
        assert s["exit_ns"] >= s["enter_ns"] - 1e-9, f"trace {tr['id']}: stage exits backwards"
        prev = s["enter_ns"]
print(f"trace artifact OK: {len(done)} completed traces, accounting closes")
EOF
else
  grep -q '"monotone": true' "$TRACE_JSON" \
    || { echo "FAIL: no monotone completed trace in artifact"; exit 1; }
fi
echo "trace smoke OK"

echo "== optimizer smoke (all collector programs re-verify + shrink) =="
# Loads every probe-layout collector triple with the optimizer off and
# on, re-verifies each optimized program, compares samples bit for bit,
# and fails if the total executed-instruction reduction drops below 15%.
cargo run -q --release -p tscout-bench --bin opt_smoke
echo "optimizer smoke OK"

echo "== query-stats smoke (EXPLAIN ANALYZE + ts_stat_statements) =="
# Fixed virtual duration by design (no TS_SCALE): the binary asserts the
# accounting contract itself (per-row consistency, calls vs recorded,
# model generation in the EXPLAIN ANALYZE footer); CI re-checks the CSV.
TS_RESULTS="$CI_RESULTS" cargo run -q --release -p tscout-bench --bin ablation_query_stats
QS_CSV="$CI_RESULTS/ablation_query_stats.csv"
test -s "$QS_CSV" \
  || { echo "FAIL: ablation_query_stats.csv missing or empty"; exit 1; }
head -1 "$QS_CSV" | grep -q 'fingerprint,calls' \
  || { echo "FAIL: ablation_query_stats.csv has wrong header"; exit 1; }
test "$(wc -l < "$QS_CSV")" -ge 2 \
  || { echo "FAIL: ablation_query_stats.csv has no data rows"; exit 1; }
echo "query-stats smoke OK"

echo "== action-engine smoke (closed loop: drift -> retrain -> recover) =="
# Fixed virtual duration by design (no TS_SCALE): the binary asserts the
# closed-loop contract itself (engine arm recovers, control stays
# CRITICAL, every closed action archived an efficacy sample); CI
# re-checks the exported action log.
TS_RESULTS="$CI_RESULTS" cargo run -q --release -p tscout-bench --bin ablation_actions
ACTIONS_JSON="$CI_RESULTS/actions_ablation_actions.json"
test -s "$ACTIONS_JSON" \
  || { echo "FAIL: actions_ablation_actions.json missing or empty"; exit 1; }
grep -q '"kind": "trigger_retrain"' "$ACTIONS_JSON" \
  || { echo "FAIL: action log records no retrain action"; exit 1; }
grep -q '"state": "observed"' "$ACTIONS_JSON" \
  || { echo "FAIL: action log has no closed (observed) actions"; exit 1; }
grep -q 'engine,' "$CI_RESULTS/ablation_actions.csv" \
  || { echo "FAIL: ablation_actions.csv has no engine arm row"; exit 1; }
echo "action-engine smoke OK"

echo "== operator-plane smoke (obsd daemon: live scrape + SQL/registry agreement) =="
# Fixed virtual duration by design (no TS_SCALE): the binary hammers the
# daemon over a real TCP socket while the run collects, then checks that
# the OpenMetrics exposition, the JSON table API, and the read-only SQL
# endpoint all agree with the registry exactly.
TS_RESULTS="$CI_RESULTS" cargo run -q --release --example obsd_smoke
test -s "$CI_RESULTS/obsd_smoke.addr" \
  || { echo "FAIL: obsd_smoke.addr missing (daemon never bound/advertised)"; exit 1; }
OBSD_JSON="$CI_RESULTS/obsd_smoke.json"
test -s "$OBSD_JSON" \
  || { echo "FAIL: obsd_smoke.json missing or empty"; exit 1; }
grep -q '"live_requests"' "$OBSD_JSON" \
  || { echo "FAIL: obsd_smoke.json records no live_requests"; exit 1; }
grep -q '"live_requests": 0' "$OBSD_JSON" \
  && { echo "FAIL: no request reached the daemon during the run"; exit 1; }
echo "operator-plane smoke OK"

echo "CI gate passed."
