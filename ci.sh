#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
# No network access required — the workspace has no external
# dependencies (see DESIGN.md §5).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "CI gate passed."
