//! # tscout-obsd — the operator plane
//!
//! An embedded observability daemon: a std-only HTTP/1.1 server over
//! [`std::net::TcpListener`] that exposes the live telemetry registry
//! of a running collection pipeline — OpenMetrics exposition, health
//! probes, JSON snapshots of the `ts_*` virtual tables, a read-only
//! SQL endpoint, and flight-recorder bundle access — plus the
//! `tscoutctl` client binary.
//!
//! ## The bit-identity contract
//!
//! The paper's accuracy story depends on collected samples being a
//! faithful record of the DBMS's work; an observer that perturbs the
//! observed timeline corrupts its own training data. The daemon
//! therefore follows the same discipline as the lineage tracer and the
//! action engine (PRs 6 and 9), strengthened for a real OS thread:
//!
//! - **Serving reads atomically-snapshotted state.** Every request
//!   lock-clones the simulation's [`Registry`] and renders from the
//!   clone. The simulation thread never blocks on request processing —
//!   only on the clone itself, which is the same lock it takes for any
//!   counter bump.
//! - **Nothing on the serving path touches a virtual clock.** Request
//!   handling runs on OS threads against snapshots; the SQL endpoint
//!   executes against a *server-private* database whose kernel clocks
//!   belong to nobody in the simulation.
//! - **Self-metrics live in a server-owned registry** (merged into the
//!   `/metrics` exposition at render time), so the simulation registry
//!   — and every artifact dumped from it — is byte-identical with the
//!   server on or off.
//!
//! `tests/obsd_plane.rs` (repo root) enforces the contract end to end:
//! archived samples from a hammered run are byte-identical to a
//! server-off run.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod client;
pub mod http;
pub mod json;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use noisetap::sql::ast::{Expr, Projection, SelectStmt, Stmt};
use noisetap::sql::parser::parse;
use noisetap::{Database, Row, SessionId, Value};
use tscout_kernel::{HardwareProfile, Kernel};
use tscout_telemetry::{HealthState, Registry, Telemetry};

use crate::http::Request;

/// `GET /api/v1/<key>` → `ts_*` virtual table.
pub const API_TABLES: &[(&str, &str)] = &[
    ("ou", "ts_stat_ou"),
    ("subsystem", "ts_stat_subsystem"),
    ("model", "ts_stat_model"),
    ("alerts", "ts_alerts"),
    ("traces", "ts_traces"),
    ("statements", "ts_stat_statements"),
    ("actions", "ts_actions"),
    ("pipeline", "ts_stat_pipeline"),
];

/// Listener configuration. The default binds an ephemeral localhost
/// port — fig binaries opt in via `TSCOUT_OBSD` (see the workload
/// driver) and discover the port through [`ObsdConfig::addr_file`].
#[derive(Debug, Clone)]
pub struct ObsdConfig {
    /// Bind address. On `EADDRINUSE` the server falls back to an
    /// ephemeral port on the same host instead of failing the run.
    pub addr: String,
    /// Worker threads serving parsed requests.
    pub workers: usize,
    /// Accepted connections waiting for a worker beyond the ones in
    /// flight; excess connections get an immediate 503 and count into
    /// `tscout_obsd_rejected_total`.
    pub max_pending: usize,
    /// Per-connection read timeout, ms.
    pub read_timeout_ms: u64,
    /// Per-connection write timeout, ms.
    pub write_timeout_ms: u64,
    /// If set, the bound address is written here on startup (ephemeral
    /// port discovery for scrape clients and CI).
    pub addr_file: Option<PathBuf>,
}

impl Default for ObsdConfig {
    fn default() -> Self {
        ObsdConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_pending: 32,
            read_timeout_ms: 2_000,
            write_timeout_ms: 2_000,
            addr_file: None,
        }
    }
}

/// Register every `tscout_obsd_*` metric name at zero. The server calls
/// this on its own registry at startup; `metrics_doc --check` calls it
/// on the smoke registry so the documented names are provably live.
pub fn predeclare_self_metrics(t: &Telemetry) {
    t.counter_add("tscout_obsd_requests_total", &[("endpoint", "metrics")], 0);
    t.counter_add("tscout_obsd_errors_total", &[("endpoint", "metrics")], 0);
    t.counter_add("tscout_obsd_rejected_total", &[], 0);
    t.hist_declare("tscout_obsd_request_ns", &[]);
}

/// State shared between the accept thread and the workers.
struct Shared {
    /// The simulation's live registry handle (lock-snapshot per request).
    sim: Telemetry,
    /// Server-owned self-metrics, merged into `/metrics` at render time.
    self_tel: Telemetry,
    /// The server-private SQL plane.
    sql: Mutex<SqlPlane>,
}

/// A private `Database` whose registry is overwritten with the latest
/// snapshot before each query — `ts_*` virtual tables flow through the
/// normal noisetap parser/planner/executor, but all execution cost
/// lands on clocks the simulation never reads.
struct SqlPlane {
    db: Database,
    sid: SessionId,
}

impl SqlPlane {
    fn new() -> SqlPlane {
        let mut db = Database::new(Kernel::new(HardwareProfile::server_2x20()));
        let sid = db.create_session();
        SqlPlane { db, sid }
    }
}

/// The running daemon. Dropping it (or calling [`ObsdServer::shutdown`])
/// stops the listener and joins every thread.
pub struct ObsdServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ObsdServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsdServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic on a serving path only loses one response, never server
    // liveness; recover rather than propagate poisoning.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ObsdServer {
    /// Bind and start serving `telemetry` in background threads.
    pub fn start(cfg: ObsdConfig, telemetry: Telemetry) -> io::Result<ObsdServer> {
        let listener = match TcpListener::bind(&cfg.addr) {
            Ok(l) => l,
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                // Robustness satellite: a taken port degrades to an
                // ephemeral one on the same host, never a dead run.
                let host = cfg
                    .addr
                    .rsplit_once(':')
                    .map_or("127.0.0.1", |(host, _)| host);
                TcpListener::bind(format!("{host}:0"))?
            }
            Err(e) => return Err(e),
        };
        let addr = listener.local_addr()?;
        if let Some(f) = &cfg.addr_file {
            std::fs::write(f, addr.to_string())?;
        }
        let self_tel = Telemetry::new();
        predeclare_self_metrics(&self_tel);
        let shared = Arc::new(Shared {
            sim: telemetry,
            self_tel,
            sql: Mutex::new(SqlPlane::new()),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(cfg.max_pending);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..cfg.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&rx, &shared))
            })
            .collect();
        let accept = {
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            std::thread::spawn(move || accept_loop(&listener, &tx, &stop, &shared, &cfg))
        };
        Ok(ObsdServer {
            addr,
            stop,
            accept: Some(accept),
            workers,
            shared,
        })
    }

    /// The bound address (real port even when configured ephemeral).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server-owned registry holding `tscout_obsd_*` self-metrics.
    pub fn self_telemetry(&self) -> &Telemetry {
        &self.shared.self_tel
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        for _ in 0..3 {
            if TcpStream::connect(self.addr).is_ok() {
                break;
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ObsdServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    stop: &AtomicBool,
    shared: &Shared,
    cfg: &ObsdConfig,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        stream
            .set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))))
            .ok();
        stream
            .set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms.max(1))))
            .ok();
        stream.set_nodelay(true).ok();
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut s)) => {
                // Bounded concurrency: turn the connection away rather
                // than queue without limit behind a slow scrape.
                shared
                    .self_tel
                    .counter_inc("tscout_obsd_rejected_total", &[]);
                let _ = http::write_response(&mut s, 503, "text/plain", b"busy\n");
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Shared) {
    loop {
        let stream = {
            let guard = lock_recovering(rx);
            guard.recv()
        };
        match stream {
            Ok(mut s) => handle_connection(&mut s, shared),
            Err(_) => break, // sender dropped: shutdown
        }
    }
}

fn handle_connection(stream: &mut TcpStream, shared: &Shared) {
    let t0 = std::time::Instant::now();
    let (endpoint, status, content_type, body) = match http::read_request(stream) {
        Err(e) => (
            "bad",
            400u16,
            "text/plain",
            format!("bad request: {e}\n").into_bytes(),
        ),
        Ok(req) => {
            let endpoint = endpoint_label(&req.path);
            // A handler panic must cost one response, not the server:
            // the listener keeps serving while the observed system (or
            // a handler edge case) misbehaves.
            match catch_unwind(AssertUnwindSafe(|| route(&req, shared))) {
                Ok((status, content_type, body)) => (endpoint, status, content_type, body),
                Err(_) => (endpoint, 500, "text/plain", b"internal error\n".to_vec()),
            }
        }
    };
    let labels = [("endpoint", endpoint)];
    shared
        .self_tel
        .counter_inc("tscout_obsd_requests_total", &labels);
    if status >= 400 {
        shared
            .self_tel
            .counter_inc("tscout_obsd_errors_total", &labels);
    }
    // Wall-clock service time into the server-owned registry — the
    // simulation's virtual clocks are never involved.
    shared.self_tel.hist_record(
        "tscout_obsd_request_ns",
        &[],
        t0.elapsed().as_nanos() as f64,
    );
    let _ = http::write_response(stream, status, content_type, &body);
}

/// Low-cardinality endpoint label for self-metrics.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/readyz" => "readyz",
        "/api/v1/sql" => "sql",
        p if p.starts_with("/api/v1/flightrec") => "flightrec",
        p => p
            .strip_prefix("/api/v1/")
            .and_then(|key| API_TABLES.iter().find(|(k, _)| *k == key))
            .map_or("other", |(k, _)| k),
    }
}

type Response = (u16, &'static str, Vec<u8>);

fn route(req: &Request, shared: &Shared) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => metrics_endpoint(shared),
        ("GET", "/healthz") => health_endpoint(shared, false),
        ("GET", "/readyz") => health_endpoint(shared, true),
        ("POST", "/api/v1/sql") => sql_endpoint(req, shared),
        ("GET", "/api/v1/flightrec") => flightrec_list(shared),
        ("GET", p) if p.starts_with("/api/v1/flightrec/") => {
            flightrec_fetch(shared, &p["/api/v1/flightrec/".len()..])
        }
        ("GET", p) if p.strip_prefix("/api/v1/").is_some_and(is_api_table) => {
            table_endpoint(shared, &p["/api/v1/".len()..])
        }
        (_, "/metrics" | "/healthz" | "/readyz" | "/api/v1/sql") => method_not_allowed(),
        (_, p) if p.strip_prefix("/api/v1/").is_some_and(is_api_table) => method_not_allowed(),
        _ => (404, "text/plain", b"not found\n".to_vec()),
    }
}

fn is_api_table(key: &str) -> bool {
    API_TABLES.iter().any(|(k, _)| *k == key)
}

fn method_not_allowed() -> Response {
    (405, "text/plain", b"method not allowed\n".to_vec())
}

/// Lock-clone the simulation registry: the atomic snapshot every
/// endpoint serves from.
fn snapshot(shared: &Shared) -> Registry {
    shared.sim.with_registry(|r| r.clone())
}

fn metrics_endpoint(shared: &Shared) -> Response {
    let mut snap = snapshot(shared);
    let self_snap = shared.self_tel.with_registry(|r| r.clone());
    // Union, not interference: the self-registry shares no families
    // with the simulation, so merge just appends its families.
    snap.merge_from(&self_snap);
    (
        200,
        "text/plain; version=0.0.4; charset=utf-8",
        snap.to_prometheus().into_bytes(),
    )
}

fn health_endpoint(shared: &Shared, ready: bool) -> Response {
    let snap = snapshot(shared);
    let states = snap.health().subsystem_states();
    let worst = states.values().copied().max().unwrap_or(HealthState::Ok);
    let subsystems: Vec<String> = states
        .iter()
        .map(|(s, st)| format!("\"{}\":\"{}\"", json::escape(s), st.name()))
        .collect();
    let body = format!(
        "{{\"status\":\"{}\",\"subsystems\":{{{}}}}}",
        worst.name(),
        subsystems.join(",")
    );
    // Liveness (/healthz) reports state but stays 200 while serving;
    // readiness (/readyz) goes 503 when any subsystem is CRITICAL.
    let status = if ready && worst == HealthState::Critical {
        503
    } else {
        200
    };
    (status, "application/json", body.into_bytes())
}

fn table_endpoint(shared: &Shared, key: &str) -> Response {
    let Some((_, table)) = API_TABLES.iter().find(|(k, _)| *k == key) else {
        return (404, "text/plain", b"not found\n".to_vec());
    };
    let snap_tel = Telemetry::new();
    snap_tel.with_registry(|r| *r = snapshot(shared));
    let schema = noisetap::stat::virtual_schema(table).expect("API_TABLES maps to virtual tables");
    let rows = noisetap::stat::virtual_rows(table, &snap_tel);
    let names: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
    (
        200,
        "application/json",
        rows_json(Some(table), &names, &rows).into_bytes(),
    )
}

fn sql_endpoint(req: &Request, shared: &Shared) -> Response {
    let err = |msg: &str| -> Response {
        (
            400,
            "application/json",
            format!("{{\"error\":\"{}\"}}", json::escape(msg)).into_bytes(),
        )
    };
    let Ok(sql) = std::str::from_utf8(&req.body) else {
        return err("body is not UTF-8");
    };
    let sql = sql.trim();
    if sql.is_empty() {
        return err("empty query");
    }
    // Parse up front for projection names; the read-only gate proper
    // lives in Database::execute_readonly.
    let stmt = match parse(sql) {
        Ok(s) => s,
        Err(e) => return err(&format!("parse error: {e}")),
    };
    let Stmt::Select(sel) = &stmt else {
        return err("read-only endpoint: only SELECT is accepted");
    };
    let names = projection_names(sel);
    let snap = snapshot(shared);
    let mut plane = lock_recovering(&shared.sql);
    let sid = plane.sid;
    plane.db.kernel.telemetry.with_registry(|r| *r = snap);
    match plane.db.execute_readonly(sid, sql, &[]) {
        Ok(out) => (
            200,
            "application/json",
            rows_json(None, &names, &out.rows).into_bytes(),
        ),
        Err(e) => err(&e.to_string()),
    }
}

fn flightrec_list(shared: &Shared) -> Response {
    let snap = snapshot(shared);
    let Some((dir, fig)) = snap.flight_recorder_target() else {
        return (
            200,
            "application/json",
            b"{\"armed\":false,\"bundles\":[]}".to_vec(),
        );
    };
    let prefix = format!("flightrec_{fig}_");
    let mut bundles: Vec<(String, u64)> = std::fs::read_dir(&dir)
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let keep = name.starts_with(&prefix) && name.ends_with(".json");
            keep.then(|| (name, e.metadata().map_or(0, |m| m.len())))
        })
        .collect();
    bundles.sort();
    let rendered: Vec<String> = bundles
        .iter()
        .map(|(name, bytes)| format!("{{\"name\":\"{}\",\"bytes\":{bytes}}}", json::escape(name)))
        .collect();
    let body = format!(
        "{{\"armed\":true,\"dir\":\"{}\",\"fig\":\"{}\",\"bundles\":[{}]}}",
        json::escape(&dir.to_string_lossy()),
        json::escape(&fig),
        rendered.join(",")
    );
    (200, "application/json", body.into_bytes())
}

fn flightrec_fetch(shared: &Shared, name: &str) -> Response {
    // Only bare bundle file names: no separators, no traversal.
    let malformed = name.contains('/')
        || name.contains('\\')
        || name.contains("..")
        || !name.starts_with("flightrec_")
        || !name.ends_with(".json");
    if malformed {
        return (400, "text/plain", b"bad bundle name\n".to_vec());
    }
    let Some((dir, _)) = snapshot(shared).flight_recorder_target() else {
        return (404, "text/plain", b"flight recorder not armed\n".to_vec());
    };
    match std::fs::read(dir.join(name)) {
        Ok(bytes) => (200, "application/json", bytes),
        Err(_) => (404, "text/plain", b"no such bundle\n".to_vec()),
    }
}

/// `{"table":...,"columns":[...],"rows":[[...],...]}`.
fn rows_json(table: Option<&str>, columns: &[String], rows: &[Row]) -> String {
    let cols: Vec<String> = columns
        .iter()
        .map(|c| format!("\"{}\"", json::escape(c)))
        .collect();
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(value_json).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    let prefix = table.map_or(String::new(), |t| {
        format!("\"table\":\"{}\",", json::escape(t))
    });
    format!(
        "{{{prefix}\"columns\":[{}],\"rows\":[{}]}}",
        cols.join(","),
        rendered.join(",")
    )
}

fn value_json(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => json::num(*f),
        Value::Text(s) => format!("\"{}\"", json::escape(s)),
        Value::Bool(b) => b.to_string(),
    }
}

/// Output column names for a SELECT, matching executor row order.
fn projection_names(sel: &SelectStmt) -> Vec<String> {
    let mut out = Vec::new();
    for p in &sel.projections {
        match p {
            Projection::Star => {
                let tables = std::iter::once(&sel.from).chain(sel.join.iter().map(|(t, _)| t));
                for t in tables {
                    match noisetap::stat::virtual_schema(&t.name) {
                        Some(schema) => {
                            out.extend(schema.columns.iter().map(|c| c.name.clone()));
                        }
                        None => out.push("*".to_string()),
                    }
                }
            }
            Projection::Expr(e) => out.push(expr_name(e)),
        }
    }
    out
}

fn expr_name(e: &Expr) -> String {
    match e {
        Expr::Column(_, c) => c.clone(),
        Expr::Agg(f, col) => format!("{}({})", f.name(), col.as_deref().unwrap_or("*")),
        Expr::Literal(v) => v.to_string(),
        Expr::Param(i) => format!("${}", i + 1),
        Expr::Binary(..) => "expr".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::io::Write;
    use tscout_telemetry::{Rule, Selector};

    fn start_default(t: &Telemetry) -> ObsdServer {
        ObsdServer::start(ObsdConfig::default(), t.clone()).expect("bind ephemeral")
    }

    fn populated_telemetry() -> Telemetry {
        let t = Telemetry::new();
        t.counter_add("tscout_samples_begun_total", &[("subsystem", "ee")], 42);
        t.counter_add("tscout_samples_delivered_total", &[("subsystem", "ee")], 40);
        t.gauge_set("tscout_overhead_ratio", &[], 0.004);
        for v in [1e3, 2e3, 5e4, 1e6] {
            t.hist_record("workload_txn_ns", &[("outcome", "committed")], v);
        }
        t
    }

    #[test]
    fn serves_metrics_health_and_tables() {
        let t = populated_telemetry();
        let srv = start_default(&t);
        let addr = srv.addr().to_string();

        let (status, body) = client::get(&addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("tscout_samples_begun_total{subsystem=\"ee\"} 42"));
        assert!(body.contains("# TYPE workload_txn_ns histogram"));
        assert!(body.contains("le=\"+Inf\""));
        // Self-metrics ride along in the same exposition.
        assert!(body.contains("# TYPE tscout_obsd_requests_total counter"));

        let (status, body) = client::get(&addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        let health = Json::parse(&body).unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("OK"));
        assert_eq!(client::get(&addr, "/readyz").unwrap().0, 200);

        for (key, table) in API_TABLES {
            let (status, body) = client::get(&addr, &format!("/api/v1/{key}")).unwrap();
            assert_eq!(status, 200, "{key}");
            let doc = Json::parse(&body).unwrap_or_else(|e| panic!("{key}: {e}\n{body}"));
            assert_eq!(doc.get("table").unwrap().as_str(), Some(*table));
            let cols = doc.get("columns").unwrap().as_arr().unwrap();
            let schema = noisetap::stat::virtual_schema(table).unwrap();
            assert_eq!(cols.len(), schema.columns.len(), "{key}");
        }

        // A second scrape sees the first scrape's self-metrics move.
        let (_, body) = client::get(&addr, "/metrics").unwrap();
        assert!(
            body.contains("tscout_obsd_requests_total{endpoint=\"metrics\"} "),
            "{body}"
        );
        srv.shutdown();
    }

    #[test]
    fn sql_endpoint_is_select_only() {
        let t = populated_telemetry();
        let srv = start_default(&t);
        let addr = srv.addr().to_string();

        let (status, body) = client::post(
            &addr,
            "/api/v1/sql",
            "SELECT count(*) FROM ts_stat_subsystem",
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(
            doc.get("columns").unwrap().as_arr().unwrap()[0].as_str(),
            Some("count(*)")
        );
        assert_eq!(doc.get("rows").unwrap().as_arr().unwrap().len(), 1);

        // Projection columns come back named and in order.
        let (status, body) = client::post(
            &addr,
            "/api/v1/sql",
            "SELECT subsystem, samples FROM ts_stat_ou ORDER BY samples DESC",
        )
        .unwrap();
        assert_eq!(status, 200, "{body}");
        let doc = Json::parse(&body).unwrap();
        let cols: Vec<&str> = doc
            .get("columns")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|c| c.as_str().unwrap())
            .collect();
        assert_eq!(cols, ["subsystem", "samples"]);

        // DML/DDL/txn-control all bounce with 400, never execute.
        for bad in [
            "INSERT INTO ts_alerts VALUES (1)",
            "UPDATE ts_stat_ou SET samples = 0",
            "DELETE FROM ts_stat_ou",
            "CREATE TABLE t (a INT)",
            "BEGIN",
            "EXPLAIN ANALYZE SELECT count(*) FROM ts_stat_ou",
            "not sql at all",
            "SELECT * FROM no_such_table",
        ] {
            let (status, body) = client::post(&addr, "/api/v1/sql", bad).unwrap();
            assert_eq!(status, 400, "{bad} -> {body}");
            assert!(Json::parse(&body).unwrap().get("error").is_some(), "{bad}");
        }
        // GET on the SQL endpoint is a method error, not a crash.
        assert_eq!(client::get(&addr, "/api/v1/sql").unwrap().0, 405);
        assert_eq!(client::get(&addr, "/api/v1/nope").unwrap().0, 404);
        srv.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_and_server_survives() {
        let t = Telemetry::new();
        let srv = start_default(&t);
        let addr = srv.addr().to_string();
        for garbage in [
            "GARBAGE\r\n\r\n",
            "GET\r\n\r\n",
            "GET /metrics SPDY/9\r\n\r\n",
            "GET metrics HTTP/1.1\r\n\r\n",
            "POST /api/v1/sql HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        ] {
            let mut s = TcpStream::connect(&addr).unwrap();
            s.write_all(garbage.as_bytes()).unwrap();
            let mut out = String::new();
            use std::io::Read;
            s.read_to_string(&mut out).unwrap();
            assert!(out.starts_with("HTTP/1.1 400"), "{garbage:?} -> {out}");
        }
        // Still serving afterwards.
        assert_eq!(client::get(&addr, "/healthz").unwrap().0, 200);
        assert!(
            srv.self_telemetry()
                .counter_total("tscout_obsd_errors_total")
                >= 5
        );
        srv.shutdown();
        // Graceful shutdown: the port stops accepting.
        assert!(client::get(&addr, "/healthz").is_err());
    }

    #[test]
    fn serves_while_health_is_critical() {
        // BugForge-style satellite: the endpoint must stay correct while
        // the system it observes degrades to CRITICAL.
        let t = Telemetry::new();
        t.with_registry(|r| {
            r.gauge_set("bad_signal", &[], 10.0);
            r.health_mut().add_rule(Rule {
                name: "bad_signal_high".to_string(),
                subsystem: "data".to_string(),
                selector: Selector::Gauge("bad_signal".to_string()),
                per_label: None,
                warn: 1.0,
                crit: 5.0,
                raise_ticks: 1,
                clear_ticks: 2,
            });
        });
        for i in 1..=3 {
            t.observability_tick(f64::from(i) * 1e9);
        }
        let srv = start_default(&t);
        let addr = srv.addr().to_string();

        let (status, body) = client::get(&addr, "/healthz").unwrap();
        assert_eq!(status, 200, "liveness stays 200 under CRITICAL");
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("CRITICAL"));

        let (status, _) = client::get(&addr, "/readyz").unwrap();
        assert_eq!(status, 503, "readiness trips under CRITICAL");

        // Scrapes and queries keep flowing.
        assert_eq!(client::get(&addr, "/metrics").unwrap().0, 200);
        let (status, body) = client::post(&addr, "/api/v1/sql", "SELECT * FROM ts_alerts").unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(!Json::parse(&body)
            .unwrap()
            .get("rows")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
        srv.shutdown();
    }

    #[test]
    fn connection_bound_rejects_with_503() {
        let t = Telemetry::new();
        let cfg = ObsdConfig {
            workers: 1,
            max_pending: 0,
            read_timeout_ms: 400,
            ..Default::default()
        };
        let srv = ObsdServer::start(cfg, t).unwrap();
        let addr = srv.addr().to_string();
        // Occupy the only worker with a half-open request (it blocks in
        // read until the timeout).
        let mut hog = TcpStream::connect(&addr).unwrap();
        hog.write_all(b"GET /metrics HTTP/1.1\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // The next connection cannot be queued (capacity 0) and bounces.
        let (status, _) = client::get(&addr, "/healthz").unwrap_or((503, String::new()));
        assert_eq!(status, 503);
        assert!(
            srv.self_telemetry()
                .counter_total("tscout_obsd_rejected_total")
                >= 1
        );
        drop(hog);
        // After the hog times out the worker frees up and serving resumes.
        std::thread::sleep(Duration::from_millis(500));
        assert_eq!(client::get(&addr, "/healthz").unwrap().0, 200);
        srv.shutdown();
    }

    #[test]
    fn addr_in_use_falls_back_to_ephemeral() {
        let t = Telemetry::new();
        let first = start_default(&t);
        let cfg = ObsdConfig {
            addr: first.addr().to_string(),
            ..Default::default()
        };
        let second = ObsdServer::start(cfg, t).unwrap();
        assert_ne!(first.addr(), second.addr());
        assert_eq!(
            client::get(&first.addr().to_string(), "/healthz")
                .unwrap()
                .0,
            200
        );
        assert_eq!(
            client::get(&second.addr().to_string(), "/healthz")
                .unwrap()
                .0,
            200
        );
        second.shutdown();
        first.shutdown();
    }

    #[test]
    fn flightrec_endpoints_list_and_fetch_bundles() {
        let dir = std::env::temp_dir().join(format!("obsd_flightrec_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let t = Telemetry::new();
        t.arm_flight_recorder(dir.clone(), "obsd_test");
        t.flight_record(
            1e9,
            &[tscout_telemetry::Alert {
                seq: 0,
                at_ns: 1e9,
                rule: "smoke".into(),
                subsystem: "data".into(),
                target: String::new(),
                from: HealthState::Ok,
                to: HealthState::Critical,
                value: 1.0,
                threshold: 0.5,
            }],
            "",
        )
        .expect("bundle written");
        let srv = start_default(&t);
        let addr = srv.addr().to_string();

        let (status, body) = client::get(&addr, "/api/v1/flightrec").unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("armed"), Some(&Json::Bool(true)));
        let bundles = doc.get("bundles").unwrap().as_arr().unwrap();
        assert_eq!(bundles.len(), 1);
        let name = bundles[0]
            .get("name")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(name.starts_with("flightrec_obsd_test_"));

        let (status, body) = client::get(&addr, &format!("/api/v1/flightrec/{name}")).unwrap();
        assert_eq!(status, 200);
        assert!(Json::parse(&body).is_ok(), "bundle is JSON: {body}");

        // Traversal and junk names never leave the armed directory.
        for bad in [
            "/api/v1/flightrec/../secrets.json",
            "/api/v1/flightrec/flightrec_obsd_test_..%2F.json",
            "/api/v1/flightrec/notabundle.json",
        ] {
            let (status, _) = client::get(&addr, bad).unwrap();
            assert!(status == 400 || status == 404, "{bad} -> {status}");
        }
        let (status, _) =
            client::get(&addr, "/api/v1/flightrec/flightrec_obsd_test_99.json").unwrap();
        assert_eq!(status, 404);
        srv.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unarmed_flightrec_lists_empty() {
        let t = Telemetry::new();
        let srv = start_default(&t);
        let (status, body) = client::get(&srv.addr().to_string(), "/api/v1/flightrec").unwrap();
        assert_eq!(status, 200);
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("armed"), Some(&Json::Bool(false)));
        srv.shutdown();
    }
}
