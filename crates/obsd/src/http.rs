//! Minimal HTTP/1.1 request parsing and response writing over a
//! blocking [`TcpStream`].
//!
//! Deliberately tiny: one request per connection (`Connection: close`),
//! bounded head and body sizes, and every malformed input is an `Err`
//! the server maps to `400` — never a panic (the listener must keep
//! serving while the system it observes degrades).

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum request-head bytes (request line + headers).
pub const MAX_HEAD: usize = 8 * 1024;
/// Maximum request-body bytes (`POST /api/v1/sql` payloads are small).
pub const MAX_BODY: usize = 64 * 1024;

/// A parsed request: method, percent-unescaped-as-is path, and body.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// Read and parse one request. Errors describe the malformation (the
/// server responds 400 with the text).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err("request head too large".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed before request head".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts
        .next()
        .ok_or("request line has no target")?
        .to_string();
    let version = parts.next().ok_or("request line has no version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version {version}"));
    }
    if !path.starts_with('/') {
        return Err("target must be origin-form".into());
    }
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| "bad content-length".to_string())?;
        }
    }
    if content_length > MAX_BODY {
        return Err("request body too large".into());
    }
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write a complete response and flush. Write errors are returned but
/// callers typically ignore them (the peer may already be gone).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}
