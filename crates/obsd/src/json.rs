//! Minimal JSON: escaping/number formatting for the server's render
//! paths and a small recursive-descent parser for the client side
//! (`tscoutctl`, tests) — the workspace builds offline, so no serde.

use std::collections::BTreeMap;

/// Escape a string for embedding in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 as a JSON number (`null` for NaN/Inf, which JSON
/// cannot represent).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Render a scalar for table display (strings unquoted).
    pub fn display(&self) -> String {
        match self {
            Json::Null => "NULL".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => num(*n),
            Json::Str(s) => s.clone(),
            Json::Arr(_) | Json::Obj(_) => "<nested>".to_string(),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates degrade to the replacement char;
                            // the operator plane never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && std::str::from_utf8(&self.bytes[start..end]).is_err()
                    {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "string is not UTF-8")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_typical_documents() {
        let doc = r#"{"table":"ts_stat_ou","columns":["ou","samples"],
                      "rows":[["ExecSeqScan",42],["WalWrite",-1.5]],
                      "armed":false,"note":"a\"b\\c\nd","none":null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("table").unwrap().as_str(), Some("ts_stat_ou"));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_arr().unwrap()[1].as_f64(), Some(42.0));
        assert_eq!(rows[1].as_arr().unwrap()[1].as_f64(), Some(-1.5));
        assert_eq!(v.get("armed"), Some(&Json::Bool(false)));
        assert_eq!(v.get("none"), Some(&Json::Null));
        assert_eq!(v.get("note").unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"x", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn escape_and_num_are_inverse_of_parse() {
        let s = "weird \"quoted\" \\ line\nfeed";
        let doc = format!("{{\"k\":\"{}\"}}", escape(s));
        assert_eq!(
            Json::parse(&doc).unwrap().get("k").unwrap().as_str(),
            Some(s)
        );
        assert_eq!(num(3.0), "3");
        assert_eq!(num(3.25), "3.25");
        assert_eq!(num(f64::NAN), "null");
    }

    #[test]
    fn parses_unicode_strings() {
        let v = Json::parse("{\"k\":\"héllo → wörld\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("héllo → wörld"));
        let v = Json::parse(r#"{"k":"Aé"}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("Aé"));
    }
}
