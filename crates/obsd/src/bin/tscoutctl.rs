//! `tscoutctl` — operator CLI for the tscout-obsd daemon.
//!
//! ```text
//! tscoutctl [--addr HOST:PORT | --addr-file PATH] COMMAND
//!
//! Commands:
//!   top [--interval-ms N] [--iterations N]   per-OU sample-rate view
//!   stat TABLE                                dump one ts_* virtual table
//!   tail-alerts [-n N]                        most recent health transitions
//!   sql QUERY                                 run a read-only SELECT
//!   health                                    subsystem health summary
//! ```
//!
//! The address defaults to `$TSCOUT_OBSD_ADDR`, then the contents of
//! `$TSCOUT_OBSD_ADDR_FILE` (what the workload driver writes when a fig
//! binary starts the daemon on an ephemeral port).

use std::collections::BTreeMap;
use std::process::ExitCode;

use tscout_obsd::client;
use tscout_obsd::json::Json;
use tscout_obsd::API_TABLES;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tscoutctl: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut rest: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = Some(it.next().ok_or("--addr needs a value")?.clone());
            }
            "--addr-file" => {
                let path = it.next().ok_or("--addr-file needs a value")?;
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
                addr = Some(text.trim().to_string());
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => rest.push(other),
        }
    }
    let addr = addr
        .or_else(|| {
            std::env::var("TSCOUT_OBSD_ADDR")
                .ok()
                .filter(|s| !s.is_empty())
        })
        .or_else(|| {
            let f = std::env::var("TSCOUT_OBSD_ADDR_FILE").ok()?;
            Some(std::fs::read_to_string(f).ok()?.trim().to_string())
        })
        .ok_or("no address: pass --addr, --addr-file, or set TSCOUT_OBSD_ADDR")?;

    match rest.split_first() {
        Some((&"top", opts)) => top(&addr, opts),
        Some((&"stat", [table])) => stat(&addr, table),
        Some((&"tail-alerts", opts)) => tail_alerts(&addr, opts),
        Some((&"sql", [query])) => sql(&addr, query),
        Some((&"health", [])) => health(&addr),
        _ => {
            print!("{USAGE}");
            Err("unknown or incomplete command".into())
        }
    }
}

const USAGE: &str = "usage: tscoutctl [--addr HOST:PORT | --addr-file PATH] COMMAND
commands:
  top [--interval-ms N] [--iterations N]   per-OU sample-rate view
  stat TABLE                               dump one ts_* virtual table
  tail-alerts [-n N]                       most recent health transitions
  sql QUERY                                run a read-only SELECT
  health                                   subsystem health summary
";

/// Fetch a JSON endpoint and parse, folding HTTP errors into Err.
fn fetch(addr: &str, path: &str) -> Result<Json, String> {
    let (status, body) = client::get(addr, path)?;
    if status != 200 {
        return Err(format!("GET {path}: HTTP {status}: {}", body.trim()));
    }
    Json::parse(&body).map_err(|e| format!("GET {path}: bad JSON: {e}"))
}

/// `{"columns":[...],"rows":[[...]]}` → (headers, display cells).
fn tabulate(doc: &Json) -> Result<(Vec<String>, Vec<Vec<String>>), String> {
    let columns = doc
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or("response has no columns")?;
    let headers: Vec<String> = columns
        .iter()
        .map(|c| c.as_str().unwrap_or("?").to_string())
        .collect();
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("response has no rows")?;
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            r.as_arr()
                .unwrap_or_default()
                .iter()
                .map(Json::display)
                .collect()
        })
        .collect();
    Ok((headers, cells))
}

/// Render a plain-text table with per-column widths.
fn print_table(headers: &[String], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let rendered: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", rendered.join("  ").trim_end());
    };
    line(headers);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&rule);
    for row in rows {
        line(row);
    }
}

fn stat(addr: &str, table: &str) -> Result<(), String> {
    // Accept both the API key ("ou") and the SQL name ("ts_stat_ou").
    let key = API_TABLES
        .iter()
        .find(|(k, t)| *k == table || *t == table)
        .map(|(k, _)| *k)
        .ok_or_else(|| {
            let known: Vec<&str> = API_TABLES.iter().map(|(_, t)| *t).collect();
            format!("unknown table {table:?}; one of: {}", known.join(", "))
        })?;
    let doc = fetch(addr, &format!("/api/v1/{key}"))?;
    let (headers, rows) = tabulate(&doc)?;
    print_table(&headers, &rows);
    println!("({} rows)", rows.len());
    Ok(())
}

fn sql(addr: &str, query: &str) -> Result<(), String> {
    let (status, body) = client::post(addr, "/api/v1/sql", query)?;
    let doc = Json::parse(&body).map_err(|e| format!("bad JSON: {e}"))?;
    if status != 200 {
        let msg = doc
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown error");
        return Err(format!("HTTP {status}: {msg}"));
    }
    let (headers, rows) = tabulate(&doc)?;
    print_table(&headers, &rows);
    println!("({} rows)", rows.len());
    Ok(())
}

fn tail_alerts(addr: &str, opts: &[&str]) -> Result<(), String> {
    let mut n = 20usize;
    let mut it = opts.iter();
    while let Some(o) = it.next() {
        if *o == "-n" {
            n = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or("-n needs a number")?;
        }
    }
    let doc = fetch(addr, "/api/v1/alerts")?;
    let (headers, rows) = tabulate(&doc)?;
    let start = rows.len().saturating_sub(n);
    print_table(&headers, &rows[start..]);
    println!("({} of {} alerts)", rows.len() - start, rows.len());
    Ok(())
}

fn health(addr: &str) -> Result<(), String> {
    let (status, body) = client::get(addr, "/readyz")?;
    let doc = Json::parse(&body).map_err(|e| format!("bad JSON: {e}"))?;
    let overall = doc
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or("UNKNOWN");
    println!("overall: {overall} (readyz HTTP {status})");
    if let Some(Json::Obj(subsystems)) = doc.get("subsystems") {
        for (name, st) in subsystems {
            println!("  {name:<16} {}", st.display());
        }
    }
    Ok(())
}

/// One `top` snapshot: per-OU cumulative sample count keyed by OU name,
/// plus the display row for everything except the rate column.
type OuSnapshot = (BTreeMap<String, f64>, Vec<Vec<String>>);

fn ou_snapshot(addr: &str) -> Result<OuSnapshot, String> {
    let doc = fetch(addr, "/api/v1/ou")?;
    let columns = doc
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or("no columns")?;
    let idx = |name: &str| -> Result<usize, String> {
        columns
            .iter()
            .position(|c| c.as_str() == Some(name))
            .ok_or_else(|| format!("ts_stat_ou has no column {name}"))
    };
    let (i_ou, i_sub, i_samples, i_mean, i_p99, i_drift, i_health) = (
        idx("ou")?,
        idx("subsystem")?,
        idx("samples")?,
        idx("target_mean_ns")?,
        idx("target_p99_ns")?,
        idx("drift_score")?,
        idx("health")?,
    );
    let mut counts = BTreeMap::new();
    let mut rows = Vec::new();
    for r in doc.get("rows").and_then(Json::as_arr).unwrap_or_default() {
        let cells = r.as_arr().unwrap_or_default();
        let cell = |i: usize| cells.get(i).map_or_else(String::new, Json::display);
        let ou = cell(i_ou);
        let samples = cells.get(i_samples).and_then(Json::as_f64).unwrap_or(0.0);
        counts.insert(ou.clone(), samples);
        rows.push(vec![
            ou,
            cell(i_sub),
            cell(i_samples),
            cell(i_mean),
            cell(i_p99),
            cell(i_drift),
            cell(i_health),
        ]);
    }
    Ok((counts, rows))
}

fn top(addr: &str, opts: &[&str]) -> Result<(), String> {
    let mut interval_ms = 1_000u64;
    let mut iterations = u64::MAX;
    let mut it = opts.iter();
    while let Some(o) = it.next() {
        match *o {
            "--interval-ms" => {
                interval_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--interval-ms needs a number")?;
            }
            "--once" => iterations = 1,
            "--iterations" => {
                iterations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iterations needs a number")?;
            }
            other => return Err(format!("unknown top option {other:?}")),
        }
    }
    let headers: Vec<String> = [
        "ou",
        "subsystem",
        "samples",
        "samples/s",
        "mean_ns",
        "p99_ns",
        "drift",
        "health",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let (mut prev, _) = ou_snapshot(addr)?;
    for i in 0..iterations {
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(1)));
        let (counts, rows) = ou_snapshot(addr)?;
        // Wall-clock sample arrival rate since the previous snapshot.
        let dt_s = interval_ms as f64 / 1_000.0;
        let display: Vec<Vec<String>> = rows
            .into_iter()
            .map(|r| {
                let ou = r[0].clone();
                let rate = (counts.get(&ou).unwrap_or(&0.0) - prev.get(&ou).unwrap_or(&0.0)) / dt_s;
                vec![
                    r[0].clone(),
                    r[1].clone(),
                    r[2].clone(),
                    format!("{rate:.1}"),
                    r[3].clone(),
                    r[4].clone(),
                    r[5].clone(),
                    r[6].clone(),
                ]
            })
            .collect();
        if iterations != 1 {
            println!("--- tick {} ---", i + 1);
        }
        print_table(&headers, &display);
        prev = counts;
    }
    Ok(())
}
