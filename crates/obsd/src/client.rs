//! Tiny blocking HTTP client over [`TcpStream`] — what `tscoutctl`,
//! the CI smoke, and the bit-identity tests use to talk to the daemon.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One HTTP exchange: connect, send, read to EOF (the server closes
/// after each response), split status and body.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout_ms: u64,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let timeout = Some(Duration::from_millis(timeout_ms.max(1)));
    stream.set_read_timeout(timeout).ok();
    stream.set_write_timeout(timeout).ok();
    stream.set_nodelay(true).ok();
    let payload = body.unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let head_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| "response has no header terminator".to_string())?;
    let status: u16 = text
        .lines()
        .next()
        .and_then(|l| l.split_ascii_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "response has no status".to_string())?;
    Ok((status, text[head_end + 4..].to_string()))
}

/// `GET path` with a default 5 s timeout.
pub fn get(addr: &str, path: &str) -> Result<(u16, String), String> {
    request(addr, "GET", path, None, 5_000)
}

/// `POST path` with a text body and a default 5 s timeout.
pub fn post(addr: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    request(addr, "POST", path, Some(body), 5_000)
}
