//! CH-benCHmark — the hybrid (HTAP) workload (paper §6.1): the TPC-C
//! OLTP schema and transactions, plus analytical queries adapted from
//! TPC-H, executed by dedicated analytical terminals.
//!
//! The paper runs 16 TPC-C terminals and 4 analytical terminals; here one
//! in every `analytic_every` terminals runs the analytical mix.

use rand::RngExt;

use noisetap::engine::{Database, StatementId};
use noisetap::Value;

use crate::driver::{TxnCtx, Workload};
use crate::tpcc::Tpcc;

/// CH-benCHmark workload.
#[derive(Debug)]
pub struct ChBenchmark {
    pub tpcc: Tpcc,
    /// Terminals whose session id satisfies `sid % analytic_every ==
    /// analytic_every - 1` run analytical queries (default 5 → a 4:1
    /// OLTP:OLAP split at 20 terminals, as in the paper).
    pub analytic_every: usize,
    queries: Vec<StatementId>,
}

impl ChBenchmark {
    pub fn new(warehouses: u64) -> ChBenchmark {
        ChBenchmark {
            tpcc: Tpcc::new(warehouses),
            analytic_every: 5,
            queries: Vec::new(),
        }
    }
}

impl Workload for ChBenchmark {
    fn name(&self) -> &'static str {
        "chbenchmark"
    }

    fn setup(&mut self, db: &mut Database) {
        self.tpcc.setup(db);
        // TPC-H-flavored analytical queries over the TPC-C schema,
        // restricted to the SQL subset (single join, group-by, no
        // order-by-with-aggregates).
        self.queries = vec![
            // Q1-flavored: pricing summary over recent order lines.
            db.prepare(
                "SELECT ol_number, count(*), sum(ol_qty), sum(ol_amount), avg(ol_amount) \
                 FROM orderline WHERE ol_delivery_d >= $1 GROUP BY ol_number",
            )
            .unwrap(),
            // Q6-flavored: revenue from mid-quantity lines.
            db.prepare("SELECT sum(ol_amount) FROM orderline WHERE ol_qty BETWEEN $1 AND $2")
                .unwrap(),
            // Q12-flavored: orders joined with their lines in one district.
            db.prepare(
                "SELECT o.o_ol_cnt, count(*) FROM orders o \
                 JOIN orderline ol ON o.o_id = ol.ol_o_id \
                 WHERE o.o_w_id = $1 AND o.o_d_id = $2 AND ol.ol_w_id = $1 \
                 GROUP BY o.o_ol_cnt",
            )
            .unwrap(),
            // Q14-flavored: revenue by item price class.
            db.prepare(
                "SELECT sum(ol.ol_amount) FROM orderline ol \
                 JOIN item i ON ol.ol_i_id = i.i_id WHERE i.i_price > $1",
            )
            .unwrap(),
        ];
    }

    fn txn(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let analytical =
            self.analytic_every > 0 && ctx.sid.0 % self.analytic_every == self.analytic_every - 1;
        if !analytical {
            return self.tpcc.txn(ctx);
        }
        let q = self.queries[ctx.rng.random_range(0..self.queries.len())];
        let w = ctx.rng.random_range(0..self.tpcc.warehouses) as i64;
        let d = ctx
            .rng
            .random_range(0..crate::tpcc::DISTRICTS_PER_WAREHOUSE) as i64;
        let params: Vec<Value> = match self.queries.iter().position(|s| *s == q).unwrap() {
            0 => vec![Value::Int(0)],
            1 => vec![Value::Int(3), Value::Int(8)],
            2 => vec![Value::Int(w), Value::Int(d)],
            _ => vec![Value::Float(50.0)],
        };
        ctx.begin();
        let ok = ctx.request(q, &params).is_ok();
        if ok {
            ctx.commit().is_ok()
        } else {
            ctx.rollback();
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, RunOptions};
    use tscout_kernel::{HardwareProfile, Kernel};

    #[test]
    fn hybrid_mix_runs_both_sides() {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 31);
        k.noise_frac = 0.0;
        let mut db = Database::new(k);
        let mut w = ChBenchmark::new(1);
        w.setup(&mut db);
        let stats = run(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 5,
                duration_ns: 40e6,
                ..Default::default()
            },
        );
        assert!(stats.committed > 10, "committed {}", stats.committed);
        // The trace must contain both short OLTP templates and the heavy
        // analytical templates (larger statement ids).
        let max_template = stats.trace.iter().map(|s| s.template).max().unwrap();
        let min_template = stats.trace.iter().map(|s| s.template).min().unwrap();
        assert!(max_template > min_template, "expected a template mix");
    }

    #[test]
    fn analytical_queries_return_aggregates() {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 32);
        k.noise_frac = 0.0;
        let mut db = Database::new(k);
        let mut w = ChBenchmark::new(1);
        w.setup(&mut db);
        let sid = db.create_session();
        let out = db
            .execute_prepared(sid, w.queries[1], &[Value::Int(3), Value::Int(8)])
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(out.rows[0][0].as_float().unwrap() > 0.0);
        let out = db
            .execute_prepared(sid, w.queries[3], &[Value::Float(50.0)])
            .unwrap();
        assert!(out.rows[0][0].as_float().unwrap() > 0.0);
    }
}
