//! TATP — Telecom Application Transaction Processing (paper §6.1).
//!
//! A caller-location workload: point lookups by subscriber id, a
//! secondary-index indirection path (subscriber number → id), and small
//! updates/inserts/deletes on the call-forwarding tables.

use rand::RngExt;

use noisetap::engine::{Database, StatementId};
use noisetap::Value;

use crate::driver::{TxnCtx, Workload};
use crate::util::{bulk_load, pick_weighted};

/// TATP workload.
#[derive(Debug)]
pub struct Tatp {
    pub subscribers: u64,
    stmts: Option<Stmts>,
}

#[derive(Debug)]
struct Stmts {
    get_subscriber: StatementId,
    get_access: StatementId,
    get_special: StatementId,
    get_forwarding: StatementId,
    find_by_nbr: StatementId,
    upd_location: StatementId,
    upd_subscriber: StatementId,
    upd_special: StatementId,
    ins_forwarding: StatementId,
    del_forwarding: StatementId,
}

impl Tatp {
    pub fn new(subscribers: u64) -> Tatp {
        Tatp {
            subscribers,
            stmts: None,
        }
    }

    fn sid(&self, ctx: &mut TxnCtx<'_>) -> i64 {
        ctx.rng.random_range(0..self.subscribers) as i64
    }
}

fn sub_nbr(s_id: u64) -> String {
    format!("{s_id:015}")
}

impl Workload for Tatp {
    fn name(&self) -> &'static str {
        "tatp"
    }

    fn setup(&mut self, db: &mut Database) {
        let sid = db.create_session();
        db.execute(
            sid,
            "CREATE TABLE subscriber (s_id INT PRIMARY KEY, sub_nbr TEXT, \
             bit_1 INT, vlr_location INT)",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE UNIQUE INDEX sub_nbr_idx ON subscriber (sub_nbr) USING HASH",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE access_info (s_id INT, ai_type INT, data1 INT, \
             PRIMARY KEY (s_id, ai_type))",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE special_facility (s_id INT, sf_type INT, is_active INT, \
             PRIMARY KEY (s_id, sf_type))",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE call_forwarding (s_id INT, sf_type INT, start_time INT, \
             end_time INT, numberx TEXT, PRIMARY KEY (s_id, sf_type, start_time))",
            &[],
        )
        .unwrap();

        let n = self.subscribers;
        let ins_sub = db
            .prepare("INSERT INTO subscriber VALUES ($1, $2, $3, $4)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins_sub,
            (0..n).map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Text(sub_nbr(i)),
                    Value::Int((i % 2) as i64),
                    Value::Int((i * 7 % 100) as i64),
                ]
            }),
            1000,
        );
        let ins_ai = db
            .prepare("INSERT INTO access_info VALUES ($1, $2, $3)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins_ai,
            (0..n).flat_map(|i| {
                (0..=(i % 4))
                    .map(move |t| vec![Value::Int(i as i64), Value::Int(t as i64), Value::Int(42)])
            }),
            1000,
        );
        let ins_sf = db
            .prepare("INSERT INTO special_facility VALUES ($1, $2, $3)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins_sf,
            (0..n).flat_map(|i| {
                (0..=(i % 3))
                    .map(move |t| vec![Value::Int(i as i64), Value::Int(t as i64), Value::Int(1)])
            }),
            1000,
        );
        let ins_cf = db
            .prepare("INSERT INTO call_forwarding VALUES ($1, $2, $3, $4, $5)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins_cf,
            (0..n).filter(|i| i % 2 == 0).map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(8),
                    Value::Text(sub_nbr(i)),
                ]
            }),
            1000,
        );

        self.stmts = Some(Stmts {
            get_subscriber: db
                .prepare("SELECT * FROM subscriber WHERE s_id = $1")
                .unwrap(),
            get_access: db
                .prepare("SELECT data1 FROM access_info WHERE s_id = $1 AND ai_type = $2")
                .unwrap(),
            get_special: db
                .prepare("SELECT is_active FROM special_facility WHERE s_id = $1 AND sf_type = $2")
                .unwrap(),
            get_forwarding: db
                .prepare(
                    "SELECT numberx FROM call_forwarding WHERE s_id = $1 AND sf_type = $2 \
                     AND start_time <= $3 AND end_time > $3",
                )
                .unwrap(),
            find_by_nbr: db
                .prepare("SELECT s_id FROM subscriber WHERE sub_nbr = $1")
                .unwrap(),
            upd_location: db
                .prepare("UPDATE subscriber SET vlr_location = $2 WHERE s_id = $1")
                .unwrap(),
            upd_subscriber: db
                .prepare("UPDATE subscriber SET bit_1 = $2 WHERE s_id = $1")
                .unwrap(),
            upd_special: db
                .prepare(
                    "UPDATE special_facility SET is_active = $3 WHERE s_id = $1 AND sf_type = $2",
                )
                .unwrap(),
            ins_forwarding: db
                .prepare("INSERT INTO call_forwarding VALUES ($1, $2, $3, $4, $5)")
                .unwrap(),
            del_forwarding: db
                .prepare(
                    "DELETE FROM call_forwarding WHERE s_id = $1 AND sf_type = $2 \
                     AND start_time = $3",
                )
                .unwrap(),
        });
    }

    fn txn(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let s_id = self.sid(ctx);
        let st = self.stmts.as_ref().expect("setup() not called");
        let (get_subscriber, get_access, get_special, get_forwarding, find_by_nbr) = (
            st.get_subscriber,
            st.get_access,
            st.get_special,
            st.get_forwarding,
            st.find_by_nbr,
        );
        let (upd_location, upd_subscriber, upd_special, ins_forwarding, del_forwarding) = (
            st.upd_location,
            st.upd_subscriber,
            st.upd_special,
            st.ins_forwarding,
            st.del_forwarding,
        );
        // GetSubscriberData 35, GetNewDestination 10, GetAccessData 35,
        // UpdateSubscriberData 2, UpdateLocation 14, InsertCallForwarding 2,
        // DeleteCallForwarding 2.
        let choice = pick_weighted(ctx.rng, &[35, 10, 35, 2, 14, 2, 2]);
        ctx.begin();
        let result = (|| -> Result<bool, noisetap::DbError> {
            match choice {
                0 => {
                    ctx.request(get_subscriber, &[Value::Int(s_id)])?;
                }
                1 => {
                    let active = ctx
                        .request(get_special, &[Value::Int(s_id), Value::Int(0)])?
                        .rows;
                    if !active.is_empty() {
                        ctx.request(
                            get_forwarding,
                            &[Value::Int(s_id), Value::Int(0), Value::Int(4)],
                        )?;
                    }
                }
                2 => {
                    ctx.request(get_access, &[Value::Int(s_id), Value::Int(0)])?;
                }
                3 => {
                    ctx.request(upd_subscriber, &[Value::Int(s_id), Value::Int(1)])?;
                    ctx.request(
                        upd_special,
                        &[Value::Int(s_id), Value::Int(0), Value::Int(0)],
                    )?;
                }
                4 => {
                    // Secondary-index indirection: number → id → update.
                    let rows = ctx
                        .request(find_by_nbr, &[Value::Text(sub_nbr(s_id as u64))])?
                        .rows;
                    let found = rows[0][0].clone();
                    ctx.request(upd_location, &[found, Value::Int(99)])?;
                }
                5 => {
                    // May hit a duplicate key — a legal abort in TATP.
                    ctx.request(
                        ins_forwarding,
                        &[
                            Value::Int(s_id),
                            Value::Int(0),
                            Value::Int(0),
                            Value::Int(8),
                            Value::Text("x".into()),
                        ],
                    )?;
                }
                _ => {
                    ctx.request(
                        del_forwarding,
                        &[Value::Int(s_id), Value::Int(0), Value::Int(0)],
                    )?;
                }
            }
            Ok(true)
        })();
        match result {
            Ok(_) => ctx.commit().is_ok(),
            Err(_) => {
                ctx.rollback();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, RunOptions};
    use tscout_kernel::{HardwareProfile, Kernel};

    #[test]
    fn tatp_runs_with_expected_abort_profile() {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 13);
        k.noise_frac = 0.0;
        let mut db = Database::new(k);
        let mut w = Tatp::new(300);
        w.setup(&mut db);
        let stats = run(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 3,
                duration_ns: 5e6,
                ..Default::default()
            },
        );
        assert!(stats.committed > 20, "committed {}", stats.committed);
        // InsertCallForwarding occasionally violates the PK: aborts happen
        // but stay a small minority.
        assert!(stats.aborted as f64 <= 0.2 * stats.committed as f64);
    }
}
