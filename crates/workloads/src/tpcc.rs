//! TPC-C — order processing (paper §6.1): nine tables, five transaction
//! types, warehouse-based scaling.
//!
//! Cardinalities are scaled down from the spec (items, customers and
//! seeded orders per district) so experiments load in seconds; the
//! *structure* — table touches per transaction, index paths, read/write
//! mix, contention on warehouse/district rows — follows the spec.

use rand::RngExt;

use noisetap::engine::{Database, StatementId};
use noisetap::Value;

use crate::driver::{TxnCtx, Workload};
use crate::util::{bulk_load, nurand, pick_weighted};

pub const DISTRICTS_PER_WAREHOUSE: u64 = 10;
pub const CUSTOMERS_PER_DISTRICT: u64 = 120;
pub const ITEMS: u64 = 1000;
pub const SEED_ORDERS_PER_DISTRICT: u64 = 60;
pub const LAST_NAMES: u64 = 40;

/// TPC-C workload.
#[derive(Debug)]
pub struct Tpcc {
    pub warehouses: u64,
    stmts: Option<Stmts>,
    /// Optional restriction of the transaction mix (template holdout
    /// experiments disable some types).
    pub mix: [u32; 5],
}

#[derive(Debug)]
pub struct Stmts {
    get_warehouse: StatementId,
    get_district: StatementId,
    upd_district_next_oid: StatementId,
    ins_order: StatementId,
    ins_neworder: StatementId,
    get_item: StatementId,
    get_stock: StatementId,
    upd_stock: StatementId,
    ins_orderline: StatementId,
    upd_warehouse_ytd: StatementId,
    upd_district_ytd: StatementId,
    get_customer: StatementId,
    get_customers_by_last: StatementId,
    upd_customer_bal: StatementId,
    ins_history: StatementId,
    latest_order_of_customer: StatementId,
    get_orderlines: StatementId,
    oldest_neworder: StatementId,
    del_neworder: StatementId,
    sum_orderlines: StatementId,
    upd_orderline_delivery: StatementId,
    get_order_customer: StatementId,
    stock_level_join: StatementId,
}

fn last_name(i: u64) -> String {
    format!("NAME{:03}", i % LAST_NAMES)
}

impl Tpcc {
    pub fn new(warehouses: u64) -> Tpcc {
        // NewOrder 45, Payment 43, OrderStatus 4, Delivery 4, StockLevel 4.
        Tpcc {
            warehouses,
            stmts: None,
            mix: [45, 43, 4, 4, 4],
        }
    }

    fn w_id(&self, ctx: &mut TxnCtx<'_>) -> i64 {
        ctx.rng.random_range(0..self.warehouses) as i64
    }
}

impl Workload for Tpcc {
    fn name(&self) -> &'static str {
        "tpcc"
    }

    fn setup(&mut self, db: &mut Database) {
        let sid = db.create_session();
        db.execute(
            sid,
            "CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name TEXT, w_ytd FLOAT)",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE district (d_w_id INT, d_id INT, d_next_o_id INT, d_ytd FLOAT, \
             PRIMARY KEY (d_w_id, d_id))",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_last TEXT, \
             c_balance FLOAT, c_ytd_payment FLOAT, PRIMARY KEY (c_w_id, c_d_id, c_id))",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE INDEX customer_by_last ON customer (c_w_id, c_d_id, c_last)",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE history (h_c_id INT, h_w_id INT, h_amount FLOAT, h_ts INT)",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE neworder (no_w_id INT, no_d_id INT, no_o_id INT, \
             PRIMARY KEY (no_w_id, no_d_id, no_o_id))",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, \
             o_ol_cnt INT, o_entry_d INT, PRIMARY KEY (o_w_id, o_d_id, o_id))",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE INDEX orders_by_customer ON orders (o_w_id, o_d_id, o_c_id)",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE orderline (ol_w_id INT, ol_d_id INT, ol_o_id INT, ol_number INT, \
             ol_i_id INT, ol_qty INT, ol_amount FLOAT, ol_delivery_d INT, \
             PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE item (i_id INT PRIMARY KEY, i_name TEXT, i_price FLOAT)",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, s_ytd FLOAT, \
             PRIMARY KEY (s_w_id, s_i_id))",
            &[],
        )
        .unwrap();

        let w = self.warehouses;
        let ins = db
            .prepare("INSERT INTO warehouse VALUES ($1, $2, $3)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins,
            (0..w).map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Text(format!("W{i}")),
                    Value::Float(0.0),
                ]
            }),
            1000,
        );
        let ins = db
            .prepare("INSERT INTO district VALUES ($1, $2, $3, $4)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins,
            (0..w).flat_map(|wi| {
                (0..DISTRICTS_PER_WAREHOUSE).map(move |d| {
                    vec![
                        Value::Int(wi as i64),
                        Value::Int(d as i64),
                        Value::Int(SEED_ORDERS_PER_DISTRICT as i64),
                        Value::Float(0.0),
                    ]
                })
            }),
            1000,
        );
        let ins = db
            .prepare("INSERT INTO customer VALUES ($1, $2, $3, $4, $5, $6)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins,
            (0..w).flat_map(|wi| {
                (0..DISTRICTS_PER_WAREHOUSE).flat_map(move |d| {
                    (0..CUSTOMERS_PER_DISTRICT).map(move |c| {
                        vec![
                            Value::Int(wi as i64),
                            Value::Int(d as i64),
                            Value::Int(c as i64),
                            Value::Text(last_name(c)),
                            Value::Float(-10.0),
                            Value::Float(10.0),
                        ]
                    })
                })
            }),
            2000,
        );
        let ins = db.prepare("INSERT INTO item VALUES ($1, $2, $3)").unwrap();
        bulk_load(
            db,
            sid,
            ins,
            (0..ITEMS).map(|i| {
                vec![
                    Value::Int(i as i64),
                    Value::Text(format!("item{i}")),
                    Value::Float(1.0 + (i % 100) as f64),
                ]
            }),
            1000,
        );
        let ins = db
            .prepare("INSERT INTO stock VALUES ($1, $2, $3, $4)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins,
            (0..w).flat_map(|wi| {
                (0..ITEMS).map(move |i| {
                    vec![
                        Value::Int(wi as i64),
                        Value::Int(i as i64),
                        Value::Int(10 + (i % 91) as i64),
                        Value::Float(0.0),
                    ]
                })
            }),
            2000,
        );
        // Seed orders + orderlines + neworders (the newest third of the
        // seeded orders are undelivered).
        let ins_o = db
            .prepare("INSERT INTO orders VALUES ($1, $2, $3, $4, $5, $6)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins_o,
            (0..w).flat_map(|wi| {
                (0..DISTRICTS_PER_WAREHOUSE).flat_map(move |d| {
                    (0..SEED_ORDERS_PER_DISTRICT).map(move |o| {
                        vec![
                            Value::Int(wi as i64),
                            Value::Int(d as i64),
                            Value::Int(o as i64),
                            Value::Int((o % CUSTOMERS_PER_DISTRICT) as i64),
                            Value::Int(5),
                            Value::Int(o as i64),
                        ]
                    })
                })
            }),
            2000,
        );
        let ins_ol = db
            .prepare("INSERT INTO orderline VALUES ($1, $2, $3, $4, $5, $6, $7, $8)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins_ol,
            (0..w).flat_map(|wi| {
                (0..DISTRICTS_PER_WAREHOUSE).flat_map(move |d| {
                    (0..SEED_ORDERS_PER_DISTRICT).flat_map(move |o| {
                        (0..5u64).map(move |l| {
                            vec![
                                Value::Int(wi as i64),
                                Value::Int(d as i64),
                                Value::Int(o as i64),
                                Value::Int(l as i64),
                                Value::Int(((o * 7 + l) % ITEMS) as i64),
                                Value::Int(5),
                                Value::Float(25.0),
                                Value::Int(if o < 2 * SEED_ORDERS_PER_DISTRICT / 3 {
                                    1
                                } else {
                                    0
                                }),
                            ]
                        })
                    })
                })
            }),
            4000,
        );
        let ins_no = db
            .prepare("INSERT INTO neworder VALUES ($1, $2, $3)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins_no,
            (0..w).flat_map(|wi| {
                (0..DISTRICTS_PER_WAREHOUSE).flat_map(move |d| {
                    (2 * SEED_ORDERS_PER_DISTRICT / 3..SEED_ORDERS_PER_DISTRICT).map(move |o| {
                        vec![
                            Value::Int(wi as i64),
                            Value::Int(d as i64),
                            Value::Int(o as i64),
                        ]
                    })
                })
            }),
            2000,
        );

        self.stmts = Some(Stmts {
            get_warehouse: db
                .prepare("SELECT w_name FROM warehouse WHERE w_id = $1")
                .unwrap(),
            get_district: db
                .prepare("SELECT d_next_o_id FROM district WHERE d_w_id = $1 AND d_id = $2")
                .unwrap(),
            upd_district_next_oid: db
                .prepare(
                    "UPDATE district SET d_next_o_id = d_next_o_id + 1 \
                     WHERE d_w_id = $1 AND d_id = $2",
                )
                .unwrap(),
            ins_order: db
                .prepare("INSERT INTO orders VALUES ($1, $2, $3, $4, $5, $6)")
                .unwrap(),
            ins_neworder: db
                .prepare("INSERT INTO neworder VALUES ($1, $2, $3)")
                .unwrap(),
            get_item: db
                .prepare("SELECT i_price FROM item WHERE i_id = $1")
                .unwrap(),
            get_stock: db
                .prepare("SELECT s_quantity FROM stock WHERE s_w_id = $1 AND s_i_id = $2")
                .unwrap(),
            upd_stock: db
                .prepare(
                    "UPDATE stock SET s_quantity = s_quantity - $3, s_ytd = s_ytd + $4 \
                     WHERE s_w_id = $1 AND s_i_id = $2",
                )
                .unwrap(),
            ins_orderline: db
                .prepare("INSERT INTO orderline VALUES ($1, $2, $3, $4, $5, $6, $7, $8)")
                .unwrap(),
            upd_warehouse_ytd: db
                .prepare("UPDATE warehouse SET w_ytd = w_ytd + $2 WHERE w_id = $1")
                .unwrap(),
            upd_district_ytd: db
                .prepare("UPDATE district SET d_ytd = d_ytd + $3 WHERE d_w_id = $1 AND d_id = $2")
                .unwrap(),
            get_customer: db
                .prepare(
                    "SELECT c_balance FROM customer \
                     WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = $3",
                )
                .unwrap(),
            get_customers_by_last: db
                .prepare(
                    "SELECT c_id FROM customer \
                     WHERE c_w_id = $1 AND c_d_id = $2 AND c_last = $3 ORDER BY c_id",
                )
                .unwrap(),
            upd_customer_bal: db
                .prepare(
                    "UPDATE customer SET c_balance = c_balance + $4, \
                     c_ytd_payment = c_ytd_payment + $5 \
                     WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = $3",
                )
                .unwrap(),
            ins_history: db
                .prepare("INSERT INTO history VALUES ($1, $2, $3, $4)")
                .unwrap(),
            latest_order_of_customer: db
                .prepare(
                    "SELECT o_id, o_ol_cnt FROM orders \
                     WHERE o_w_id = $1 AND o_d_id = $2 AND o_c_id = $3 \
                     ORDER BY o_id DESC LIMIT 1",
                )
                .unwrap(),
            get_orderlines: db
                .prepare(
                    "SELECT ol_i_id, ol_qty, ol_amount FROM orderline \
                     WHERE ol_w_id = $1 AND ol_d_id = $2 AND ol_o_id = $3",
                )
                .unwrap(),
            oldest_neworder: db
                .prepare(
                    "SELECT no_o_id FROM neworder \
                     WHERE no_w_id = $1 AND no_d_id = $2 ORDER BY no_o_id LIMIT 1",
                )
                .unwrap(),
            del_neworder: db
                .prepare(
                    "DELETE FROM neworder \
                     WHERE no_w_id = $1 AND no_d_id = $2 AND no_o_id = $3",
                )
                .unwrap(),
            sum_orderlines: db
                .prepare(
                    "SELECT sum(ol_amount) FROM orderline \
                     WHERE ol_w_id = $1 AND ol_d_id = $2 AND ol_o_id = $3",
                )
                .unwrap(),
            upd_orderline_delivery: db
                .prepare(
                    "UPDATE orderline SET ol_delivery_d = $4 \
                     WHERE ol_w_id = $1 AND ol_d_id = $2 AND ol_o_id = $3",
                )
                .unwrap(),
            get_order_customer: db
                .prepare(
                    "SELECT o_c_id FROM orders WHERE o_w_id = $1 AND o_d_id = $2 AND o_id = $3",
                )
                .unwrap(),
            stock_level_join: db
                .prepare(
                    "SELECT count(*) FROM orderline ol JOIN stock s ON ol.ol_i_id = s.s_i_id \
                     WHERE ol.ol_w_id = $1 AND ol.ol_d_id = $2 AND ol.ol_o_id >= $3 \
                     AND s.s_w_id = $1 AND s.s_quantity < $4",
                )
                .unwrap(),
        });
    }

    fn txn(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let choice = pick_weighted(ctx.rng, &self.mix);
        match choice {
            0 => self.new_order(ctx),
            1 => self.payment(ctx),
            2 => self.order_status(ctx),
            3 => self.delivery(ctx),
            _ => self.stock_level(ctx),
        }
    }
}

type TxnOutcome = Result<(), noisetap::DbError>;

impl Tpcc {
    fn finish(ctx: &mut TxnCtx<'_>, r: TxnOutcome) -> bool {
        match r {
            Ok(()) => ctx.commit().is_ok(),
            Err(_) => {
                ctx.rollback();
                false
            }
        }
    }

    pub fn new_order(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let st = self.stmts.as_ref().unwrap();
        let (get_warehouse, get_district, upd_next, ins_order, ins_neworder) = (
            st.get_warehouse,
            st.get_district,
            st.upd_district_next_oid,
            st.ins_order,
            st.ins_neworder,
        );
        let (get_item, get_stock, upd_stock, ins_orderline) =
            (st.get_item, st.get_stock, st.upd_stock, st.ins_orderline);
        let w = self.w_id(ctx);
        let d = ctx.rng.random_range(0..DISTRICTS_PER_WAREHOUSE) as i64;
        let c = nurand(ctx.rng, 255, CUSTOMERS_PER_DISTRICT) as i64;
        let ol_cnt = ctx.rng.random_range(5..=15);
        let items: Vec<(i64, i64)> = (0..ol_cnt)
            .map(|_| {
                (
                    nurand(ctx.rng, 1023, ITEMS) as i64,
                    ctx.rng.random_range(1..=10) as i64,
                )
            })
            .collect();
        ctx.begin();
        let r = (|| -> TxnOutcome {
            ctx.request(get_warehouse, &[Value::Int(w)])?;
            let o_id = ctx
                .request(get_district, &[Value::Int(w), Value::Int(d)])?
                .rows
                .first()
                .and_then(|r| r[0].as_int())
                .unwrap_or(0);
            ctx.request(upd_next, &[Value::Int(w), Value::Int(d)])?;
            ctx.request(
                ins_order,
                &[
                    Value::Int(w),
                    Value::Int(d),
                    Value::Int(o_id),
                    Value::Int(c),
                    Value::Int(items.len() as i64),
                    Value::Int(o_id),
                ],
            )?;
            ctx.request(
                ins_neworder,
                &[Value::Int(w), Value::Int(d), Value::Int(o_id)],
            )?;
            for (number, (i_id, qty)) in items.iter().enumerate() {
                let price = ctx
                    .request(get_item, &[Value::Int(*i_id)])?
                    .rows
                    .first()
                    .and_then(|r| r[0].as_float())
                    .unwrap_or(1.0);
                ctx.request(get_stock, &[Value::Int(w), Value::Int(*i_id)])?;
                ctx.request(
                    upd_stock,
                    &[
                        Value::Int(w),
                        Value::Int(*i_id),
                        Value::Int(*qty),
                        Value::Float(price * *qty as f64),
                    ],
                )?;
                ctx.request(
                    ins_orderline,
                    &[
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(o_id),
                        Value::Int(number as i64),
                        Value::Int(*i_id),
                        Value::Int(*qty),
                        Value::Float(price * *qty as f64),
                        Value::Int(0),
                    ],
                )?;
            }
            Ok(())
        })();
        Self::finish(ctx, r)
    }

    pub fn payment(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let st = self.stmts.as_ref().unwrap();
        let (upd_w, upd_d, get_by_last, upd_bal, ins_hist) = (
            st.upd_warehouse_ytd,
            st.upd_district_ytd,
            st.get_customers_by_last,
            st.upd_customer_bal,
            st.ins_history,
        );
        let w = self.w_id(ctx);
        let d = ctx.rng.random_range(0..DISTRICTS_PER_WAREHOUSE) as i64;
        let amount = ctx.rng.random_range(1..5000) as f64 / 100.0;
        let by_last = ctx.rng.random_range(0..100) < 60;
        let c_id = nurand(ctx.rng, 255, CUSTOMERS_PER_DISTRICT) as i64;
        let name = last_name(c_id as u64);
        ctx.begin();
        let r = (|| -> TxnOutcome {
            ctx.request(upd_w, &[Value::Int(w), Value::Float(amount)])?;
            ctx.request(upd_d, &[Value::Int(w), Value::Int(d), Value::Float(amount)])?;
            let target = if by_last {
                // Spec: pick the middle customer of the matching set.
                let rows = ctx
                    .request(
                        get_by_last,
                        &[Value::Int(w), Value::Int(d), Value::Text(name)],
                    )?
                    .rows;
                rows.get(rows.len() / 2)
                    .and_then(|r| r[0].as_int())
                    .unwrap_or(c_id)
            } else {
                c_id
            };
            ctx.request(
                upd_bal,
                &[
                    Value::Int(w),
                    Value::Int(d),
                    Value::Int(target),
                    Value::Float(-amount),
                    Value::Float(amount),
                ],
            )?;
            ctx.request(
                ins_hist,
                &[
                    Value::Int(target),
                    Value::Int(w),
                    Value::Float(amount),
                    Value::Int(0),
                ],
            )?;
            Ok(())
        })();
        Self::finish(ctx, r)
    }

    pub fn order_status(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let st = self.stmts.as_ref().unwrap();
        let (get_cust, latest, get_ols) = (
            st.get_customer,
            st.latest_order_of_customer,
            st.get_orderlines,
        );
        let w = self.w_id(ctx);
        let d = ctx.rng.random_range(0..DISTRICTS_PER_WAREHOUSE) as i64;
        let c = nurand(ctx.rng, 255, CUSTOMERS_PER_DISTRICT) as i64;
        ctx.begin();
        let r = (|| -> TxnOutcome {
            ctx.request(get_cust, &[Value::Int(w), Value::Int(d), Value::Int(c)])?;
            let rows = ctx
                .request(latest, &[Value::Int(w), Value::Int(d), Value::Int(c)])?
                .rows;
            if let Some(o_id) = rows.first().and_then(|r| r[0].as_int()) {
                ctx.request(get_ols, &[Value::Int(w), Value::Int(d), Value::Int(o_id)])?;
            }
            Ok(())
        })();
        Self::finish(ctx, r)
    }

    pub fn delivery(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let st = self.stmts.as_ref().unwrap();
        let (oldest, del_no, sum_ol, upd_ol, get_oc, upd_bal) = (
            st.oldest_neworder,
            st.del_neworder,
            st.sum_orderlines,
            st.upd_orderline_delivery,
            st.get_order_customer,
            st.upd_customer_bal,
        );
        let w = self.w_id(ctx);
        ctx.begin();
        let r = (|| -> TxnOutcome {
            for d in 0..DISTRICTS_PER_WAREHOUSE as i64 {
                let rows = ctx.request(oldest, &[Value::Int(w), Value::Int(d)])?.rows;
                let Some(o_id) = rows.first().and_then(|r| r[0].as_int()) else {
                    continue;
                };
                ctx.request(del_no, &[Value::Int(w), Value::Int(d), Value::Int(o_id)])?;
                let amount = ctx
                    .request(sum_ol, &[Value::Int(w), Value::Int(d), Value::Int(o_id)])?
                    .rows
                    .first()
                    .and_then(|r| r[0].as_float())
                    .unwrap_or(0.0);
                ctx.request(
                    upd_ol,
                    &[
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(o_id),
                        Value::Int(1),
                    ],
                )?;
                let c = ctx
                    .request(get_oc, &[Value::Int(w), Value::Int(d), Value::Int(o_id)])?
                    .rows
                    .first()
                    .and_then(|r| r[0].as_int())
                    .unwrap_or(0);
                ctx.request(
                    upd_bal,
                    &[
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(c),
                        Value::Float(amount),
                        Value::Float(0.0),
                    ],
                )?;
            }
            Ok(())
        })();
        Self::finish(ctx, r)
    }

    pub fn stock_level(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let st = self.stmts.as_ref().unwrap();
        let (get_district, join) = (st.get_district, st.stock_level_join);
        let w = self.w_id(ctx);
        let d = ctx.rng.random_range(0..DISTRICTS_PER_WAREHOUSE) as i64;
        let threshold = ctx.rng.random_range(10..=20) as i64;
        ctx.begin();
        let r = (|| -> TxnOutcome {
            let next = ctx
                .request(get_district, &[Value::Int(w), Value::Int(d)])?
                .rows
                .first()
                .and_then(|r| r[0].as_int())
                .unwrap_or(0);
            ctx.request(
                join,
                &[
                    Value::Int(w),
                    Value::Int(d),
                    Value::Int((next - 20).max(0)),
                    Value::Int(threshold),
                ],
            )?;
            Ok(())
        })();
        Self::finish(ctx, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, RunOptions};
    use tscout_kernel::{HardwareProfile, Kernel};

    fn fresh(warehouses: u64) -> (Database, Tpcc) {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 21);
        k.noise_frac = 0.0;
        let mut db = Database::new(k);
        let mut w = Tpcc::new(warehouses);
        w.setup(&mut db);
        (db, w)
    }

    #[test]
    fn load_cardinalities() {
        let (db, _) = fresh(1);
        assert_eq!(db.table_live_tuples("warehouse"), Some(1));
        assert_eq!(db.table_live_tuples("district"), Some(10));
        assert_eq!(
            db.table_live_tuples("customer"),
            Some(10 * CUSTOMERS_PER_DISTRICT)
        );
        assert_eq!(db.table_live_tuples("item"), Some(ITEMS));
        assert_eq!(db.table_live_tuples("stock"), Some(ITEMS));
        assert_eq!(
            db.table_live_tuples("orders"),
            Some(10 * SEED_ORDERS_PER_DISTRICT)
        );
        assert_eq!(
            db.table_live_tuples("orderline"),
            Some(10 * SEED_ORDERS_PER_DISTRICT * 5)
        );
    }

    #[test]
    fn mixed_run_commits_and_orders_grow() {
        let (mut db, mut w) = fresh(2);
        let before = db.table_live_tuples("orders").unwrap();
        let stats = run(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 4,
                duration_ns: 30e6,
                ..Default::default()
            },
        );
        assert!(stats.committed > 20, "committed {}", stats.committed);
        let after = db.table_live_tuples("orders").unwrap();
        assert!(
            after > before,
            "NewOrder inserted orders: {before} -> {after}"
        );
        // Sanity: the abort rate is small (write-write conflicts on hot
        // district rows are possible but rare under txn-granular
        // interleaving).
        assert!(stats.aborted * 10 <= stats.committed);
    }

    #[test]
    fn delivery_consumes_neworders() {
        let (mut db, mut w) = fresh(1);
        let before = db.table_live_tuples("neworder").unwrap();
        let sid = db.create_session();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut trace = Vec::new();
        let mut ctx = crate::driver::TxnCtx::new(&mut db, sid, &mut rng, &mut trace);
        assert!(w.delivery(&mut ctx));
        let after = db.table_live_tuples("neworder").unwrap();
        assert!(after < before, "delivery should consume neworder rows");
    }
}
