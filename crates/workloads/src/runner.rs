//! Offline runners (paper §2.4): developer-written microbenchmarks that
//! sweep each OU's input space on an idle system to bootstrap the
//! behavior models.
//!
//! "Runners target specific DBMS components by sweeping input values to
//! generate unique training data points." They run single-threaded, so
//! the data they produce misses exactly what the paper shows online data
//! captures: contention under concurrency, group-commit batch economics
//! at production arrival rates, and the deployment hardware's devices.

use rand::RngExt;

use noisetap::engine::{Database, StatementId};
use noisetap::Value;

use crate::driver::{TxnCtx, Workload};
use crate::util::bulk_load;

/// Table sizes the scan sweeps cover.
const SCAN_SIZES: [u64; 3] = [200, 2000, 10_000];

/// The offline runner suite.
#[derive(Debug)]
pub struct OfflineRunner {
    step: u64,
    sink_next: i64,
    stmts: Vec<(Kind, StatementId)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    SeqScan(usize),
    PointLookup,
    RangeScan,
    SortRange,
    GroupAgg,
    Join,
    InsertOne,
    UpdateOne,
    UpdateRange,
    DeleteOne,
}

impl OfflineRunner {
    pub fn new() -> OfflineRunner {
        OfflineRunner {
            step: 0,
            sink_next: 1_000_000,
            stmts: Vec::new(),
        }
    }
}

impl Default for OfflineRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for OfflineRunner {
    fn name(&self) -> &'static str {
        "offline_runner"
    }

    fn setup(&mut self, db: &mut Database) {
        let sid = db.create_session();
        // Scan targets of several sizes.
        for (i, n) in SCAN_SIZES.iter().enumerate() {
            db.execute(
                sid,
                &format!(
                    "CREATE TABLE runner_seq{i} (id INT PRIMARY KEY, a INT, b FLOAT, pad TEXT)"
                ),
                &[],
            )
            .unwrap();
            let ins = db
                .prepare(&format!(
                    "INSERT INTO runner_seq{i} VALUES ($1, $2, $3, $4)"
                ))
                .unwrap();
            bulk_load(
                db,
                sid,
                ins,
                (0..*n).map(|k| {
                    vec![
                        Value::Int(k as i64),
                        Value::Int((k % 50) as i64),
                        Value::Float(k as f64),
                        Value::Text("x".repeat(64)),
                    ]
                }),
                2000,
            );
        }
        // The main keyed table and a small dimension for joins.
        db.execute(
            sid,
            "CREATE TABLE runner_data (id INT PRIMARY KEY, a INT, b FLOAT, pad TEXT)",
            &[],
        )
        .unwrap();
        let ins = db
            .prepare("INSERT INTO runner_data VALUES ($1, $2, $3, $4)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins,
            (0..20_000u64).map(|k| {
                vec![
                    Value::Int(k as i64),
                    Value::Int((k % 200) as i64),
                    Value::Float((k * 3 % 977) as f64),
                    Value::Text("y".repeat(64)),
                ]
            }),
            2000,
        );
        db.execute(
            sid,
            "CREATE TABLE runner_dim (k INT PRIMARY KEY, label TEXT)",
            &[],
        )
        .unwrap();
        let ins = db
            .prepare("INSERT INTO runner_dim VALUES ($1, $2)")
            .unwrap();
        bulk_load(
            db,
            sid,
            ins,
            (0..200u64).map(|k| vec![Value::Int(k as i64), Value::Text(format!("d{k}"))]),
            1000,
        );
        db.execute(
            sid,
            "CREATE TABLE runner_sink (id INT PRIMARY KEY, v FLOAT)",
            &[],
        )
        .unwrap();

        let mut stmts = Vec::new();
        for i in 0..SCAN_SIZES.len() {
            stmts.push((
                Kind::SeqScan(i),
                db.prepare(&format!("SELECT count(*) FROM runner_seq{i} WHERE b >= $1"))
                    .unwrap(),
            ));
        }
        stmts.push((
            Kind::PointLookup,
            db.prepare("SELECT * FROM runner_data WHERE id = $1")
                .unwrap(),
        ));
        stmts.push((
            Kind::RangeScan,
            db.prepare("SELECT a FROM runner_data WHERE id BETWEEN $1 AND $2")
                .unwrap(),
        ));
        stmts.push((
            Kind::SortRange,
            db.prepare("SELECT b FROM runner_data WHERE id BETWEEN $1 AND $2 ORDER BY b DESC")
                .unwrap(),
        ));
        stmts.push((
            Kind::GroupAgg,
            db.prepare(
                "SELECT a, count(*), sum(b) FROM runner_data WHERE id BETWEEN $1 AND $2 GROUP BY a",
            )
            .unwrap(),
        ));
        stmts.push((
            Kind::Join,
            // The probe-side restriction sweeps the probe count too, so
            // the hash-join-probe model sees feature variety.
            db.prepare(
                "SELECT count(*) FROM runner_data r JOIN runner_dim d ON r.a = d.k \
                 WHERE r.id BETWEEN $1 AND $2 AND d.k <= $3",
            )
            .unwrap(),
        ));
        stmts.push((
            Kind::InsertOne,
            db.prepare("INSERT INTO runner_sink VALUES ($1, $2)")
                .unwrap(),
        ));
        stmts.push((
            Kind::UpdateOne,
            db.prepare("UPDATE runner_data SET b = b + 1.0 WHERE id = $1")
                .unwrap(),
        ));
        stmts.push((
            Kind::UpdateRange,
            db.prepare("UPDATE runner_data SET b = b + 1.0 WHERE id BETWEEN $1 AND $2")
                .unwrap(),
        ));
        stmts.push((
            Kind::DeleteOne,
            db.prepare("DELETE FROM runner_sink WHERE id = $1").unwrap(),
        ));
        self.stmts = stmts;
    }

    fn txn(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let (kind, stmt) = self.stmts[(self.step % self.stmts.len() as u64) as usize];
        // Sweep widths cycle through several decades.
        let widths = [1i64, 8, 32, 128, 512, 2048];
        let width = widths[(self.step / self.stmts.len() as u64) as usize % widths.len()];
        let lo = ctx.rng.random_range(0..18_000) as i64;
        self.step += 1;
        ctx.begin();
        let r = match kind {
            Kind::SeqScan(_) => ctx.request(stmt, &[Value::Float(0.0)]).map(|_| ()),
            Kind::PointLookup => ctx.request(stmt, &[Value::Int(lo)]).map(|_| ()),
            Kind::RangeScan | Kind::SortRange | Kind::GroupAgg | Kind::UpdateRange => ctx
                .request(stmt, &[Value::Int(lo), Value::Int(lo + width)])
                .map(|_| ()),
            Kind::Join => ctx
                .request(
                    stmt,
                    &[
                        Value::Int(lo),
                        Value::Int(lo + width),
                        Value::Int((width / 4) % 200),
                    ],
                )
                .map(|_| ()),
            Kind::InsertOne => {
                self.sink_next += 1;
                ctx.request(stmt, &[Value::Int(self.sink_next), Value::Float(1.0)])
                    .map(|_| ())
            }
            Kind::UpdateOne => ctx.request(stmt, &[Value::Int(lo)]).map(|_| ()),
            Kind::DeleteOne => {
                let victim = self.sink_next - 1;
                ctx.request(stmt, &[Value::Int(victim.max(1_000_000))])
                    .map(|_| ())
            }
        };
        match r {
            Ok(()) => ctx.commit().is_ok(),
            Err(_) => {
                ctx.rollback();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{collect_datasets, RunOptions};
    use tscout::{CollectionMode, TsConfig};
    use tscout_kernel::{HardwareProfile, Kernel};

    #[test]
    fn runner_sweeps_generate_diverse_ou_data() {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 77);
        k.noise_frac = 0.0;
        let mut db = Database::new(k);
        let mut w = OfflineRunner::new();
        w.setup(&mut db);
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.enable_all_subsystems();
        db.attach_tscout(cfg).unwrap();
        {
            let ts = db.tscout_mut().unwrap();
            for s in tscout::ALL_SUBSYSTEMS {
                ts.set_sampling_rate(s, 100);
            }
        }
        let (stats, data) = collect_datasets(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 1,
                duration_ns: 60e6,
                ..Default::default()
            },
        );
        assert!(stats.committed > 30, "committed {}", stats.committed);
        let names: Vec<&str> = data.iter().map(|d| d.name.as_str()).collect();
        for expected in [
            "seq_scan",
            "idx_lookup",
            "idx_range_scan",
            "sort",
            "agg_build",
            "hash_join_build",
            "insert",
            "update",
            "output",
            "network_read",
            "network_write",
            "log_serialize",
        ] {
            assert!(
                names.contains(&expected),
                "missing OU data for {expected}: {names:?}"
            );
        }
        // The sweeps must cover a range of feature magnitudes.
        let range = data.iter().find(|d| d.name == "idx_range_scan").unwrap();
        let max_examined = range
            .points
            .iter()
            .map(|p| p.features[0])
            .fold(0.0f64, f64::max);
        let min_examined = range
            .points
            .iter()
            .map(|p| p.features[0])
            .fold(f64::INFINITY, f64::min);
        assert!(
            max_examined > 20.0 * min_examined.max(1.0),
            "sweep range too narrow"
        );
    }
}
