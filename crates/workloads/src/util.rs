//! Shared workload utilities.

use rand::rngs::StdRng;
use rand::RngExt;

use noisetap::engine::{Database, SessionId};
use noisetap::Value;

/// Deterministic alphanumeric string of the given length.
pub fn rand_string(rng: &mut StdRng, len: usize) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    (0..len)
        .map(|_| CHARS[rng.random_range(0..CHARS.len())] as char)
        .collect()
}

/// NURand-style non-uniform pick in `[0, n)` (hot-spot skew à la TPC-C).
pub fn nurand(rng: &mut StdRng, a: u64, n: u64) -> u64 {
    let x = rng.random_range(0..=a);
    let y = rng.random_range(0..n);
    ((x.wrapping_mul(8191).wrapping_add(y)) % n).min(n - 1)
}

/// Pick an index by weight.
pub fn pick_weighted(rng: &mut StdRng, weights: &[u32]) -> usize {
    let total: u32 = weights.iter().sum();
    let mut roll = rng.random_range(0..total);
    for (i, w) in weights.iter().enumerate() {
        if roll < *w {
            return i;
        }
        roll -= w;
    }
    weights.len() - 1
}

/// Bulk-load rows through a prepared INSERT inside batched transactions.
pub fn bulk_load(
    db: &mut Database,
    sid: SessionId,
    stmt: noisetap::engine::StatementId,
    rows: impl Iterator<Item = Vec<Value>>,
    batch: usize,
) {
    let mut in_batch = 0usize;
    db.begin(sid);
    for row in rows {
        db.execute_prepared(sid, stmt, &row)
            .expect("bulk load insert failed");
        in_batch += 1;
        if in_batch >= batch {
            db.commit(sid).unwrap();
            db.begin(sid);
            in_batch = 0;
        }
    }
    db.commit(sid).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rand_string_len_and_determinism() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let s1 = rand_string(&mut a, 100);
        let s2 = rand_string(&mut b, 100);
        assert_eq!(s1.len(), 100);
        assert_eq!(s1, s2);
    }

    #[test]
    fn nurand_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = nurand(&mut rng, 255, 100);
            assert!(v < 100);
        }
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[pick_weighted(&mut rng, &[80, 15, 5])] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        assert!(counts[0] > 7_000 && counts[0] < 9_000);
    }
}
