//! # tscout-workloads — benchmarks, offline runners, and the driver
//!
//! The paper's evaluation workloads (§6.1), reimplemented against the
//! NoiseTap DBMS:
//!
//! * [`ycsb::Ycsb`] — read-only point lookups on a 10×100-byte-field
//!   table;
//! * [`smallbank::SmallBank`] — six banking transactions plus the added
//!   transfer;
//! * [`tatp::Tatp`] — telecom caller-location transactions with a
//!   secondary-index indirection path;
//! * [`tpcc::Tpcc`] — order processing: nine tables, five transaction
//!   types, warehouse scaling;
//! * [`chbenchmark::ChBenchmark`] — HTAP: TPC-C plus TPC-H-flavored
//!   analytical queries;
//! * [`runner::OfflineRunner`] — the per-OU microbenchmark sweeps that
//!   produce *offline* training data (§2.4);
//! * [`driver`] — the BenchBase-equivalent multi-terminal driver with
//!   virtual-time scheduling, trace capture, and dataset assembly.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod chbenchmark;
pub mod driver;
pub mod runner;
pub mod smallbank;
pub mod tatp;
pub mod tpcc;
pub mod util;
pub mod ycsb;

pub use chbenchmark::ChBenchmark;
pub use driver::{
    assign_templates, build_datasets, collect_datasets, run, run_with_lifecycle, ModelLifecycle,
    RunOptions, RunStats, TxnCtx, Workload,
};
pub use runner::OfflineRunner;
pub use smallbank::SmallBank;
pub use tatp::Tatp;
pub use tpcc::Tpcc;
pub use ycsb::Ycsb;
