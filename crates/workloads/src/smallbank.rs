//! SmallBank — simple banking OLTP (paper §6.1).
//!
//! "Transactions perform simple read and update operations on customers'
//! accounts [...] In addition to the original six transaction types, we
//! added a transaction that transfers money between two accounts."

use rand::RngExt;

use noisetap::engine::{Database, StatementId};
use noisetap::Value;

use crate::driver::{TxnCtx, Workload};
use crate::util::{bulk_load, pick_weighted};

/// SmallBank workload.
#[derive(Debug)]
pub struct SmallBank {
    pub customers: u64,
    stmts: Option<Stmts>,
}

#[derive(Debug)]
struct Stmts {
    get_savings: StatementId,
    get_checking: StatementId,
    upd_savings: StatementId,
    upd_checking: StatementId,
    zero_savings: StatementId,
}

impl SmallBank {
    pub fn new(customers: u64) -> SmallBank {
        SmallBank {
            customers,
            stmts: None,
        }
    }

    fn two_accounts(&self, ctx: &mut TxnCtx<'_>) -> (i64, i64) {
        let a = ctx.rng.random_range(0..self.customers) as i64;
        let mut b = ctx.rng.random_range(0..self.customers) as i64;
        if b == a {
            b = (b + 1) % self.customers as i64;
        }
        (a, b)
    }
}

impl Workload for SmallBank {
    fn name(&self) -> &'static str {
        "smallbank"
    }

    fn setup(&mut self, db: &mut Database) {
        let sid = db.create_session();
        db.execute(
            sid,
            "CREATE TABLE accounts (custid INT PRIMARY KEY, name TEXT)",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE savings (custid INT PRIMARY KEY, bal FLOAT)",
            &[],
        )
        .unwrap();
        db.execute(
            sid,
            "CREATE TABLE checking (custid INT PRIMARY KEY, bal FLOAT)",
            &[],
        )
        .unwrap();
        let ins_a = db.prepare("INSERT INTO accounts VALUES ($1, $2)").unwrap();
        let ins_s = db.prepare("INSERT INTO savings VALUES ($1, $2)").unwrap();
        let ins_c = db.prepare("INSERT INTO checking VALUES ($1, $2)").unwrap();
        let n = self.customers;
        bulk_load(
            db,
            sid,
            ins_a,
            (0..n).map(|i| vec![Value::Int(i as i64), Value::Text(format!("cust{i}"))]),
            1000,
        );
        bulk_load(
            db,
            sid,
            ins_s,
            (0..n).map(|i| vec![Value::Int(i as i64), Value::Float(1000.0)]),
            1000,
        );
        bulk_load(
            db,
            sid,
            ins_c,
            (0..n).map(|i| vec![Value::Int(i as i64), Value::Float(1000.0)]),
            1000,
        );
        self.stmts = Some(Stmts {
            get_savings: db
                .prepare("SELECT bal FROM savings WHERE custid = $1")
                .unwrap(),
            get_checking: db
                .prepare("SELECT bal FROM checking WHERE custid = $1")
                .unwrap(),
            upd_savings: db
                .prepare("UPDATE savings SET bal = bal + $2 WHERE custid = $1")
                .unwrap(),
            upd_checking: db
                .prepare("UPDATE checking SET bal = bal + $2 WHERE custid = $1")
                .unwrap(),
            zero_savings: db
                .prepare("UPDATE savings SET bal = 0.0 WHERE custid = $1")
                .unwrap(),
        });
    }

    fn txn(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let s = self.stmts.as_ref().expect("setup() not called");
        let (get_savings, get_checking, upd_savings, upd_checking, zero_savings) = (
            s.get_savings,
            s.get_checking,
            s.upd_savings,
            s.upd_checking,
            s.zero_savings,
        );
        let (a, b) = self.two_accounts(ctx);
        // Balance, DepositChecking, TransactSavings, Amalgamate,
        // WriteCheck, SendPayment (the added transfer).
        let choice = pick_weighted(ctx.rng, &[15, 15, 15, 15, 15, 25]);
        ctx.begin();
        let amount = Value::Float(ctx.rng.random_range(1..100) as f64);
        let ok = (|| -> Result<(), noisetap::DbError> {
            match choice {
                0 => {
                    ctx.request(get_savings, &[Value::Int(a)])?;
                    ctx.request(get_checking, &[Value::Int(a)])?;
                }
                1 => {
                    ctx.request(upd_checking, &[Value::Int(a), amount.clone()])?;
                }
                2 => {
                    ctx.request(upd_savings, &[Value::Int(a), amount.clone()])?;
                }
                3 => {
                    let bal = ctx
                        .request(get_savings, &[Value::Int(a)])?
                        .rows
                        .first()
                        .and_then(|r| r[0].as_float())
                        .unwrap_or(0.0);
                    ctx.request(zero_savings, &[Value::Int(a)])?;
                    ctx.request(upd_checking, &[Value::Int(b), Value::Float(bal)])?;
                }
                4 => {
                    ctx.request(get_savings, &[Value::Int(a)])?;
                    ctx.request(get_checking, &[Value::Int(a)])?;
                    ctx.request(
                        upd_checking,
                        &[Value::Int(a), Value::Float(-amount.as_float().unwrap())],
                    )?;
                }
                _ => {
                    ctx.request(
                        upd_checking,
                        &[Value::Int(a), Value::Float(-amount.as_float().unwrap())],
                    )?;
                    ctx.request(upd_checking, &[Value::Int(b), amount.clone()])?;
                }
            }
            Ok(())
        })();
        match ok {
            Ok(()) => ctx.commit().is_ok(),
            Err(_) => {
                ctx.rollback();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, RunOptions};
    use tscout_kernel::{HardwareProfile, Kernel};

    #[test]
    fn smallbank_conserves_money_modulo_deposits() {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 9);
        k.noise_frac = 0.0;
        let mut db = Database::new(k);
        let mut w = SmallBank::new(200);
        w.setup(&mut db);
        let stats = run(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 4,
                duration_ns: 4e6,
                ..Default::default()
            },
        );
        assert!(stats.committed > 10);
        // Every account still exists and balances are finite numbers.
        let sid = db.create_session();
        let out = db
            .execute(sid, "SELECT count(*) FROM checking", &[])
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(200));
        let out = db
            .execute(sid, "SELECT sum(bal) FROM checking", &[])
            .unwrap();
        assert!(out.rows[0][0].as_float().unwrap().is_finite());
    }
}
