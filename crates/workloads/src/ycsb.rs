//! YCSB — the Yahoo! Cloud Serving Benchmark (paper §6.1).
//!
//! Read-only configuration as in the paper: every transaction retrieves a
//! single tuple by primary key. One table of tuples with a key and ten
//! 100-byte fields (~1 KB/row). The paper loads 12M tuples (~13 GB); the
//! default here is scaled down and configurable.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use noisetap::engine::{Database, StatementId};
use noisetap::Value;

use crate::driver::{TxnCtx, Workload};
use crate::util::{bulk_load, rand_string};

/// YCSB workload state.
#[derive(Debug)]
pub struct Ycsb {
    pub rows: u64,
    pub field_len: usize,
    read: Option<StatementId>,
    load_seed: u64,
}

impl Ycsb {
    pub fn new(rows: u64) -> Ycsb {
        Ycsb {
            rows,
            field_len: 100,
            read: None,
            load_seed: 0x5C5B,
        }
    }
}

impl Workload for Ycsb {
    fn name(&self) -> &'static str {
        "ycsb"
    }

    fn setup(&mut self, db: &mut Database) {
        let sid = db.create_session();
        let cols: String = (0..10)
            .map(|i| format!(", field{i} TEXT"))
            .collect::<Vec<_>>()
            .concat();
        db.execute(
            sid,
            &format!("CREATE TABLE usertable (ycsb_key INT PRIMARY KEY{cols})"),
            &[],
        )
        .unwrap();
        let placeholders: String = (2..=11)
            .map(|i| format!(", ${i}"))
            .collect::<Vec<_>>()
            .concat();
        let ins = db
            .prepare(&format!("INSERT INTO usertable VALUES ($1{placeholders})"))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(self.load_seed);
        let field_len = self.field_len;
        let n = self.rows;
        // One shared payload string keeps load memory-frugal while the
        // row *width* (what the cost model sees) stays realistic.
        let payload = rand_string(&mut rng, field_len);
        bulk_load(
            db,
            sid,
            ins,
            (0..n).map(move |k| {
                let mut row = vec![Value::Int(k as i64)];
                row.extend((0..10).map(|_| Value::Text(payload.clone())));
                row
            }),
            1000,
        );
        self.read = Some(
            db.prepare("SELECT * FROM usertable WHERE ycsb_key = $1")
                .unwrap(),
        );
    }

    fn txn(&mut self, ctx: &mut TxnCtx<'_>) -> bool {
        let key = ctx.rng.random_range(0..self.rows) as i64;
        let stmt = self.read.expect("setup() not called");
        ctx.begin();
        let ok = ctx.request(stmt, &[Value::Int(key)]).is_ok();
        if ok {
            ctx.commit().is_ok()
        } else {
            ctx.rollback();
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run, RunOptions};
    use tscout_kernel::{HardwareProfile, Kernel};

    #[test]
    fn ycsb_runs_and_commits() {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 5);
        k.noise_frac = 0.0;
        let mut db = Database::new(k);
        let mut w = Ycsb::new(500);
        w.setup(&mut db);
        assert_eq!(db.table_live_tuples("usertable"), Some(500));
        let stats = run(
            &mut db,
            &mut w,
            &RunOptions {
                terminals: 2,
                duration_ns: 3e6,
                ..Default::default()
            },
        );
        assert!(stats.committed > 10, "committed {}", stats.committed);
        assert_eq!(stats.aborted, 0);
        assert!(stats.throughput > 0.0);
        // Read-only: no WAL records beyond the load.
        let flushed_before = db.wal.flushed_records;
        db.pump_wal(1e12);
        assert_eq!(db.wal.flushed_records, flushed_before);
    }
}
