//! The virtual-time workload driver.
//!
//! Plays the role of BenchBase in the paper's evaluation: N closed-loop
//! terminals issue transactions against the DBMS. Scheduling is
//! earliest-first over the terminals' virtual clocks, which yields one
//! coherent global timeline: group-commit batches form from real arrival
//! patterns, the Processor drains concurrently, and throughput/latency
//! come from the clocks — deterministic for a fixed seed.
//!
//! The driver also captures a *query span trace* — which statement
//! template each session executed, and when — used afterwards to tag
//! every collected training point with its query template (the paper's
//! per-template accuracy statistic).

use rand::rngs::StdRng;
use rand::SeedableRng;

use noisetap::engine::{Database, DbError, SessionId, StatementId};
use noisetap::{EngineMode, ExecOutcome, Value};
use tscout::{Processor, Sink, TScout, TrainingPoint};
use tscout_actions::{ActionEngine, DbmsActuator, PlannerInputs, SubsystemRate, POLICY_COUNT};
use tscout_archive::{Archive, ArchiveOptions};
use tscout_models::dataset::{LabeledPoint, OuData};
use tscout_models::registry::{ModelRegistry, SwapDecision};
use tscout_models::{datasets_from_archive, ModelKind};

/// One traced client request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpan {
    pub tid: u32,
    pub template: u32,
    pub start_ns: f64,
    pub end_ns: f64,
}

/// Per-transaction context handed to workload transaction bodies.
#[derive(Debug)]
pub struct TxnCtx<'a> {
    pub db: &'a mut Database,
    pub sid: SessionId,
    pub rng: &'a mut StdRng,
    trace: &'a mut Vec<QuerySpan>,
}

impl<'a> TxnCtx<'a> {
    /// Build a transaction context (the driver does this per terminal;
    /// exposed for tests and custom harnesses).
    pub fn new(
        db: &'a mut Database,
        sid: SessionId,
        rng: &'a mut StdRng,
        trace: &'a mut Vec<QuerySpan>,
    ) -> TxnCtx<'a> {
        TxnCtx {
            db,
            sid,
            rng,
            trace,
        }
    }

    /// Issue a traced client request.
    pub fn request(&mut self, stmt: StatementId, params: &[Value]) -> Result<ExecOutcome, DbError> {
        let task = self.db.session_task(self.sid);
        let start_ns = self.db.now(self.sid);
        let r = self.db.client_request(self.sid, stmt, params);
        self.trace.push(QuerySpan {
            tid: task.0,
            template: stmt.0 as u32 + 1,
            start_ns,
            end_ns: self.db.now(self.sid),
        });
        r
    }

    pub fn begin(&mut self) {
        self.db.begin(self.sid);
    }

    pub fn commit(&mut self) -> Result<(), DbError> {
        self.db.commit(self.sid)
    }

    pub fn rollback(&mut self) {
        let _ = self.db.rollback(self.sid);
    }
}

/// A benchmark workload.
pub trait Workload {
    fn name(&self) -> &'static str;
    /// Create schema, load data, prepare statements. Runs untraced on a
    /// bootstrap session.
    fn setup(&mut self, db: &mut Database);
    /// Execute one transaction; returns false when it aborted.
    fn txn(&mut self, ctx: &mut TxnCtx<'_>) -> bool;
}

/// Driver options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    pub terminals: usize,
    /// Virtual duration of the measured run, ns.
    pub duration_ns: f64,
    /// RNG seed (terminal behavior + workload parameters).
    pub seed: u64,
    /// Pump background tasks (WAL, Processor) every this many ns.
    pub pump_every_ns: f64,
    /// Run GC every this many ns (0 = never).
    pub gc_every_ns: f64,
    /// Operator plane: start an embedded `tscout-obsd` daemon serving
    /// this run's telemetry over HTTP for the duration of the run.
    /// `None` also consults `TSCOUT_OBSD` / `TSCOUT_OBSD_ADDR_FILE` in
    /// the environment (so fig binaries opt in without a code change).
    pub obsd: Option<tscout_obsd::ObsdConfig>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            terminals: 1,
            duration_ns: 1e9,
            seed: 0xBEEF,
            pump_every_ns: 2e6,
            gc_every_ns: 250e6,
            obsd: None,
        }
    }
}

/// Operator-plane activation from the environment: `TSCOUT_OBSD=1`
/// serves on an ephemeral localhost port, `TSCOUT_OBSD=host:port`
/// requests that address (falling back to ephemeral on `EADDRINUSE`),
/// and `TSCOUT_OBSD_ADDR_FILE` names a file to write the bound address
/// to for port discovery.
fn obsd_env_config() -> Option<tscout_obsd::ObsdConfig> {
    let v = std::env::var("TSCOUT_OBSD").ok()?;
    if v.is_empty() || v == "0" {
        return None;
    }
    let mut cfg = tscout_obsd::ObsdConfig::default();
    if v.contains(':') {
        cfg.addr = v;
    }
    if let Ok(f) = std::env::var("TSCOUT_OBSD_ADDR_FILE") {
        if !f.is_empty() {
            cfg.addr_file = Some(f.into());
        }
    }
    Some(cfg)
}

/// Results of one run.
#[derive(Debug)]
pub struct RunStats {
    pub committed: u64,
    pub aborted: u64,
    pub duration_ns: f64,
    /// Committed transactions per virtual second.
    pub throughput: f64,
    /// Transaction latencies, ns (committed only).
    pub latencies_ns: Vec<f64>,
    /// Completion times of committed transactions, ns (timeline plots).
    pub txn_ends_ns: Vec<f64>,
    /// Query span trace for template assignment.
    pub trace: Vec<QuerySpan>,
    /// Decoded training points collected during the run.
    pub points: Vec<TrainingPoint>,
    /// Samples the Processor archived.
    pub samples_processed: u64,
    /// Samples lost to ring overwrites.
    pub samples_dropped: u64,
    /// Samples persisted to the training-data archive (lifecycle runs).
    pub archived_samples: u64,
    /// Retraining attempts the model lifecycle made (lifecycle runs).
    pub retrains: u64,
}

impl RunStats {
    /// Latency percentile in milliseconds (e.g. `p(99.0)` for p99).
    pub fn latency_percentile_ms(&self, pct: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let mut l = self.latencies_ns.clone();
        l.sort_by(f64::total_cmp);
        let idx = ((pct / 100.0) * (l.len() - 1) as f64).round() as usize;
        l[idx.min(l.len() - 1)] / 1e6
    }

    /// Throughput in thousands of transactions per second.
    pub fn ktps(&self) -> f64 {
        self.throughput / 1000.0
    }
}

/// The model lifecycle a live run carries: persistent training-data
/// archive + generation-counted model registry, retrained on the pump
/// timeline (paper §2: collection feeds models that steer the DBMS; the
/// lifecycle closes that loop inside the simulation).
#[derive(Debug)]
pub struct ModelLifecycle {
    pub archive: Archive,
    pub registry: ModelRegistry,
    /// Retrain every this many virtual ns (`f64::MAX` = only at the end
    /// of the run).
    pub retrain_every_ns: f64,
    /// Holdout split for the accuracy gate: every Nth point per OU.
    pub holdout_every: usize,
    /// Samples persisted to the archive so far.
    pub archived_samples: u64,
    /// Retraining attempts (accepted + rejected + skipped).
    pub retrains: u64,
    pub swaps_accepted: u64,
    pub swaps_rejected: u64,
    /// Optional autonomous action engine, ticked at pump cadence after
    /// the observability turn. Attach with [`ModelLifecycle::with_actions`].
    pub actions: Option<ActionEngine>,
    /// An engine-actuated retrain rebaselines the drift references once
    /// the registry actually accepts a new generation.
    pending_rebaseline: bool,
    /// Mean live-model predicted cost of execution-engine OUs in the
    /// last residual-scored batch (the `pipeline_mode` policy input).
    last_exec_predicted_ns: Option<f64>,
}

impl ModelLifecycle {
    /// Open (or recover) the archive at `dir` and start an empty
    /// registry at generation 0.
    pub fn new(
        dir: &std::path::Path,
        opts: ArchiveOptions,
        kind: ModelKind,
        seed: u64,
        retrain_every_ns: f64,
        telemetry: tscout_telemetry::Telemetry,
    ) -> Result<ModelLifecycle, tscout_archive::ArchiveError> {
        Ok(ModelLifecycle {
            archive: Archive::open(dir, opts, telemetry.clone())?,
            registry: ModelRegistry::new(kind, seed, telemetry),
            retrain_every_ns,
            holdout_every: 5,
            archived_samples: 0,
            retrains: 0,
            swaps_accepted: 0,
            swaps_rejected: 0,
            actions: None,
            pending_rebaseline: false,
            last_exec_predicted_ns: None,
        })
    }

    /// Attach an action engine; it closes the loop at pump cadence.
    pub fn with_actions(mut self, engine: ActionEngine) -> ModelLifecycle {
        self.actions = Some(engine);
        self
    }

    /// One lifecycle turn: tag `points` against the trace so far, persist
    /// them to the archive (flush + compaction policy), then retrain from
    /// the full archived history behind the accuracy gate.
    ///
    /// Runs on the Processor's task: archival is charged per sample and
    /// retraining per training point, under the profiler frames
    /// `tscout;processor:archive` and `tscout;models:retrain`.
    pub fn step(
        &mut self,
        kernel: &mut tscout_kernel::Kernel,
        task: tscout_kernel::TaskId,
        points: &[TrainingPoint],
        trace: &[QuerySpan],
        concurrency: usize,
    ) {
        let _root = kernel.profile_frame(task, "tscout", true);
        // Online residual tracking: score the live models against this
        // batch's actuals (before the batch can influence a retrain),
        // feeding each OU's residual-MAPE drift channel. Features get the
        // same hardware/concurrency context columns the datasets append.
        if !points.is_empty() && self.registry.live().is_some() {
            let mut feats: Vec<f64> = Vec::new();
            let (mut exec_sum, mut exec_n) = (0.0f64, 0u64);
            for p in points {
                feats.clear();
                feats.extend_from_slice(&p.features);
                feats.push(kernel.hw.clock_ghz);
                feats.push(concurrency as f64);
                if let Some(predicted) = self.registry.predict_ns(&p.ou_name, &feats) {
                    kernel
                        .telemetry
                        .observe_residual(&p.ou_name, predicted, p.elapsed_ns as f64);
                    if p.subsystem == tscout::Subsystem::ExecutionEngine {
                        exec_sum += predicted;
                        exec_n += 1;
                    }
                }
            }
            if exec_n > 0 {
                self.last_exec_predicted_ns = Some(exec_sum / exec_n as f64);
            }
        }
        if !points.is_empty() {
            let _frame = kernel.profile_frame(task, "processor:archive", false);
            let start = kernel.now(task);
            let tagged = assign_templates(points, trace);
            kernel.charge_overhead(
                task,
                tagged.len() as f64 * kernel.cost.archive_per_sample_ns,
            );
            for (p, template) in &tagged {
                if self.archive.append(p.to_sample(*template)).is_ok() {
                    self.archived_samples += 1;
                }
            }
            // Lineage: the batch entered a memtable; parked traces pick
            // up the archive_memtable stage collectively (a flush is a
            // batch operation, one stamp covers every parked sample).
            let appended = kernel.now(task);
            kernel.telemetry.trace_lifecycle_stamp(
                tscout_telemetry::Stage::ArchiveMemtable,
                start,
                appended,
                self.archive.buffered_samples() as u64,
            );
            let retired_before = kernel
                .telemetry
                .counter_value("archive_samples_retired_total", &[]);
            let _ = self.archive.flush();
            let _ = self.archive.maybe_compact();
            let now = kernel.now(task);
            kernel.telemetry.trace_lifecycle_stamp(
                tscout_telemetry::Stage::SegmentSeal,
                appended,
                now,
                0,
            );
            // Compaction retention retires the oldest archived samples:
            // their traces terminate as compacted rather than delivered.
            let retired = kernel
                .telemetry
                .counter_value("archive_samples_retired_total", &[])
                .saturating_sub(retired_before);
            if retired > 0 {
                kernel.telemetry.trace_compacted(retired, now);
            }
            kernel
                .telemetry
                .span("archive_ingest", "processor", start, now - start);
        }
        let _frame = kernel.profile_frame(task, "models:retrain", false);
        let start = kernel.now(task);
        let data = datasets_from_archive(&self.archive, kernel.hw.clock_ghz, concurrency);
        let n_points: usize = data.iter().map(tscout_models::OuData::len).sum();
        kernel.telemetry.trace_lifecycle_stamp(
            tscout_telemetry::Stage::Dataset,
            start,
            kernel.now(task),
            n_points as u64,
        );
        kernel.charge_overhead(task, n_points as f64 * kernel.cost.retrain_per_point_ns);
        match self.registry.retrain_split(&data, self.holdout_every) {
            SwapDecision::Accepted { .. } => self.swaps_accepted += 1,
            SwapDecision::Rejected { .. } => self.swaps_rejected += 1,
            SwapDecision::Skipped => {}
        }
        self.retrains += 1;
        let now = kernel.now(task);
        // Lineage terminal: every parked trace completes delivered at the
        // current model generation. The lifecycle-side tracing cost (one
        // stage record per memtable/seal/dataset/generation stamp) lands
        // on this task's clock, like the rest of the lifecycle work.
        let completed = kernel
            .telemetry
            .trace_lifecycle_complete(now, self.registry.generation());
        if completed > 0 {
            kernel.charge_overhead(
                task,
                completed as f64 * 4.0 * kernel.cost.trace_stage_record_ns,
            );
        }
        kernel
            .telemetry
            .span("retrain", "models", start, now - start);
    }
}

/// The action engine's view of the live system: sampling rates on the
/// collector, retrains on the lifecycle, compaction scheduling on the
/// archive, marker placement on the engine.
struct DriverActuator<'a> {
    ts: &'a mut TScout,
    mode: &'a mut EngineMode,
    archive: &'a mut Archive,
    /// A `trigger_retrain` actuation pulls the lifecycle's next retrain
    /// forward to the next pump tick.
    retrain_requested: bool,
}

impl std::fmt::Debug for DriverActuator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriverActuator")
            .field("retrain_requested", &self.retrain_requested)
            .finish_non_exhaustive()
    }
}

impl DbmsActuator for DriverActuator<'_> {
    fn set_sampling_rate(&mut self, subsystem: &str, rate: u8) {
        if let Some(s) = tscout::ALL_SUBSYSTEMS
            .into_iter()
            .find(|s| s.name() == subsystem)
        {
            self.ts.set_sampling_rate(s, rate);
        }
    }
    fn trigger_retrain(&mut self) {
        self.retrain_requested = true;
    }
    fn schedule_compaction(&mut self) {
        self.archive.request_compaction();
    }
    fn hold_compaction(&mut self, hold: bool) {
        self.archive.set_compaction_hold(hold);
    }
    fn set_pipeline_mode(&mut self, fused: bool) {
        *self.mode = if fused {
            EngineMode::Fused
        } else {
            EngineMode::PerOperator
        };
    }
}

/// Run a workload for a virtual duration.
pub fn run(db: &mut Database, workload: &mut dyn Workload, opts: &RunOptions) -> RunStats {
    run_inner(db, workload, opts, None)
}

/// Run a workload with a live model lifecycle: collected points are
/// tagged and persisted to the archive at the lifecycle's retrain
/// cadence, and the registry hot-swaps models behind its accuracy gate.
pub fn run_with_lifecycle(
    db: &mut Database,
    workload: &mut dyn Workload,
    opts: &RunOptions,
    lifecycle: &mut ModelLifecycle,
) -> RunStats {
    run_inner(db, workload, opts, Some(lifecycle))
}

fn run_inner(
    db: &mut Database,
    workload: &mut dyn Workload,
    opts: &RunOptions,
    mut lifecycle: Option<&mut ModelLifecycle>,
) -> RunStats {
    // Operator plane: the daemon serves lock-clone snapshots of this
    // run's registry from OS threads and records its own metrics in a
    // server-owned registry, so collected samples are bit-identical
    // with the server on or off. The guard's Drop joins every server
    // thread when the run returns.
    let _obsd = opts
        .obsd
        .clone()
        .or_else(obsd_env_config)
        .and_then(|cfg| tscout_obsd::ObsdServer::start(cfg, db.kernel.telemetry.clone()).ok());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let terminals: Vec<SessionId> = (0..opts.terminals).map(|_| db.create_session()).collect();
    // Align all terminal clocks to the same start line.
    let start_ns = terminals
        .iter()
        .map(|s| db.now(*s))
        .fold(0.0f64, f64::max)
        .max(db.kernel.now(db.wal.task));
    for s in &terminals {
        let task = db.session_task(*s);
        db.kernel.advance_to(task, start_ns);
    }
    db.kernel.set_runnable(opts.terminals as u32 + 1); // +1 for background

    let mut processor = Processor::new(&mut db.kernel, Sink::Memory(Vec::new()));
    // With a lifecycle, the memory sink is a staging buffer on the way to
    // the archive: traced samples park at the sink stage and complete at
    // the next retrain instead of terminating on consume.
    processor.trace_parks = lifecycle.is_some();
    db.kernel.advance_to(processor.task, start_ns);

    let end_ns = start_ns + opts.duration_ns;
    let mut trace: Vec<QuerySpan> = Vec::new();
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut latencies = Vec::new();
    let mut txn_ends = Vec::new();
    let mut next_pump = start_ns + opts.pump_every_ns;
    let mut next_gc = if opts.gc_every_ns > 0.0 {
        start_ns + opts.gc_every_ns
    } else {
        f64::MAX
    };
    // Lifecycle runs drain the in-memory sink at each retrain; keep the
    // full point stream for the caller regardless.
    let mut all_points: Vec<TrainingPoint> = Vec::new();
    let mut next_retrain = match lifecycle.as_ref() {
        Some(lc) if lc.retrain_every_ns < f64::MAX => start_ns + lc.retrain_every_ns,
        _ => f64::MAX,
    };
    // Baseline for the statement-stats accounting delta charged at pump
    // cadence (statements recorded before this run are not ours to bill).
    let mut last_stmt_recorded = db.kernel.telemetry.stmt_recorded();

    loop {
        // Earliest-first: advance the terminal with the smallest clock.
        let (&sid, now) = terminals
            .iter()
            .map(|s| (s, db.now(*s)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        if now >= end_ns {
            break;
        }
        // Background pumping keeps the WAL and Processor in lockstep with
        // the foreground timeline.
        if now >= next_pump {
            let pump_start = now;
            db.pump_wal(now);
            let (kernel, ts) = db.collection_parts();
            if let Some(ts) = ts {
                processor.poll(kernel, ts, now);
            }
            if now >= next_retrain {
                if let Some(lc) = lifecycle.as_deref_mut() {
                    let points = processor.take_points();
                    let gen_before = lc.registry.generation();
                    lc.step(kernel, processor.task, &points, &trace, opts.terminals);
                    all_points.extend(points);
                    // An engine-actuated retrain rebaselines the drift
                    // references — but only once a new generation
                    // actually installs, so a rejected swap keeps the
                    // old reference (and the CRITICAL state) honest.
                    if lc.pending_rebaseline && lc.registry.generation() > gen_before {
                        let _root = kernel.profile_frame(processor.task, "tscout", true);
                        let _frame =
                            kernel.profile_frame(processor.task, "actions:rebaseline", false);
                        let n = kernel.telemetry.drift_rebaseline_all();
                        kernel.charge_overhead(
                            processor.task,
                            kernel.cost.drift_eval_per_ou_ns * n as f64,
                        );
                        lc.pending_rebaseline = false;
                    }
                    next_retrain = now + lc.retrain_every_ns;
                }
            }
            // Refresh the engine's installed model snapshot at pump
            // cadence so per-statement predicted-vs-actual attribution
            // (EXPLAIN ANALYZE, ts_stat_statements MAPE) tracks hot swaps.
            if let Some(lc) = lifecycle.as_deref_mut() {
                db.install_live_model(lc.registry.live(), opts.terminals as f64);
            }
            let pump_end = db.kernel.now(db.wal.task);
            db.kernel.telemetry.span(
                "pump",
                "driver",
                pump_start,
                (pump_end - pump_start).max(0.0),
            );
            // Observability turn at the pump cadence: evaluate drift,
            // scrape a counter window into the time-series ring, then run
            // the health rules over the fresh gauges and rates. The
            // analysis is charged to the Processor's task like the rest of
            // its background work.
            {
                let kernel = &mut db.kernel;
                let (n_ous, n_rules) = kernel
                    .telemetry
                    .with_registry(|r| (r.drift().len(), r.health().rules().len()));
                let _root = kernel.profile_frame(processor.task, "tscout", true);
                let _frame = kernel.profile_frame(processor.task, "telemetry:observability", false);
                // Statement-stats accounting rides the same cadence: the
                // engine's recording path is clock-neutral (PR-6 tracer
                // discipline), so its cost is charged here from the
                // recorded-counter delta — training samples stay
                // bit-identical with statement stats on or off.
                let stmt_recorded = kernel.telemetry.stmt_recorded();
                let stmt_delta = stmt_recorded.saturating_sub(last_stmt_recorded) as f64;
                last_stmt_recorded = stmt_recorded;
                kernel.charge_overhead(
                    processor.task,
                    kernel.cost.drift_eval_per_ou_ns * n_ous as f64
                        + kernel.cost.health_rule_eval_ns * n_rules as f64
                        + (kernel.cost.stmt_fingerprint_ns + kernel.cost.stmt_record_ns)
                            * stmt_delta,
                );
                let alerts = kernel.telemetry.observability_tick(now);
                // Flight recorder: a CRITICAL transition snapshots the
                // trace ring, alert history, metrics, and active profile
                // into an on-disk evidence bundle.
                if !alerts.is_empty() && kernel.telemetry.flight_recorder_armed() {
                    let folded = kernel.profiler.folded_text();
                    kernel.telemetry.flight_record(now, &alerts, &folded);
                }
            }
            // The profiler's tscout/dbms attribution, published as a
            // gauge every pump: the action engine's overhead signal, and
            // a run-level observable even with the engine off (so the
            // gauge series is identical in engine-on and control runs).
            let overhead_ratio = db.kernel.profiler.attribution().tscout_dbms_ratio();
            if let Some(r) = overhead_ratio {
                db.kernel
                    .telemetry
                    .gauge_set("tscout_overhead_ratio", &[], r);
            }
            // Action-engine turn: close due follow-ups, evaluate the
            // policy set, actuate survivors. All planner cost lands on
            // the Processor's clock (never a session's), so collected
            // sample bytes are bit-identical with the engine on or off.
            if let Some(lc) = lifecycle.as_deref_mut() {
                if lc.actions.as_ref().is_some_and(|e| e.cfg.enabled) {
                    let mut engine = lc.actions.take().expect("checked above");
                    let model_generation = lc.registry.generation();
                    let predicted_exec = lc.last_exec_predicted_ns;
                    let (kernel, ts, mode) = db.actuation_parts();
                    if let Some(ts) = ts {
                        let _root = kernel.profile_frame(processor.task, "tscout", true);
                        let _frame = kernel.profile_frame(processor.task, "actions:plan", false);
                        let due = engine.due_followups(now);
                        kernel.charge_overhead(
                            processor.task,
                            kernel.cost.action_plan_ns * POLICY_COUNT as f64
                                + kernel.cost.action_followup_ns * due as f64,
                        );
                        let rates: Vec<SubsystemRate> = processor
                            .subsystem_feedback(ts)
                            .into_iter()
                            .map(|f| SubsystemRate {
                                subsystem: f.subsystem.name().to_string(),
                                current: f.current,
                                recommended: f.recommended,
                                loss_delta: f.loss_delta,
                            })
                            .collect();
                        let inputs = PlannerInputs {
                            now_ns: now,
                            overhead_ratio,
                            rates,
                            predicted_exec_ou_ns: predicted_exec,
                            pipeline_fused: matches!(*mode, EngineMode::Fused),
                            model_generation,
                        };
                        let mut actuator = DriverActuator {
                            ts,
                            mode,
                            archive: &mut lc.archive,
                            retrain_requested: false,
                        };
                        let report = engine.tick(&inputs, &mut actuator);
                        if actuator.retrain_requested {
                            next_retrain = now;
                            lc.pending_rebaseline = true;
                        }
                        // Closed follow-ups become action-efficacy
                        // samples in their own archive OU family, charged
                        // like any other archival; a regressed action
                        // dumps a flight bundle naming the action id.
                        for o in &report.observed {
                            kernel
                                .charge_overhead(processor.task, kernel.cost.archive_per_sample_ns);
                            let _ = lc.archive.append(o.to_sample());
                            if o.regressed && kernel.telemetry.flight_recorder_armed() {
                                let folded = kernel.profiler.folded_text();
                                kernel.telemetry.flight_record_action(now, o.id, &folded);
                            }
                        }
                    }
                    lc.actions = Some(engine);
                }
            }
            next_pump = now + opts.pump_every_ns;
        }
        if now >= next_gc {
            db.run_gc();
            next_gc = now + opts.gc_every_ns;
        }

        let t0 = db.now(sid);
        let ok = {
            let mut ctx = TxnCtx {
                db,
                sid,
                rng: &mut rng,
                trace: &mut trace,
            };
            workload.txn(&mut ctx)
        };
        let t1 = db.now(sid);
        let outcome = if ok { "committed" } else { "aborted" };
        db.kernel
            .telemetry
            .hist_record("workload_txn_ns", &[("outcome", outcome)], t1 - t0);
        db.kernel.telemetry.span("txn", "workload", t0, t1 - t0);
        if ok {
            committed += 1;
            latencies.push(t1 - t0);
            txn_ends.push(t1);
        } else {
            aborted += 1;
        }
    }

    // Final flush. `samples_processed` is measured at the run horizon —
    // the Processor may not keep up (that is the Fig. 6 ceiling) — and
    // only then is the remaining ring drained so accuracy experiments
    // keep every surviving sample.
    db.pump_wal(end_ns + 1e9);
    let (samples_processed, samples_dropped, points) = {
        let (kernel, ts) = db.collection_parts();
        let r = match ts {
            Some(ts) => {
                processor.poll(kernel, ts, end_ns);
                let in_run = processor.processed;
                processor.drain_all(kernel, ts);
                let tail = processor.take_points();
                // Final lifecycle turn: persist the tail, seal the active
                // segment, and retrain one last time over the full history.
                if let Some(lc) = lifecycle.as_deref_mut() {
                    lc.step(kernel, processor.task, &tail, &trace, opts.terminals);
                    let _ = lc.archive.seal();
                }
                all_points.extend(tail);
                (in_run, ts.ring_dropped(), std::mem::take(&mut all_points))
            }
            None => (0, 0, Vec::new()),
        };
        r
    };
    // Final observability turn so the time-series tail, drift scores, and
    // health states reflect the fully drained run.
    let alerts = db.kernel.telemetry.observability_tick(end_ns + 2e9);
    if !alerts.is_empty() && db.kernel.telemetry.flight_recorder_armed() {
        let folded = db.kernel.profiler.folded_text();
        db.kernel
            .telemetry
            .flight_record(end_ns + 2e9, &alerts, &folded);
    }

    let duration_ns = opts.duration_ns;
    let (archived_samples, retrains) = lifecycle
        .as_ref()
        .map_or((0, 0), |lc| (lc.archived_samples, lc.retrains));
    RunStats {
        committed,
        aborted,
        duration_ns,
        throughput: committed as f64 / (duration_ns / 1e9),
        latencies_ns: latencies,
        txn_ends_ns: txn_ends,
        trace,
        points,
        samples_processed,
        samples_dropped,
        archived_samples,
        retrains,
    }
}

/// Tag each training point with the query template whose span contains
/// it (same thread, start time within the span). Background subsystems
/// (WAL, GC) fall outside any span and get template 0.
pub fn assign_templates(
    points: &[TrainingPoint],
    trace: &[QuerySpan],
) -> Vec<(TrainingPoint, u32)> {
    // Per-tid spans sorted by start.
    let mut by_tid: std::collections::HashMap<u32, Vec<&QuerySpan>> =
        std::collections::HashMap::new();
    for s in trace {
        by_tid.entry(s.tid).or_default().push(s);
    }
    for spans in by_tid.values_mut() {
        spans.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns));
    }
    points
        .iter()
        .map(|p| {
            let template = by_tid
                .get(&p.tid)
                .and_then(|spans| {
                    let t = p.start_ns as f64;
                    let i = spans.partition_point(|s| s.start_ns <= t);
                    i.checked_sub(1).map(|i| spans[i]).filter(|s| t <= s.end_ns)
                })
                .map(|s| s.template)
                .unwrap_or(0);
            (p.clone(), template)
        })
        .collect()
}

/// Build per-OU labeled datasets from tagged points. Two context features
/// are appended to every vector, mirroring §2.2's internally-collected
/// temporal features: the CPU clock in GHz (the *only* hardware
/// descriptor, §6.4) and the number of concurrent workers.
pub fn build_datasets(
    tagged: &[(TrainingPoint, u32)],
    clock_ghz: f64,
    concurrency: usize,
) -> Vec<OuData> {
    let mut by_ou: std::collections::BTreeMap<String, OuData> = Default::default();
    for (p, template) in tagged {
        let d = by_ou
            .entry(p.ou_name.clone())
            .or_insert_with(|| OuData::new(&p.ou_name));
        let mut features = p.features.clone();
        features.push(clock_ghz);
        features.push(concurrency as f64);
        d.points.push(LabeledPoint {
            features,
            target_ns: p.elapsed_ns as f64,
            template: *template,
        });
    }
    by_ou.into_values().collect()
}

/// Convenience: run + tag + build datasets in one call.
pub fn collect_datasets(
    db: &mut Database,
    workload: &mut dyn Workload,
    opts: &RunOptions,
) -> (RunStats, Vec<OuData>) {
    let clock = db.kernel.hw.clock_ghz;
    let stats = run(db, workload, opts);
    let tagged = assign_templates(&stats.points, &stats.trace);
    let data = build_datasets(&tagged, clock, opts.terminals);
    (stats, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscout::{CollectionMode, TsConfig};
    use tscout_kernel::{HardwareProfile, Kernel};

    #[test]
    fn lifecycle_archives_tags_and_swaps_models() {
        let dir = std::env::temp_dir().join(format!("tscout_lc_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 11);
        k.noise_frac = 0.0;
        k.set_profile_period_ns(tscout_telemetry::DEFAULT_PROFILE_PERIOD_NS);
        let mut db = Database::new(k);
        let mut w = crate::Ycsb::new(300);
        w.setup(&mut db);
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.enable_all_subsystems();
        db.attach_tscout(cfg).unwrap();
        {
            let ts = db.tscout_mut().unwrap();
            for s in tscout::ALL_SUBSYSTEMS {
                ts.set_sampling_rate(s, 100);
            }
        }
        let mut lc = ModelLifecycle::new(
            &dir,
            ArchiveOptions::default(),
            ModelKind::Ridge,
            7,
            10e6, // retrain every 10 virtual ms
            db.kernel.telemetry.clone(),
        )
        .unwrap();
        let opts = RunOptions {
            terminals: 2,
            duration_ns: 40e6,
            ..Default::default()
        };
        let stats = run_with_lifecycle(&mut db, &mut w, &opts, &mut lc);
        assert!(stats.committed > 10, "committed {}", stats.committed);
        assert!(stats.retrains >= 2, "retrains {}", stats.retrains);
        assert_eq!(stats.archived_samples, stats.points.len() as u64);
        assert!(stats.archived_samples > 0);
        assert!(lc.swaps_accepted >= 1, "first retrain must install");
        assert_eq!(lc.registry.generation(), lc.swaps_accepted);
        // Archived samples round-trip with the post-hoc template tags.
        let back: Vec<_> = lc.archive.scan_all().collect();
        assert_eq!(back.len(), stats.points.len());
        assert!(
            back.iter().any(|s| s.template > 0),
            "foreground samples carry their query template"
        );
        // The live model predicts for OUs the run exercised.
        let live = lc.registry.live().unwrap();
        assert!(!live.models.ou_names().is_empty());
        assert_eq!(
            db.kernel.telemetry.gauge_value("model_generation", &[]),
            lc.registry.generation() as f64
        );
        // Lifecycle work surfaced in the profiler under the tscout root.
        let folded = db.kernel.profiler.folded();
        assert!(
            folded
                .iter()
                .any(|(stack, _)| stack.contains("models:retrain")),
            "missing retrain frame in {:?}",
            folded.iter().map(|(stack, _)| stack).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn template_assignment_picks_enclosing_span() {
        let mk = |tid, template, s, e| QuerySpan {
            tid,
            template,
            start_ns: s,
            end_ns: e,
        };
        let trace = vec![
            mk(1, 10, 0.0, 100.0),
            mk(1, 20, 200.0, 300.0),
            mk(2, 30, 0.0, 50.0),
        ];
        let pt = |tid, start| TrainingPoint {
            ou: 0,
            ou_name: "x".into(),
            subsystem: tscout::Subsystem::ExecutionEngine,
            tid,
            start_ns: start,
            elapsed_ns: 1,
            metrics: vec![],
            features: vec![],
            user_metrics: vec![],
        };
        let pts = vec![pt(1, 50), pt(1, 250), pt(1, 150), pt(2, 10), pt(3, 10)];
        let tagged = assign_templates(&pts, &trace);
        let ts: Vec<u32> = tagged.iter().map(|(_, t)| *t).collect();
        assert_eq!(ts, vec![10, 20, 0, 30, 0]);
    }

    #[test]
    fn build_datasets_appends_hw_feature() {
        let p = TrainingPoint {
            ou: 0,
            ou_name: "scan".into(),
            subsystem: tscout::Subsystem::ExecutionEngine,
            tid: 1,
            start_ns: 0,
            elapsed_ns: 500,
            metrics: vec![],
            features: vec![10.0, 20.0],
            user_metrics: vec![],
        };
        let data = build_datasets(&[(p, 3)], 2.1, 4);
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].points[0].features, vec![10.0, 20.0, 2.1, 4.0]);
        assert_eq!(data[0].points[0].template, 3);
        assert_eq!(data[0].points[0].target_ns, 500.0);
    }

    #[test]
    fn latency_percentiles() {
        let stats = RunStats {
            committed: 0,
            aborted: 0,
            duration_ns: 1e9,
            throughput: 0.0,
            latencies_ns: (1..=100).map(|i| i as f64 * 1e6).collect(),
            txn_ends_ns: vec![],
            trace: vec![],
            points: vec![],
            samples_processed: 0,
            samples_dropped: 0,
            archived_samples: 0,
            retrains: 0,
        };
        assert!((stats.latency_percentile_ms(99.0) - 99.0).abs() < 1.5);
        assert!((stats.latency_percentile_ms(50.0) - 50.0).abs() < 1.5);
    }
}
