//! The virtual-time workload driver.
//!
//! Plays the role of BenchBase in the paper's evaluation: N closed-loop
//! terminals issue transactions against the DBMS. Scheduling is
//! earliest-first over the terminals' virtual clocks, which yields one
//! coherent global timeline: group-commit batches form from real arrival
//! patterns, the Processor drains concurrently, and throughput/latency
//! come from the clocks — deterministic for a fixed seed.
//!
//! The driver also captures a *query span trace* — which statement
//! template each session executed, and when — used afterwards to tag
//! every collected training point with its query template (the paper's
//! per-template accuracy statistic).

use rand::rngs::StdRng;
use rand::SeedableRng;

use noisetap::engine::{Database, DbError, SessionId, StatementId};
use noisetap::{ExecOutcome, Value};
use tscout::{Processor, Sink, TrainingPoint};
use tscout_models::dataset::{LabeledPoint, OuData};

/// One traced client request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpan {
    pub tid: u32,
    pub template: u32,
    pub start_ns: f64,
    pub end_ns: f64,
}

/// Per-transaction context handed to workload transaction bodies.
pub struct TxnCtx<'a> {
    pub db: &'a mut Database,
    pub sid: SessionId,
    pub rng: &'a mut StdRng,
    trace: &'a mut Vec<QuerySpan>,
}

impl<'a> TxnCtx<'a> {
    /// Build a transaction context (the driver does this per terminal;
    /// exposed for tests and custom harnesses).
    pub fn new(
        db: &'a mut Database,
        sid: SessionId,
        rng: &'a mut StdRng,
        trace: &'a mut Vec<QuerySpan>,
    ) -> TxnCtx<'a> {
        TxnCtx {
            db,
            sid,
            rng,
            trace,
        }
    }

    /// Issue a traced client request.
    pub fn request(&mut self, stmt: StatementId, params: &[Value]) -> Result<ExecOutcome, DbError> {
        let task = self.db.session_task(self.sid);
        let start_ns = self.db.now(self.sid);
        let r = self.db.client_request(self.sid, stmt, params);
        self.trace.push(QuerySpan {
            tid: task.0,
            template: stmt.0 as u32 + 1,
            start_ns,
            end_ns: self.db.now(self.sid),
        });
        r
    }

    pub fn begin(&mut self) {
        self.db.begin(self.sid);
    }

    pub fn commit(&mut self) -> Result<(), DbError> {
        self.db.commit(self.sid)
    }

    pub fn rollback(&mut self) {
        let _ = self.db.rollback(self.sid);
    }
}

/// A benchmark workload.
pub trait Workload {
    fn name(&self) -> &'static str;
    /// Create schema, load data, prepare statements. Runs untraced on a
    /// bootstrap session.
    fn setup(&mut self, db: &mut Database);
    /// Execute one transaction; returns false when it aborted.
    fn txn(&mut self, ctx: &mut TxnCtx<'_>) -> bool;
}

/// Driver options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    pub terminals: usize,
    /// Virtual duration of the measured run, ns.
    pub duration_ns: f64,
    /// RNG seed (terminal behavior + workload parameters).
    pub seed: u64,
    /// Pump background tasks (WAL, Processor) every this many ns.
    pub pump_every_ns: f64,
    /// Run GC every this many ns (0 = never).
    pub gc_every_ns: f64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            terminals: 1,
            duration_ns: 1e9,
            seed: 0xBEEF,
            pump_every_ns: 2e6,
            gc_every_ns: 250e6,
        }
    }
}

/// Results of one run.
#[derive(Debug)]
pub struct RunStats {
    pub committed: u64,
    pub aborted: u64,
    pub duration_ns: f64,
    /// Committed transactions per virtual second.
    pub throughput: f64,
    /// Transaction latencies, ns (committed only).
    pub latencies_ns: Vec<f64>,
    /// Completion times of committed transactions, ns (timeline plots).
    pub txn_ends_ns: Vec<f64>,
    /// Query span trace for template assignment.
    pub trace: Vec<QuerySpan>,
    /// Decoded training points collected during the run.
    pub points: Vec<TrainingPoint>,
    /// Samples the Processor archived.
    pub samples_processed: u64,
    /// Samples lost to ring overwrites.
    pub samples_dropped: u64,
}

impl RunStats {
    /// Latency percentile in milliseconds (e.g. `p(99.0)` for p99).
    pub fn latency_percentile_ms(&self, pct: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let mut l = self.latencies_ns.clone();
        l.sort_by(f64::total_cmp);
        let idx = ((pct / 100.0) * (l.len() - 1) as f64).round() as usize;
        l[idx.min(l.len() - 1)] / 1e6
    }

    /// Throughput in thousands of transactions per second.
    pub fn ktps(&self) -> f64 {
        self.throughput / 1000.0
    }
}

/// Run a workload for a virtual duration.
pub fn run(db: &mut Database, workload: &mut dyn Workload, opts: &RunOptions) -> RunStats {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let terminals: Vec<SessionId> = (0..opts.terminals).map(|_| db.create_session()).collect();
    // Align all terminal clocks to the same start line.
    let start_ns = terminals
        .iter()
        .map(|s| db.now(*s))
        .fold(0.0f64, f64::max)
        .max(db.kernel.now(db.wal.task));
    for s in &terminals {
        let task = db.session_task(*s);
        db.kernel.advance_to(task, start_ns);
    }
    db.kernel.set_runnable(opts.terminals as u32 + 1); // +1 for background

    let mut processor = Processor::new(&mut db.kernel, Sink::Memory(Vec::new()));
    db.kernel.advance_to(processor.task, start_ns);

    let end_ns = start_ns + opts.duration_ns;
    let mut trace: Vec<QuerySpan> = Vec::new();
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut latencies = Vec::new();
    let mut txn_ends = Vec::new();
    let mut next_pump = start_ns + opts.pump_every_ns;
    let mut next_gc = if opts.gc_every_ns > 0.0 {
        start_ns + opts.gc_every_ns
    } else {
        f64::MAX
    };

    loop {
        // Earliest-first: advance the terminal with the smallest clock.
        let (&sid, now) = terminals
            .iter()
            .map(|s| (s, db.now(*s)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        if now >= end_ns {
            break;
        }
        // Background pumping keeps the WAL and Processor in lockstep with
        // the foreground timeline.
        if now >= next_pump {
            let pump_start = now;
            db.pump_wal(now);
            let (kernel, ts) = db.collection_parts();
            if let Some(ts) = ts {
                processor.poll(kernel, ts, now);
            }
            let pump_end = db.kernel.now(db.wal.task);
            db.kernel.telemetry.span(
                "pump",
                "driver",
                pump_start,
                (pump_end - pump_start).max(0.0),
            );
            // Scrape the metric registry into the time-series ring at the
            // pump cadence — one window per pump interval.
            db.kernel.telemetry.scrape_window(now);
            next_pump = now + opts.pump_every_ns;
        }
        if now >= next_gc {
            db.run_gc();
            next_gc = now + opts.gc_every_ns;
        }

        let t0 = db.now(sid);
        let ok = {
            let mut ctx = TxnCtx {
                db,
                sid,
                rng: &mut rng,
                trace: &mut trace,
            };
            workload.txn(&mut ctx)
        };
        let t1 = db.now(sid);
        let outcome = if ok { "committed" } else { "aborted" };
        db.kernel
            .telemetry
            .hist_record("workload_txn_ns", &[("outcome", outcome)], t1 - t0);
        db.kernel.telemetry.span("txn", "workload", t0, t1 - t0);
        if ok {
            committed += 1;
            latencies.push(t1 - t0);
            txn_ends.push(t1);
        } else {
            aborted += 1;
        }
    }

    // Final flush. `samples_processed` is measured at the run horizon —
    // the Processor may not keep up (that is the Fig. 6 ceiling) — and
    // only then is the remaining ring drained so accuracy experiments
    // keep every surviving sample.
    db.pump_wal(end_ns + 1e9);
    let (samples_processed, samples_dropped, points) = {
        let (kernel, ts) = db.collection_parts();
        match ts {
            Some(ts) => {
                processor.poll(kernel, ts, end_ns);
                let in_run = processor.processed;
                processor.drain_all(kernel, ts);
                (in_run, ts.ring_dropped(), processor.take_points())
            }
            None => (0, 0, Vec::new()),
        }
    };
    // Final window so the time-series tail reflects the fully drained run.
    db.kernel.telemetry.scrape_window(end_ns + 2e9);

    let duration_ns = opts.duration_ns;
    RunStats {
        committed,
        aborted,
        duration_ns,
        throughput: committed as f64 / (duration_ns / 1e9),
        latencies_ns: latencies,
        txn_ends_ns: txn_ends,
        trace,
        points,
        samples_processed,
        samples_dropped,
    }
}

/// Tag each training point with the query template whose span contains
/// it (same thread, start time within the span). Background subsystems
/// (WAL, GC) fall outside any span and get template 0.
pub fn assign_templates(
    points: &[TrainingPoint],
    trace: &[QuerySpan],
) -> Vec<(TrainingPoint, u32)> {
    // Per-tid spans sorted by start.
    let mut by_tid: std::collections::HashMap<u32, Vec<&QuerySpan>> =
        std::collections::HashMap::new();
    for s in trace {
        by_tid.entry(s.tid).or_default().push(s);
    }
    for spans in by_tid.values_mut() {
        spans.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns));
    }
    points
        .iter()
        .map(|p| {
            let template = by_tid
                .get(&p.tid)
                .and_then(|spans| {
                    let t = p.start_ns as f64;
                    let i = spans.partition_point(|s| s.start_ns <= t);
                    i.checked_sub(1).map(|i| spans[i]).filter(|s| t <= s.end_ns)
                })
                .map(|s| s.template)
                .unwrap_or(0);
            (p.clone(), template)
        })
        .collect()
}

/// Build per-OU labeled datasets from tagged points. Two context features
/// are appended to every vector, mirroring §2.2's internally-collected
/// temporal features: the CPU clock in GHz (the *only* hardware
/// descriptor, §6.4) and the number of concurrent workers.
pub fn build_datasets(
    tagged: &[(TrainingPoint, u32)],
    clock_ghz: f64,
    concurrency: usize,
) -> Vec<OuData> {
    let mut by_ou: std::collections::BTreeMap<String, OuData> = Default::default();
    for (p, template) in tagged {
        let d = by_ou
            .entry(p.ou_name.clone())
            .or_insert_with(|| OuData::new(&p.ou_name));
        let mut features = p.features.clone();
        features.push(clock_ghz);
        features.push(concurrency as f64);
        d.points.push(LabeledPoint {
            features,
            target_ns: p.elapsed_ns as f64,
            template: *template,
        });
    }
    by_ou.into_values().collect()
}

/// Convenience: run + tag + build datasets in one call.
pub fn collect_datasets(
    db: &mut Database,
    workload: &mut dyn Workload,
    opts: &RunOptions,
) -> (RunStats, Vec<OuData>) {
    let clock = db.kernel.hw.clock_ghz;
    let stats = run(db, workload, opts);
    let tagged = assign_templates(&stats.points, &stats.trace);
    let data = build_datasets(&tagged, clock, opts.terminals);
    (stats, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_assignment_picks_enclosing_span() {
        let mk = |tid, template, s, e| QuerySpan {
            tid,
            template,
            start_ns: s,
            end_ns: e,
        };
        let trace = vec![
            mk(1, 10, 0.0, 100.0),
            mk(1, 20, 200.0, 300.0),
            mk(2, 30, 0.0, 50.0),
        ];
        let pt = |tid, start| TrainingPoint {
            ou: 0,
            ou_name: "x".into(),
            subsystem: tscout::Subsystem::ExecutionEngine,
            tid,
            start_ns: start,
            elapsed_ns: 1,
            metrics: vec![],
            features: vec![],
            user_metrics: vec![],
        };
        let pts = vec![pt(1, 50), pt(1, 250), pt(1, 150), pt(2, 10), pt(3, 10)];
        let tagged = assign_templates(&pts, &trace);
        let ts: Vec<u32> = tagged.iter().map(|(_, t)| *t).collect();
        assert_eq!(ts, vec![10, 20, 0, 30, 0]);
    }

    #[test]
    fn build_datasets_appends_hw_feature() {
        let p = TrainingPoint {
            ou: 0,
            ou_name: "scan".into(),
            subsystem: tscout::Subsystem::ExecutionEngine,
            tid: 1,
            start_ns: 0,
            elapsed_ns: 500,
            metrics: vec![],
            features: vec![10.0, 20.0],
            user_metrics: vec![],
        };
        let data = build_datasets(&[(p, 3)], 2.1, 4);
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].points[0].features, vec![10.0, 20.0, 2.1, 4.0]);
        assert_eq!(data[0].points[0].template, 3);
        assert_eq!(data[0].points[0].target_ns, 500.0);
    }

    #[test]
    fn latency_percentiles() {
        let stats = RunStats {
            committed: 0,
            aborted: 0,
            duration_ns: 1e9,
            throughput: 0.0,
            latencies_ns: (1..=100).map(|i| i as f64 * 1e6).collect(),
            txn_ends_ns: vec![],
            trace: vec![],
            points: vec![],
            samples_processed: 0,
            samples_dropped: 0,
        };
        assert!((stats.latency_percentile_ms(99.0) - 99.0).abs() < 1.5);
        assert!((stats.latency_percentile_ms(50.0) - 50.0).abs() < 1.5);
    }
}
