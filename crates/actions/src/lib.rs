//! The autonomous action engine: the piece that closes the self-driving
//! loop the paper's collection pipeline exists to feed.
//!
//! Eight layers of this reproduction collect, archive, train, trace,
//! and alert — but none of them *act*. [`ActionEngine`] does: on every
//! pump tick it evaluates a fixed, ordered policy set over signals the
//! system already publishes (per-OU model predictions via the
//! generation-counted registry, drift/health state, the profiler's
//! tscout/dbms overhead ratio, archive pressure) and emits typed
//! actions through the [`DbmsActuator`] trait.
//!
//! **Policy evaluation order** (documented in DESIGN.md §2.14; fixed so
//! runs are reproducible and policies can assume their predecessors ran
//! first this tick):
//!
//! 1. `retrain_on_drift` — data health CRITICAL triggers a model
//!    retrain (and, on an accepted swap, a drift-reference rebaseline).
//! 2. `overhead_budget` — the tscout/dbms ratio above budget halves the
//!    hottest subsystem's sampling rate; back under the restore
//!    watermark, rates climb back toward their baselines.
//! 3. `loss_backoff` — per-subsystem loss feedback (the Processor's
//!    [`recommended_rates`] hook) lowers exactly the losing subsystem.
//! 4. `archive_pressure` — too many on-disk segments schedules a
//!    compaction; an overhead breach *deprioritizes* (holds) it.
//! 5. `pipeline_mode` — mean predicted execution-OU cost toggles fused
//!    vs per-operator collection pipelines.
//!
//! **Every action carries a prediction**: the metric it expects to
//! move, the value now, and the value expected after a configurable
//! observation window. The follow-up re-reads the metric, computes the
//! prediction error, flags regressions (metric moved the wrong way
//! beyond tolerance), and the outcome becomes an *action-efficacy*
//! sample ([`EfficacyOutcome::to_sample`]) in the training archive plus
//! a closed `ts_actions` row.
//!
//! **Guardrails are first-class**, evaluated in this order per
//! candidate: one in-flight action per (kind, target); a per-
//! (kind, target) rate limit; direction-reversal hysteresis so the
//! engine never flip-flops against the health engine's own hysteresis.
//! A global kill switch ([`ActionConfig::enabled`]) and a dry-run mode
//! that plans and follows up but never actuates sit above all policies.
//! Planner cost is charged to the virtual clock by the driver
//! (`action_plan_ns` / `action_followup_ns`, on the Processor's task)
//! so collected samples stay bit-identical with the engine on or off.
//!
//! [`recommended_rates`]: PlannerInputs::rates
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::collections::BTreeMap;

use tscout_archive::Sample;
use tscout_telemetry::{ActionRecord, ActionState, Telemetry};

/// Number of policies one planning pass evaluates (drives the driver's
/// `action_plan_ns` charge).
pub const POLICY_COUNT: usize = 5;

/// Reserved OU id for action-efficacy samples in the archive.
pub const EFFICACY_OU: u16 = 0xFFFE;
/// OU family name efficacy samples are archived under.
pub const EFFICACY_OU_NAME: &str = "action_efficacy";

/// The action kinds the engine can plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    AdjustSamplingRate,
    TriggerRetrain,
    ScheduleCompaction,
    DeprioritizeCompaction,
    TogglePipeline,
}

/// All kinds, for metric pre-declaration.
pub const ALL_KINDS: [ActionKind; 5] = [
    ActionKind::AdjustSamplingRate,
    ActionKind::TriggerRetrain,
    ActionKind::ScheduleCompaction,
    ActionKind::DeprioritizeCompaction,
    ActionKind::TogglePipeline,
];

impl ActionKind {
    pub fn name(self) -> &'static str {
        match self {
            ActionKind::AdjustSamplingRate => "adjust_sampling_rate",
            ActionKind::TriggerRetrain => "trigger_retrain",
            ActionKind::ScheduleCompaction => "schedule_compaction",
            ActionKind::DeprioritizeCompaction => "deprioritize_compaction",
            ActionKind::TogglePipeline => "toggle_pipeline",
        }
    }

    /// Stable numeric code, the first efficacy-sample feature.
    pub fn code(self) -> u16 {
        match self {
            ActionKind::AdjustSamplingRate => 1,
            ActionKind::TriggerRetrain => 2,
            ActionKind::ScheduleCompaction => 3,
            ActionKind::DeprioritizeCompaction => 4,
            ActionKind::TogglePipeline => 5,
        }
    }
}

/// A typed command the engine hands to the actuator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionCommand {
    SetSamplingRate { subsystem: String, rate: u8 },
    TriggerRetrain,
    ScheduleCompaction,
    HoldCompaction { hold: bool },
    SetPipelineMode { fused: bool },
}

/// What the engine can do to the DBMS. The driver implements this over
/// the live collector / lifecycle / engine-mode handles; tests plug in
/// recording fakes.
pub trait DbmsActuator {
    fn set_sampling_rate(&mut self, subsystem: &str, rate: u8);
    fn trigger_retrain(&mut self);
    fn schedule_compaction(&mut self);
    fn hold_compaction(&mut self, hold: bool);
    fn set_pipeline_mode(&mut self, fused: bool);
}

/// The metric a prediction names, re-read at follow-up time.
#[derive(Debug, Clone)]
pub enum Watch {
    /// A gauge's current value.
    Gauge {
        name: String,
        labels: Vec<(String, String)>,
    },
    /// Growth of a labeled counter family since plan time: the sum of
    /// all series whose `label_key` equals `label_value`, minus `base`.
    CounterSum {
        name: String,
        label_key: String,
        label_value: String,
        base: u64,
    },
}

impl Watch {
    /// Current value of the watched metric.
    pub fn read(&self, telemetry: &Telemetry) -> f64 {
        match self {
            Watch::Gauge { name, labels } => {
                let l: Vec<(&str, &str)> = labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                telemetry.gauge_value(name, &l)
            }
            Watch::CounterSum {
                name,
                label_key,
                label_value,
                base,
            } => {
                let total: u64 = telemetry.with_registry(|r| {
                    r.counters_named(name)
                        .iter()
                        .filter(|(k, _)| {
                            k.labels
                                .iter()
                                .any(|(lk, lv)| lk == label_key && lv == label_value)
                        })
                        .map(|(_, v)| v)
                        .sum()
                });
                total.saturating_sub(*base) as f64
            }
        }
    }

    /// Rendered metric name for the action record.
    fn metric_name(&self) -> String {
        match self {
            Watch::Gauge { name, labels } => {
                if labels.is_empty() {
                    name.clone()
                } else {
                    let inner: Vec<String> =
                        labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
                    format!("{name}{{{}}}", inner.join(","))
                }
            }
            Watch::CounterSum {
                name,
                label_key,
                label_value,
                ..
            } => format!("delta({name}{{{label_key}=\"{label_value}\"}})"),
        }
    }
}

/// Engine configuration: the kill switch, dry-run, the observation
/// window, guardrail knobs, and per-policy thresholds.
#[derive(Debug, Clone)]
pub struct ActionConfig {
    /// Global kill switch: `false` makes [`ActionEngine::tick`] a no-op.
    pub enabled: bool,
    /// Plan and follow up, but never call the actuator.
    pub dry_run: bool,
    /// Virtual ns between planning an action and observing its outcome.
    pub observation_window_ns: f64,
    /// Minimum virtual ns between two actions of the same (kind, target).
    pub min_interval_ns: f64,
    /// Minimum virtual ns before a direction-reversing action on the
    /// same target (anti-flip-flop, mirrors the health hysteresis).
    pub hysteresis_ns: f64,
    /// tscout/dbms ratio above which sampling rates are lowered.
    pub overhead_budget: f64,
    /// Ratio below which lowered rates are restored toward baseline.
    pub overhead_restore: f64,
    /// Floor for any rate the engine sets.
    pub min_rate: u8,
    /// `archive_segments` above which a compaction is scheduled.
    pub archive_segments_hi: f64,
    /// Mean predicted execution-OU ns below which pipelines fuse.
    pub fuse_below_ns: f64,
    /// Mean predicted execution-OU ns above which pipelines unfuse.
    pub unfuse_above_ns: f64,
    /// Fractional tolerance before an observed move against the
    /// prediction's direction counts as a regression.
    pub regression_tolerance: f64,
}

impl Default for ActionConfig {
    fn default() -> Self {
        ActionConfig {
            enabled: true,
            dry_run: false,
            observation_window_ns: 40e6,
            min_interval_ns: 80e6,
            hysteresis_ns: 160e6,
            overhead_budget: 0.05,
            overhead_restore: 0.03,
            min_rate: 1,
            archive_segments_hi: 48.0,
            fuse_below_ns: 2_000.0,
            unfuse_above_ns: 20_000.0,
            regression_tolerance: 0.10,
        }
    }
}

/// Per-subsystem sampling state the driver feeds each tick.
#[derive(Debug, Clone)]
pub struct SubsystemRate {
    pub subsystem: String,
    /// Current sampling rate (0-255).
    pub current: u8,
    /// The Processor's per-subsystem loss-feedback recommendation
    /// (equals `current` when the subsystem saw no new losses).
    pub recommended: u8,
    /// New losses in that subsystem since the last tick.
    pub loss_delta: u64,
}

/// Everything one planning pass reads that does not live in telemetry
/// gauges (health / drift / archive state is read from the shared
/// registry directly).
#[derive(Debug, Clone, Default)]
pub struct PlannerInputs {
    pub now_ns: f64,
    /// Profiler-attributed tscout/dbms ratio (None until both sides
    /// have profile samples).
    pub overhead_ratio: Option<f64>,
    pub rates: Vec<SubsystemRate>,
    /// Mean live-model predicted cost of execution-engine OUs over the
    /// last retrain batch.
    pub predicted_exec_ou_ns: Option<f64>,
    /// Whether the collector currently runs fused pipelines.
    pub pipeline_fused: bool,
    /// Live model generation at plan time.
    pub model_generation: u64,
}

/// A closed follow-up: the predicted-vs-observed outcome of one action.
#[derive(Debug, Clone)]
pub struct EfficacyOutcome {
    pub id: u64,
    pub kind: ActionKind,
    pub target: String,
    pub planned_at_ns: f64,
    pub observed_at_ns: f64,
    pub value_before: f64,
    pub predicted: f64,
    pub observed: f64,
    /// `|observed - predicted| / max(|predicted|, 1) * 100`.
    pub err_pct: f64,
    /// The metric moved the wrong way beyond tolerance.
    pub regressed: bool,
    pub dry_run: bool,
    pub model_generation: u64,
}

impl EfficacyOutcome {
    /// Encode as an archive sample under the reserved
    /// [`EFFICACY_OU_NAME`] family, so the planner's own effect model
    /// can be retrained from its history. Fixed-point encodings (the
    /// archive's target and user metrics are integral ns):
    /// `elapsed_ns` carries the observed metric value in micro-units,
    /// `user_metrics[0]` the error in milli-percent.
    pub fn to_sample(&self) -> Sample {
        Sample {
            ou: EFFICACY_OU,
            ou_name: EFFICACY_OU_NAME.to_string(),
            subsystem: u8::MAX,
            tid: 0,
            template: 0,
            start_ns: self.planned_at_ns.max(0.0) as u64,
            elapsed_ns: (self.observed.max(0.0) * 1e6).round() as u64,
            metrics: vec![u64::from(self.regressed), u64::from(self.dry_run)],
            features: vec![
                f64::from(self.kind.code()),
                self.value_before,
                self.predicted,
                self.model_generation as f64,
            ],
            user_metrics: vec![(self.err_pct.max(0.0) * 1_000.0).round() as u64],
        }
    }
}

/// What one [`ActionEngine::tick`] did.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Action-log ids planned this tick (actuated unless dry-run).
    pub planned: Vec<u64>,
    /// Commands actually handed to the actuator this tick.
    pub actuated: Vec<ActionCommand>,
    /// Candidates a guardrail suppressed this tick.
    pub suppressed: usize,
    /// Follow-ups that closed this tick.
    pub observed: Vec<EfficacyOutcome>,
}

/// Follow-up state for one planned action (the log holds the record of
/// truth; this is only what the engine needs to close it).
#[derive(Debug, Clone)]
struct Pending {
    id: u64,
    kind: ActionKind,
    target: String,
    watch: Watch,
    value_before: f64,
    predicted: f64,
    /// Observed above this bound ⇒ regression.
    regress_above: Option<f64>,
    /// Observed below this bound ⇒ regression.
    regress_below: Option<f64>,
    planned_at_ns: f64,
    observe_at_ns: f64,
    dry_run: bool,
    model_generation: u64,
}

/// A candidate action a policy proposed this tick, before guardrails.
#[derive(Debug, Clone)]
struct Candidate {
    kind: ActionKind,
    policy: &'static str,
    target: String,
    detail: String,
    command: ActionCommand,
    watch: Watch,
    value_before: f64,
    predicted: f64,
    regress_above: Option<f64>,
    regress_below: Option<f64>,
    /// +1 raise/fuse, -1 lower/unfuse, 0 directionless — the
    /// hysteresis guardrail only applies to directional actions.
    direction: i8,
}

/// The planner/executor. One per driver run; ticked at pump cadence.
#[derive(Debug)]
pub struct ActionEngine {
    pub cfg: ActionConfig,
    telemetry: Telemetry,
    pending: Vec<Pending>,
    /// (kind name, target) → last planned_at_ns, for the rate limit.
    last_fire: BTreeMap<(String, String), f64>,
    /// target → (direction, at_ns) of the last directional action.
    last_move: BTreeMap<String, (i8, f64)>,
    /// First-seen rate per subsystem: the restore target.
    baseline_rates: BTreeMap<String, u8>,
    compaction_held: bool,
    /// Planning passes run (kill switch off excluded).
    pub ticks: u64,
}

impl ActionEngine {
    /// Build an engine over the world's shared telemetry. Pre-declares
    /// every `tscout_action_*` metric at zero so a run that attaches an
    /// engine registers the full set (the `metrics_doc --check`
    /// contract) even before any action fires.
    pub fn new(cfg: ActionConfig, telemetry: Telemetry) -> Self {
        for kind in ALL_KINDS {
            for name in [
                "tscout_action_planned_total",
                "tscout_action_actuated_total",
                "tscout_action_observed_total",
                "tscout_action_regressed_total",
            ] {
                telemetry.counter_add(name, &[("kind", kind.name())], 0);
            }
            telemetry.gauge_set(
                "tscout_action_efficacy_err_pct",
                &[("kind", kind.name())],
                0.0,
            );
        }
        for reason in ["rate_limit", "in_flight", "hysteresis", "dry_run"] {
            telemetry.counter_add("tscout_action_suppressed_total", &[("reason", reason)], 0);
        }
        telemetry.counter_add("tscout_action_log_dropped_total", &[], 0);
        telemetry.gauge_set("tscout_action_pending", &[], 0.0);
        ActionEngine {
            cfg,
            telemetry,
            pending: Vec::new(),
            last_fire: BTreeMap::new(),
            last_move: BTreeMap::new(),
            baseline_rates: BTreeMap::new(),
            compaction_held: false,
            ticks: 0,
        }
    }

    /// Follow-ups whose observation window has closed (drives the
    /// driver's `action_followup_ns` charge before the tick runs).
    pub fn due_followups(&self, now_ns: f64) -> usize {
        self.pending
            .iter()
            .filter(|p| now_ns >= p.observe_at_ns)
            .count()
    }

    /// Follow-ups still waiting on their window.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether the engine currently holds (deprioritizes) compaction.
    pub fn compaction_held(&self) -> bool {
        self.compaction_held
    }

    /// One planning pass: close due follow-ups, evaluate the policies
    /// in order, run guardrails, log + actuate survivors.
    pub fn tick(&mut self, inputs: &PlannerInputs, actuator: &mut dyn DbmsActuator) -> TickReport {
        let mut report = TickReport::default();
        if !self.cfg.enabled {
            return report;
        }
        self.ticks += 1;
        let now = inputs.now_ns;

        // Restore targets are the rates first seen for each subsystem.
        for r in &inputs.rates {
            self.baseline_rates
                .entry(r.subsystem.clone())
                .or_insert(r.current);
        }

        report.observed = self.close_due_followups(now);

        let candidates = self.plan(inputs);
        for c in candidates {
            self.admit(c, now, inputs.model_generation, actuator, &mut report);
        }
        self.telemetry
            .gauge_set("tscout_action_pending", &[], self.pending.len() as f64);
        report
    }

    /// Re-read every due watch, compute the outcome, close the record.
    fn close_due_followups(&mut self, now: f64) -> Vec<EfficacyOutcome> {
        let mut outcomes = Vec::new();
        let mut still_pending = Vec::with_capacity(self.pending.len());
        for p in self.pending.drain(..) {
            if now < p.observe_at_ns {
                still_pending.push(p);
                continue;
            }
            let observed = p.watch.read(&self.telemetry);
            let err_pct = (observed - p.predicted).abs() / p.predicted.abs().max(1.0) * 100.0;
            let regressed = p.regress_above.is_some_and(|b| observed > b)
                || p.regress_below.is_some_and(|b| observed < b);
            self.telemetry
                .action_observe(p.id, observed, now, err_pct, regressed);
            let kind = p.kind.name();
            self.telemetry
                .counter_inc("tscout_action_observed_total", &[("kind", kind)]);
            if regressed {
                self.telemetry
                    .counter_inc("tscout_action_regressed_total", &[("kind", kind)]);
            }
            self.telemetry
                .gauge_set("tscout_action_efficacy_err_pct", &[("kind", kind)], err_pct);
            outcomes.push(EfficacyOutcome {
                id: p.id,
                kind: p.kind,
                target: p.target,
                planned_at_ns: p.planned_at_ns,
                observed_at_ns: now,
                value_before: p.value_before,
                predicted: p.predicted,
                observed,
                err_pct,
                regressed,
                dry_run: p.dry_run,
                model_generation: p.model_generation,
            });
        }
        self.pending = still_pending;
        outcomes
    }

    /// Evaluate the five policies in their fixed order.
    fn plan(&self, inputs: &PlannerInputs) -> Vec<Candidate> {
        let mut out = Vec::new();
        let tol = self.cfg.regression_tolerance;

        // 1. retrain_on_drift: data health CRITICAL ⇒ retrain. The
        //    prediction is full recovery (health back to OK) by the end
        //    of the window; still-CRITICAL at follow-up is a regression.
        let data_health = self
            .telemetry
            .gauge_value("ts_health_state", &[("subsystem", "data")]);
        if data_health >= 2.0 {
            out.push(Candidate {
                kind: ActionKind::TriggerRetrain,
                policy: "retrain_on_drift",
                target: "data".to_string(),
                detail: "data health CRITICAL: retrain + rebaseline drift references".to_string(),
                command: ActionCommand::TriggerRetrain,
                watch: Watch::Gauge {
                    name: "ts_health_state".to_string(),
                    labels: vec![("subsystem".to_string(), "data".to_string())],
                },
                value_before: data_health,
                predicted: 0.0,
                regress_above: Some(1.5),
                regress_below: None,
                direction: 0,
            });
        }

        // 2. overhead_budget: lower the hottest rate over budget,
        //    restore toward baseline under the restore watermark.
        let mut rate_targeted: Option<String> = None;
        if let Some(ratio) = inputs.overhead_ratio {
            if ratio > self.cfg.overhead_budget {
                let hottest = inputs
                    .rates
                    .iter()
                    .filter(|r| r.current > self.cfg.min_rate)
                    .max_by_key(|r| r.current);
                if let Some(r) = hottest {
                    let new_rate = (r.current / 2).max(self.cfg.min_rate);
                    rate_targeted = Some(r.subsystem.clone());
                    out.push(Candidate {
                        kind: ActionKind::AdjustSamplingRate,
                        policy: "overhead_budget",
                        target: r.subsystem.clone(),
                        detail: format!(
                            "ratio {ratio:.4} > budget {:.4}: rate {} -> {new_rate}",
                            self.cfg.overhead_budget, r.current
                        ),
                        command: ActionCommand::SetSamplingRate {
                            subsystem: r.subsystem.clone(),
                            rate: new_rate,
                        },
                        watch: overhead_watch(),
                        value_before: ratio,
                        predicted: ratio * 0.5,
                        regress_above: Some(ratio * (1.0 + tol)),
                        regress_below: None,
                        direction: -1,
                    });
                }
            } else if ratio < self.cfg.overhead_restore {
                let lowered = inputs.rates.iter().find(|r| {
                    self.baseline_rates
                        .get(&r.subsystem)
                        .is_some_and(|b| r.current < *b)
                });
                if let Some(r) = lowered {
                    let base = self.baseline_rates[&r.subsystem];
                    let new_rate = r.current.saturating_mul(2).min(base).max(self.cfg.min_rate);
                    rate_targeted = Some(r.subsystem.clone());
                    out.push(Candidate {
                        kind: ActionKind::AdjustSamplingRate,
                        policy: "overhead_budget",
                        target: r.subsystem.clone(),
                        detail: format!(
                            "ratio {ratio:.4} < restore {:.4}: rate {} -> {new_rate} (baseline {base})",
                            self.cfg.overhead_restore, r.current
                        ),
                        command: ActionCommand::SetSamplingRate {
                            subsystem: r.subsystem.clone(),
                            rate: new_rate,
                        },
                        watch: overhead_watch(),
                        value_before: ratio,
                        // Rates climb back: the ratio may rise but must
                        // stay within budget.
                        predicted: (ratio * 2.0).min(self.cfg.overhead_budget),
                        regress_above: Some(self.cfg.overhead_budget * (1.0 + tol)),
                        regress_below: None,
                        direction: 1,
                    });
                }
            }
        }

        // 3. loss_backoff: actuate the Processor's per-subsystem
        //    loss-feedback recommendation. Prediction: the triggering
        //    loss window does not repeat.
        for r in &inputs.rates {
            if r.recommended >= r.current || rate_targeted.as_deref() == Some(&r.subsystem) {
                continue;
            }
            let lost_base: u64 = self.telemetry.with_registry(|reg| {
                reg.counters_named("tscout_samples_lost_total")
                    .iter()
                    .filter(|(k, _)| {
                        k.labels
                            .iter()
                            .any(|(lk, lv)| lk == "subsystem" && lv == &r.subsystem)
                    })
                    .map(|(_, v)| v)
                    .sum()
            });
            out.push(Candidate {
                kind: ActionKind::AdjustSamplingRate,
                policy: "loss_backoff",
                target: r.subsystem.clone(),
                detail: format!(
                    "{} new losses: rate {} -> {}",
                    r.loss_delta, r.current, r.recommended
                ),
                command: ActionCommand::SetSamplingRate {
                    subsystem: r.subsystem.clone(),
                    rate: r.recommended.max(self.cfg.min_rate),
                },
                watch: Watch::CounterSum {
                    name: "tscout_samples_lost_total".to_string(),
                    label_key: "subsystem".to_string(),
                    label_value: r.subsystem.clone(),
                    base: lost_base,
                },
                value_before: r.loss_delta as f64,
                predicted: 0.0,
                regress_above: Some(r.loss_delta as f64),
                regress_below: None,
                direction: -1,
            });
        }

        // 4. archive_pressure: segment pileup schedules a compaction;
        //    an overhead breach holds (deprioritizes) it instead, and
        //    recovery below the restore watermark releases the hold.
        let segments = self.telemetry.gauge_value("archive_segments", &[]);
        if !self.compaction_held && segments > self.cfg.archive_segments_hi {
            out.push(Candidate {
                kind: ActionKind::ScheduleCompaction,
                policy: "archive_pressure",
                target: "archive".to_string(),
                detail: format!(
                    "{segments} segments > {}: compact sealed head run",
                    self.cfg.archive_segments_hi
                ),
                command: ActionCommand::ScheduleCompaction,
                watch: Watch::Gauge {
                    name: "archive_segments".to_string(),
                    labels: Vec::new(),
                },
                value_before: segments,
                predicted: segments * 0.5,
                regress_above: Some(segments * (1.0 + tol)),
                regress_below: None,
                direction: 0,
            });
        }
        if let Some(ratio) = inputs.overhead_ratio {
            let hold = if !self.compaction_held && ratio > self.cfg.overhead_budget {
                Some(true)
            } else if self.compaction_held && ratio < self.cfg.overhead_restore {
                Some(false)
            } else {
                None
            };
            if let Some(hold) = hold {
                out.push(Candidate {
                    kind: ActionKind::DeprioritizeCompaction,
                    policy: "archive_pressure",
                    target: "archive".to_string(),
                    detail: if hold {
                        format!("ratio {ratio:.4} over budget: hold compaction")
                    } else {
                        format!("ratio {ratio:.4} recovered: release compaction hold")
                    },
                    command: ActionCommand::HoldCompaction { hold },
                    watch: overhead_watch(),
                    value_before: ratio,
                    predicted: ratio,
                    regress_above: Some(ratio.max(self.cfg.overhead_budget) * (1.0 + tol)),
                    regress_below: None,
                    direction: 0,
                });
            }
        }

        // 5. pipeline_mode: cheap execution OUs fuse (marker overhead
        //    dominates), expensive ones unfuse (granularity is worth
        //    the markers). Needs both a live-model prediction and an
        //    overhead ratio to predict against.
        if let (Some(cost), Some(ratio)) = (inputs.predicted_exec_ou_ns, inputs.overhead_ratio) {
            if !inputs.pipeline_fused && cost < self.cfg.fuse_below_ns {
                out.push(Candidate {
                    kind: ActionKind::TogglePipeline,
                    policy: "pipeline_mode",
                    target: "pipeline".to_string(),
                    detail: format!(
                        "mean predicted exec OU {cost:.0}ns < {:.0}: fuse pipelines",
                        self.cfg.fuse_below_ns
                    ),
                    command: ActionCommand::SetPipelineMode { fused: true },
                    watch: overhead_watch(),
                    value_before: ratio,
                    predicted: ratio * 0.8,
                    regress_above: Some(ratio * (1.0 + tol)),
                    regress_below: None,
                    direction: 1,
                });
            } else if inputs.pipeline_fused && cost > self.cfg.unfuse_above_ns {
                out.push(Candidate {
                    kind: ActionKind::TogglePipeline,
                    policy: "pipeline_mode",
                    target: "pipeline".to_string(),
                    detail: format!(
                        "mean predicted exec OU {cost:.0}ns > {:.0}: per-operator pipelines",
                        self.cfg.unfuse_above_ns
                    ),
                    command: ActionCommand::SetPipelineMode { fused: false },
                    watch: overhead_watch(),
                    value_before: ratio,
                    predicted: self.cfg.overhead_budget.min(ratio * 1.5),
                    regress_above: Some(self.cfg.overhead_budget * (1.0 + tol)),
                    regress_below: None,
                    direction: -1,
                });
            }
        }

        out
    }

    /// Guardrails, log, actuate: the per-candidate admission pipeline.
    fn admit(
        &mut self,
        c: Candidate,
        now: f64,
        model_generation: u64,
        actuator: &mut dyn DbmsActuator,
        report: &mut TickReport,
    ) {
        let suppress = |telemetry: &Telemetry, reason: &str, report: &mut TickReport| {
            telemetry.counter_inc("tscout_action_suppressed_total", &[("reason", reason)]);
            report.suppressed += 1;
        };
        // One action in flight per (kind, target).
        if self
            .pending
            .iter()
            .any(|p| p.kind == c.kind && p.target == c.target)
        {
            suppress(&self.telemetry, "in_flight", report);
            return;
        }
        // Per-(kind, target) rate limit.
        let key = (c.kind.name().to_string(), c.target.clone());
        if let Some(&t0) = self.last_fire.get(&key) {
            if now - t0 < self.cfg.min_interval_ns {
                suppress(&self.telemetry, "rate_limit", report);
                return;
            }
        }
        // Direction-reversal hysteresis.
        if c.direction != 0 {
            if let Some(&(dir, at)) = self.last_move.get(&c.target) {
                if dir != 0 && dir != c.direction && now - at < self.cfg.hysteresis_ns {
                    suppress(&self.telemetry, "hysteresis", report);
                    return;
                }
            }
        }

        let dropped_before = self.telemetry.with_registry(|r| r.actions().dropped());
        let id = self.telemetry.action_append(ActionRecord {
            id: 0,
            kind: c.kind.name().to_string(),
            policy: c.policy.to_string(),
            target: c.target.clone(),
            detail: c.detail,
            state: ActionState::Pending,
            dry_run: self.cfg.dry_run,
            planned_at_ns: now,
            observe_at_ns: now + self.cfg.observation_window_ns,
            metric: c.watch.metric_name(),
            value_before: c.value_before,
            predicted: c.predicted,
            observed: None,
            observed_at_ns: None,
            err_pct: None,
            regressed: false,
            model_generation,
        });
        let dropped_now = self.telemetry.with_registry(|r| r.actions().dropped());
        if dropped_now > dropped_before {
            self.telemetry.counter_add(
                "tscout_action_log_dropped_total",
                &[],
                dropped_now - dropped_before,
            );
        }
        self.telemetry
            .counter_inc("tscout_action_planned_total", &[("kind", c.kind.name())]);

        if self.cfg.dry_run {
            suppress(&self.telemetry, "dry_run", report);
        } else {
            match &c.command {
                ActionCommand::SetSamplingRate { subsystem, rate } => {
                    actuator.set_sampling_rate(subsystem, *rate);
                }
                ActionCommand::TriggerRetrain => actuator.trigger_retrain(),
                ActionCommand::ScheduleCompaction => actuator.schedule_compaction(),
                ActionCommand::HoldCompaction { hold } => {
                    actuator.hold_compaction(*hold);
                    self.compaction_held = *hold;
                }
                ActionCommand::SetPipelineMode { fused } => actuator.set_pipeline_mode(*fused),
            }
            self.telemetry
                .counter_inc("tscout_action_actuated_total", &[("kind", c.kind.name())]);
            report.actuated.push(c.command.clone());
        }
        self.last_fire.insert(key, now);
        if c.direction != 0 {
            self.last_move.insert(c.target.clone(), (c.direction, now));
        }
        self.pending.push(Pending {
            id,
            kind: c.kind,
            target: c.target,
            watch: c.watch,
            value_before: c.value_before,
            predicted: c.predicted,
            regress_above: c.regress_above,
            regress_below: c.regress_below,
            planned_at_ns: now,
            observe_at_ns: now + self.cfg.observation_window_ns,
            dry_run: self.cfg.dry_run,
            model_generation,
        });
        report.planned.push(id);
    }
}

/// The watch every overhead-driven prediction names.
fn overhead_watch() -> Watch {
    Watch::Gauge {
        name: "tscout_overhead_ratio".to_string(),
        labels: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every actuator call; actuates nothing real.
    #[derive(Debug, Default)]
    struct Recorder {
        calls: Vec<ActionCommand>,
    }

    impl DbmsActuator for Recorder {
        fn set_sampling_rate(&mut self, subsystem: &str, rate: u8) {
            self.calls.push(ActionCommand::SetSamplingRate {
                subsystem: subsystem.to_string(),
                rate,
            });
        }
        fn trigger_retrain(&mut self) {
            self.calls.push(ActionCommand::TriggerRetrain);
        }
        fn schedule_compaction(&mut self) {
            self.calls.push(ActionCommand::ScheduleCompaction);
        }
        fn hold_compaction(&mut self, hold: bool) {
            self.calls.push(ActionCommand::HoldCompaction { hold });
        }
        fn set_pipeline_mode(&mut self, fused: bool) {
            self.calls.push(ActionCommand::SetPipelineMode { fused });
        }
    }

    fn rates(current: u8, recommended: u8, loss: u64) -> Vec<SubsystemRate> {
        vec![SubsystemRate {
            subsystem: "execution_engine".to_string(),
            current,
            recommended,
            loss_delta: loss,
        }]
    }

    #[test]
    fn kill_switch_disables_everything() {
        let t = Telemetry::new();
        t.gauge_set("ts_health_state", &[("subsystem", "data")], 2.0);
        let mut e = ActionEngine::new(
            ActionConfig {
                enabled: false,
                ..Default::default()
            },
            t.clone(),
        );
        let mut a = Recorder::default();
        let r = e.tick(
            &PlannerInputs {
                now_ns: 1e6,
                ..Default::default()
            },
            &mut a,
        );
        assert!(r.planned.is_empty() && r.observed.is_empty());
        assert!(a.calls.is_empty());
        assert_eq!(e.ticks, 0);
        assert!(t.actions_snapshot().is_empty());
    }

    #[test]
    fn drift_critical_plans_retrain_and_rate_limit_holds() {
        let t = Telemetry::new();
        t.gauge_set("ts_health_state", &[("subsystem", "data")], 2.0);
        let mut e = ActionEngine::new(ActionConfig::default(), t.clone());
        let mut a = Recorder::default();
        let r = e.tick(
            &PlannerInputs {
                now_ns: 1e6,
                ..Default::default()
            },
            &mut a,
        );
        assert_eq!(r.planned.len(), 1);
        assert_eq!(a.calls, vec![ActionCommand::TriggerRetrain]);
        let recs = t.actions_snapshot();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].kind, "trigger_retrain");
        assert_eq!(recs[0].policy, "retrain_on_drift");
        assert_eq!(recs[0].value_before, 2.0);
        // Next tick: still CRITICAL, but one is in flight.
        let r = e.tick(
            &PlannerInputs {
                now_ns: 3e6,
                ..Default::default()
            },
            &mut a,
        );
        assert!(r.planned.is_empty());
        assert_eq!(r.suppressed, 1);
        assert_eq!(
            t.counter_value("tscout_action_suppressed_total", &[("reason", "in_flight")]),
            1
        );
        // Past the window the follow-up closes; the rate limit then
        // suppresses an immediate refire.
        t.gauge_set("ts_health_state", &[("subsystem", "data")], 2.0);
        let r = e.tick(
            &PlannerInputs {
                now_ns: 1e6 + e.cfg.observation_window_ns + 1.0,
                ..Default::default()
            },
            &mut a,
        );
        assert_eq!(r.observed.len(), 1);
        assert!(r.observed[0].regressed, "still CRITICAL at follow-up");
        assert_eq!(
            t.counter_value(
                "tscout_action_suppressed_total",
                &[("reason", "rate_limit")]
            ),
            1
        );
    }

    #[test]
    fn follow_up_success_when_health_recovers() {
        let t = Telemetry::new();
        t.gauge_set("ts_health_state", &[("subsystem", "data")], 2.0);
        let mut e = ActionEngine::new(ActionConfig::default(), t.clone());
        let mut a = Recorder::default();
        e.tick(
            &PlannerInputs {
                now_ns: 1e6,
                ..Default::default()
            },
            &mut a,
        );
        t.gauge_set("ts_health_state", &[("subsystem", "data")], 0.0);
        let r = e.tick(
            &PlannerInputs {
                now_ns: 1e6 + e.cfg.observation_window_ns + 1.0,
                ..Default::default()
            },
            &mut a,
        );
        assert_eq!(r.observed.len(), 1);
        let o = &r.observed[0];
        assert!(!o.regressed);
        assert_eq!(o.observed, 0.0);
        assert_eq!(o.err_pct, 0.0);
        assert_eq!(
            t.counter_value(
                "tscout_action_observed_total",
                &[("kind", "trigger_retrain")]
            ),
            1
        );
        assert_eq!(
            t.counter_value(
                "tscout_action_regressed_total",
                &[("kind", "trigger_retrain")]
            ),
            0
        );
        // The log record is closed.
        let rec = &t.actions_snapshot()[0];
        assert_eq!(rec.state, ActionState::Observed);
        assert_eq!(rec.observed, Some(0.0));
        // Efficacy sample encoding.
        let s = o.to_sample();
        assert_eq!(s.ou, EFFICACY_OU);
        assert_eq!(s.ou_name, EFFICACY_OU_NAME);
        assert_eq!(s.features[0], f64::from(ActionKind::TriggerRetrain.code()));
        assert_eq!(s.metrics, vec![0, 0]);
    }

    #[test]
    fn overhead_breach_lowers_hottest_then_restores_with_hysteresis() {
        let t = Telemetry::new();
        let mut e = ActionEngine::new(
            ActionConfig {
                observation_window_ns: 10e6,
                min_interval_ns: 15e6,
                hysteresis_ns: 100e6,
                ..Default::default()
            },
            t.clone(),
        );
        let mut a = Recorder::default();
        t.gauge_set("tscout_overhead_ratio", &[], 0.09);
        let r = e.tick(
            &PlannerInputs {
                now_ns: 1e6,
                overhead_ratio: Some(0.09),
                rates: rates(40, 40, 0),
                ..Default::default()
            },
            &mut a,
        );
        assert_eq!(
            r.actuated,
            vec![
                ActionCommand::SetSamplingRate {
                    subsystem: "execution_engine".to_string(),
                    rate: 20,
                },
                // Overhead breach also holds compaction.
                ActionCommand::HoldCompaction { hold: true },
            ]
        );
        assert!(e.compaction_held());
        // Ratio recovers below the restore watermark, but the raise
        // reverses the lower: hysteresis holds it back...
        t.gauge_set("tscout_overhead_ratio", &[], 0.02);
        let r = e.tick(
            &PlannerInputs {
                now_ns: 20e6,
                overhead_ratio: Some(0.02),
                rates: rates(20, 20, 0),
                ..Default::default()
            },
            &mut a,
        );
        assert!(!r
            .actuated
            .iter()
            .any(|c| matches!(c, ActionCommand::SetSamplingRate { .. })));
        assert!(
            t.counter_value(
                "tscout_action_suppressed_total",
                &[("reason", "hysteresis")]
            ) >= 1
        );
        // ...but the compaction hold (directionless) releases.
        assert!(r
            .actuated
            .contains(&ActionCommand::HoldCompaction { hold: false }));
        assert!(!e.compaction_held());
        // Past the hysteresis window the restore goes through, back
        // toward the first-seen baseline (40).
        let r = e.tick(
            &PlannerInputs {
                now_ns: 200e6,
                overhead_ratio: Some(0.02),
                rates: rates(20, 20, 0),
                ..Default::default()
            },
            &mut a,
        );
        assert!(r.actuated.contains(&ActionCommand::SetSamplingRate {
            subsystem: "execution_engine".to_string(),
            rate: 40,
        }));
    }

    #[test]
    fn loss_backoff_follows_processor_recommendation() {
        let t = Telemetry::new();
        t.counter_add(
            "tscout_samples_lost_total",
            &[("subsystem", "execution_engine"), ("reason", "overwrite")],
            12,
        );
        let mut e = ActionEngine::new(ActionConfig::default(), t.clone());
        let mut a = Recorder::default();
        let r = e.tick(
            &PlannerInputs {
                now_ns: 1e6,
                rates: rates(40, 20, 12),
                ..Default::default()
            },
            &mut a,
        );
        assert_eq!(
            r.actuated,
            vec![ActionCommand::SetSamplingRate {
                subsystem: "execution_engine".to_string(),
                rate: 20,
            }]
        );
        let rec = &t.actions_snapshot()[0];
        assert_eq!(rec.policy, "loss_backoff");
        assert!(rec.metric.contains("tscout_samples_lost_total"));
        // No further losses: the follow-up observes a zero delta.
        let r = e.tick(
            &PlannerInputs {
                now_ns: 1e6 + e.cfg.observation_window_ns + 1.0,
                rates: rates(20, 20, 0),
                ..Default::default()
            },
            &mut a,
        );
        assert_eq!(r.observed.len(), 1);
        assert_eq!(r.observed[0].observed, 0.0);
        assert!(!r.observed[0].regressed);
    }

    #[test]
    fn archive_pressure_schedules_compaction() {
        let t = Telemetry::new();
        t.gauge_set("archive_segments", &[], 100.0);
        let mut e = ActionEngine::new(ActionConfig::default(), t.clone());
        let mut a = Recorder::default();
        let r = e.tick(
            &PlannerInputs {
                now_ns: 1e6,
                ..Default::default()
            },
            &mut a,
        );
        assert_eq!(r.actuated, vec![ActionCommand::ScheduleCompaction]);
        let rec = &t.actions_snapshot()[0];
        assert_eq!(rec.metric, "archive_segments");
        assert_eq!(rec.predicted, 50.0);
    }

    #[test]
    fn pipeline_toggles_on_predicted_cost() {
        let t = Telemetry::new();
        let mut e = ActionEngine::new(ActionConfig::default(), t.clone());
        let mut a = Recorder::default();
        // Cheap OUs + interpreted pipelines ⇒ fuse.
        let r = e.tick(
            &PlannerInputs {
                now_ns: 1e6,
                overhead_ratio: Some(0.01),
                predicted_exec_ou_ns: Some(800.0),
                pipeline_fused: false,
                ..Default::default()
            },
            &mut a,
        );
        assert_eq!(
            r.actuated,
            vec![ActionCommand::SetPipelineMode { fused: true }]
        );
        // Expensive OUs + fused ⇒ unfuse, but hysteresis blocks the
        // immediate reversal.
        let r = e.tick(
            &PlannerInputs {
                now_ns: 2e6,
                overhead_ratio: Some(0.01),
                predicted_exec_ou_ns: Some(50_000.0),
                pipeline_fused: true,
                ..Default::default()
            },
            &mut a,
        );
        assert!(r.planned.is_empty());
        assert_eq!(r.suppressed, 1);
        // After the hysteresis window it goes through.
        let r = e.tick(
            &PlannerInputs {
                now_ns: 2e6 + e.cfg.hysteresis_ns,
                overhead_ratio: Some(0.01),
                predicted_exec_ou_ns: Some(50_000.0),
                pipeline_fused: true,
                ..Default::default()
            },
            &mut a,
        );
        assert!(r
            .actuated
            .contains(&ActionCommand::SetPipelineMode { fused: false }));
    }

    #[test]
    fn dry_run_plans_identically_but_actuates_nothing() {
        let mk_inputs = || PlannerInputs {
            now_ns: 1e6,
            overhead_ratio: Some(0.09),
            rates: rates(40, 40, 0),
            ..Default::default()
        };
        let t_live = Telemetry::new();
        t_live.gauge_set("ts_health_state", &[("subsystem", "data")], 2.0);
        let t_dry = Telemetry::new();
        t_dry.gauge_set("ts_health_state", &[("subsystem", "data")], 2.0);
        let mut live = ActionEngine::new(ActionConfig::default(), t_live.clone());
        let mut dry = ActionEngine::new(
            ActionConfig {
                dry_run: true,
                ..Default::default()
            },
            t_dry.clone(),
        );
        let mut a_live = Recorder::default();
        let mut a_dry = Recorder::default();
        let r_live = live.tick(&mk_inputs(), &mut a_live);
        let r_dry = dry.tick(&mk_inputs(), &mut a_dry);
        // Identical plans...
        assert_eq!(r_live.planned.len(), r_dry.planned.len());
        let recs_live = t_live.actions_snapshot();
        let recs_dry = t_dry.actions_snapshot();
        assert_eq!(recs_live.len(), recs_dry.len());
        for (l, d) in recs_live.iter().zip(&recs_dry) {
            assert_eq!(l.kind, d.kind);
            assert_eq!(l.target, d.target);
            assert_eq!(l.predicted, d.predicted);
            assert!(!l.dry_run);
            assert!(d.dry_run);
        }
        // ...zero actuation.
        assert!(!a_live.calls.is_empty());
        assert!(a_dry.calls.is_empty());
        assert!(r_dry.actuated.is_empty());
        assert_eq!(
            t_dry.counter_value("tscout_action_suppressed_total", &[("reason", "dry_run")]),
            recs_dry.len() as u64
        );
        // Dry-run follow-ups still close.
        let r = dry.tick(
            &PlannerInputs {
                now_ns: 1e6 + dry.cfg.observation_window_ns + 1.0,
                ..Default::default()
            },
            &mut a_dry,
        );
        assert_eq!(r.observed.len(), recs_dry.len());
        assert!(r.observed.iter().all(|o| o.dry_run));
    }

    #[test]
    fn constructor_predeclares_all_metrics() {
        let t = Telemetry::new();
        let _e = ActionEngine::new(ActionConfig::default(), t.clone());
        let names = t.with_registry(|r| r.metric_names());
        for n in [
            "tscout_action_planned_total",
            "tscout_action_actuated_total",
            "tscout_action_observed_total",
            "tscout_action_regressed_total",
            "tscout_action_suppressed_total",
            "tscout_action_log_dropped_total",
            "tscout_action_pending",
            "tscout_action_efficacy_err_pct",
        ] {
            assert!(names.iter().any(|x| x == n), "missing {n}");
            assert!(tscout_telemetry::is_documented(n), "undocumented {n}");
        }
    }
}
