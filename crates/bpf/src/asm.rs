//! A label-based program builder.
//!
//! TScout's Codegen emits Collector bytecode through this builder (paper
//! §3.1: "TS then generates the source code for a BPF program"). Labels
//! keep the generated control flow readable; `resolve()` patches jump
//! offsets (forward or backward — the verifier accepts bounded loops)
//! and fails loudly on undefined references.

use crate::insn::{AluOp, Cond, Helper, Insn, Reg, Size, Src};
use crate::maps::MapId;
use std::collections::HashMap;

/// A forward-reference label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors from `resolve`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A jump references a label that was never `bind`-ed.
    UnboundLabel(usize),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label L{l} was never bound"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug)]
enum Pending {
    Done(Insn),
    Jump {
        cond: Option<(Cond, Reg, Src)>,
        target: Label,
    },
}

/// Builder for straight-line-with-forward-branches BPF programs.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insns: Vec<Pending>,
    labels: HashMap<Label, usize>,
    next_label: usize,
}

impl ProgramBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a label to be bound later.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Bind a label to the *next* emitted instruction.
    pub fn bind(&mut self, l: Label) -> &mut Self {
        self.labels.insert(l, self.insns.len());
        self
    }

    /// Current instruction count.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    // -- ALU ------------------------------------------------------------

    pub fn mov_imm(&mut self, dst: Reg, imm: i64) -> &mut Self {
        self.push(Insn::Alu {
            op: AluOp::Mov,
            dst,
            src: Src::Imm(imm),
        })
    }

    pub fn mov_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Insn::Alu {
            op: AluOp::Mov,
            dst,
            src: Src::Reg(src),
        })
    }

    pub fn alu_imm(&mut self, op: AluOp, dst: Reg, imm: i64) -> &mut Self {
        self.push(Insn::Alu {
            op,
            dst,
            src: Src::Imm(imm),
        })
    }

    pub fn alu_reg(&mut self, op: AluOp, dst: Reg, src: Reg) -> &mut Self {
        self.push(Insn::Alu {
            op,
            dst,
            src: Src::Reg(src),
        })
    }

    // -- memory -----------------------------------------------------------

    pub fn load(&mut self, size: Size, dst: Reg, base: Reg, off: i32) -> &mut Self {
        self.push(Insn::Load {
            size,
            dst,
            base,
            off,
        })
    }

    pub fn store_reg(&mut self, size: Size, base: Reg, off: i32, src: Reg) -> &mut Self {
        self.push(Insn::Store {
            size,
            base,
            off,
            src: Src::Reg(src),
        })
    }

    pub fn store_imm(&mut self, size: Size, base: Reg, off: i32, imm: i64) -> &mut Self {
        self.push(Insn::Store {
            size,
            base,
            off,
            src: Src::Imm(imm),
        })
    }

    // -- control ----------------------------------------------------------

    pub fn jump(&mut self, target: Label) -> &mut Self {
        self.insns.push(Pending::Jump { cond: None, target });
        self
    }

    pub fn jump_if_imm(&mut self, cond: Cond, dst: Reg, imm: i64, target: Label) -> &mut Self {
        self.insns.push(Pending::Jump {
            cond: Some((cond, dst, Src::Imm(imm))),
            target,
        });
        self
    }

    pub fn jump_if_reg(&mut self, cond: Cond, dst: Reg, src: Reg, target: Label) -> &mut Self {
        self.insns.push(Pending::Jump {
            cond: Some((cond, dst, Src::Reg(src))),
            target,
        });
        self
    }

    pub fn call(&mut self, helper: Helper) -> &mut Self {
        self.push(Insn::Call { helper })
    }

    pub fn load_map(&mut self, dst: Reg, map: MapId) -> &mut Self {
        self.push(Insn::LoadMap { dst, map })
    }

    pub fn exit(&mut self) -> &mut Self {
        self.push(Insn::Exit)
    }

    fn push(&mut self, insn: Insn) -> &mut Self {
        self.insns.push(Pending::Done(insn));
        self
    }

    /// Patch jump offsets and return the final program.
    pub fn resolve(self) -> Result<Vec<Insn>, AsmError> {
        let labels = self.labels;
        self.insns
            .into_iter()
            .enumerate()
            .map(|(pc, pending)| match pending {
                Pending::Done(insn) => Ok(insn),
                Pending::Jump { cond, target } => {
                    let tgt = *labels
                        .get(&target)
                        .ok_or(AsmError::UnboundLabel(target.0))?;
                    Ok(Insn::Jump {
                        cond,
                        off: (tgt as i64 - pc as i64 - 1) as i32,
                    })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{R0, R1};

    #[test]
    fn builds_and_resolves_forward_jump() {
        let mut b = ProgramBuilder::new();
        let done = b.label();
        b.mov_imm(R0, 1);
        b.jump_if_imm(Cond::Eq, R0, 0, done);
        b.mov_imm(R0, 2);
        b.bind(done);
        b.exit();
        let prog = b.resolve().unwrap();
        assert_eq!(prog.len(), 4);
        match prog[1] {
            Insn::Jump {
                cond: Some((Cond::Eq, R0, Src::Imm(0))),
                off,
            } => assert_eq!(off, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn jump_to_next_insn_has_zero_offset() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jump(l);
        b.bind(l);
        b.exit();
        let prog = b.resolve().unwrap();
        assert_eq!(prog[0], Insn::Jump { cond: None, off: 0 });
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jump(l);
        b.exit();
        assert!(matches!(b.resolve(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn backward_jump_resolves_to_negative_offset() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.mov_imm(R1, 0);
        b.jump(top);
        b.exit();
        let prog = b.resolve().unwrap();
        assert_eq!(
            prog[1],
            Insn::Jump {
                cond: None,
                off: -2
            }
        );
    }

    #[test]
    fn store_and_load_helpers_produce_expected_insns() {
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, crate::insn::R10, -8, 42);
        b.load(Size::B8, R1, crate::insn::R10, -8);
        b.exit();
        let prog = b.resolve().unwrap();
        assert!(matches!(
            prog[0],
            Insn::Store {
                size: Size::B8,
                off: -8,
                ..
            }
        ));
        assert!(matches!(
            prog[1],
            Insn::Load {
                size: Size::B8,
                off: -8,
                ..
            }
        ));
    }
}
