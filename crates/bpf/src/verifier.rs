//! The static verifier: a range-tracking abstract interpreter.
//!
//! Models the Linux BPF verifier's architecture (paper §5.1): it explores
//! every execution path from the entry point, tracking an abstract value
//! for each register, and rejects the program if *any* path can perform
//! an unsafe operation. Scalars carry a full value-tracking domain —
//! tristate numbers ([`crate::tnum::Tnum`], known bits) plus signed and
//! unsigned `[min, max]` intervals, kept mutually consistent — so the
//! verifier can prove variable-offset memory accesses in bounds and
//! loops terminating. Enforced properties:
//!
//! * back edges are allowed only while the path makes progress: each
//!   traversal of a back edge is counted per jump site and capped
//!   ([`MAX_LOOP_TRIPS`]), so bounded loops (a counter whose refined
//!   range narrows every iteration until the loop condition goes dead)
//!   verify, while unbounded ones are rejected with `BackEdge`;
//! * a hard instruction-count cap (the kernel's is 1M; "TS's compiled
//!   BPF programs only contain 100s of instructions");
//! * every register is written before it is read;
//! * every memory access is through a typed pointer whose offset range
//!   (constant base + a bounded variable part, from pointer arithmetic
//!   with range-tracked scalars) is provably in bounds for its region
//!   (512-byte stack, read-only context, map values of declared size);
//! * stack reads only touch bytes previously written on this path;
//! * map-lookup results must be null-checked before dereference; both
//!   arms of the null test are refined, as are both arms of every
//!   scalar conditional jump (`if r2 > 15 goto exit` proves
//!   `r2 ∈ [0, 15]` on the fall-through path);
//! * helper calls obey typed signatures; calls clobber `R1`–`R5`;
//! * `exit` requires `R0` to hold a scalar;
//! * pointers never leak into arithmetic other than `± bounded scalar`,
//!   never get compared (except null checks), and never get stored to
//!   memory.
//!
//! Exploration cost is kept tractable by *state pruning*: at every jump
//! target the verifier records the states it has already explored and
//! skips any new state subsumed by a recorded one (the kernel's
//! `states_equal` walk), with a global explored-states budget
//! ([`MAX_STATES`]) as the backstop. [`verify_with_log`] additionally
//! produces a kernel-style human-readable trace of the exploration for
//! rejection diagnostics.

use std::collections::HashMap;

use crate::insn::{AluOp, Cond, Helper, Insn, Reg, Src};
use crate::maps::{MapId, MapKind, MapRegistry};
use crate::tnum::Tnum;

/// Stack size available to a program, like eBPF.
pub const STACK_SIZE: i64 = 512;
/// Maximum program length (the kernel's modern limit).
pub const MAX_INSNS: usize = 1_000_000;
/// Cap on abstract states explored before giving up.
pub const MAX_STATES: usize = 200_000;
/// Largest record `perf_event_output` may publish.
pub const MAX_OUTPUT_BYTES: i64 = 8192;
/// Most traversals of any single back edge one path may make. Chosen so
/// the worst verified runtime stays well under the VM's fuel budget.
pub const MAX_LOOP_TRIPS: u32 = 512;
/// Pointer offsets (base plus variable part) are confined to this many
/// bytes either side of the region start, like the kernel's
/// `BPF_MAX_VAR_OFF` discipline.
pub const MAX_PTR_OFF: i64 = 1 << 29;
/// How many explored states are remembered per prune point.
const MAX_RECORDED_PER_PC: usize = 64;
/// Verifier log size cap (the kernel truncates its log buffer too).
const MAX_LOG_BYTES: usize = 64 * 1024;

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    EmptyProgram,
    TooLong {
        len: usize,
    },
    TooComplex,
    InvalidRegister {
        pc: usize,
    },
    WriteToFramePointer {
        pc: usize,
    },
    UninitRead {
        pc: usize,
        reg: u8,
    },
    BackEdge {
        pc: usize,
    },
    JumpOutOfBounds {
        pc: usize,
    },
    FellOffEnd {
        pc: usize,
    },
    PointerArithmetic {
        pc: usize,
    },
    PointerComparison {
        pc: usize,
    },
    PointerStore {
        pc: usize,
    },
    DivisionByZero {
        pc: usize,
    },
    NotAPointer {
        pc: usize,
    },
    PossiblyNullDeref {
        pc: usize,
    },
    OutOfBounds {
        pc: usize,
        region: &'static str,
        off: i64,
        size: usize,
    },
    UninitStackRead {
        pc: usize,
        off: i64,
    },
    CtxWrite {
        pc: usize,
    },
    UnknownMap {
        pc: usize,
    },
    BadHelperArg {
        pc: usize,
        helper: Helper,
        arg: u8,
        expected: &'static str,
    },
    ExitWithoutScalarR0 {
        pc: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::EmptyProgram => write!(f, "empty program"),
            VerifyError::TooLong { len } => write!(f, "program too long ({len} insns)"),
            VerifyError::TooComplex => write!(f, "verification too complex"),
            VerifyError::InvalidRegister { pc } => write!(f, "invalid register at pc {pc}"),
            VerifyError::WriteToFramePointer { pc } => write!(f, "write to r10 at pc {pc}"),
            VerifyError::UninitRead { pc, reg } => {
                write!(f, "read of uninitialized r{reg} at pc {pc}")
            }
            VerifyError::BackEdge { pc } => {
                write!(f, "back edge at pc {pc}: loop not provably bounded")
            }
            VerifyError::JumpOutOfBounds { pc } => write!(f, "jump out of bounds at pc {pc}"),
            VerifyError::FellOffEnd { pc } => write!(f, "control falls off program end at pc {pc}"),
            VerifyError::PointerArithmetic { pc } => {
                write!(f, "disallowed pointer arithmetic at pc {pc}")
            }
            VerifyError::PointerComparison { pc } => {
                write!(f, "disallowed pointer comparison at pc {pc}")
            }
            VerifyError::PointerStore { pc } => write!(f, "pointer stored to memory at pc {pc}"),
            VerifyError::DivisionByZero { pc } => write!(f, "division by zero at pc {pc}"),
            VerifyError::NotAPointer { pc } => {
                write!(f, "memory access via non-pointer at pc {pc}")
            }
            VerifyError::PossiblyNullDeref { pc } => {
                write!(f, "map value dereferenced without null check at pc {pc}")
            }
            VerifyError::OutOfBounds {
                pc,
                region,
                off,
                size,
            } => {
                write!(
                    f,
                    "{region} access out of bounds at pc {pc} (off {off}, size {size})"
                )
            }
            VerifyError::UninitStackRead { pc, off } => {
                write!(f, "read of uninitialized stack at fp{off:+} (pc {pc})")
            }
            VerifyError::CtxWrite { pc } => write!(f, "store to read-only context at pc {pc}"),
            VerifyError::UnknownMap { pc } => write!(f, "reference to unknown map at pc {pc}"),
            VerifyError::BadHelperArg {
                pc,
                helper,
                arg,
                expected,
            } => write!(
                f,
                "helper {} arg r{arg} at pc {pc}: expected {expected}",
                helper.name()
            ),
            VerifyError::ExitWithoutScalarR0 { pc } => {
                write!(f, "exit with non-scalar r0 at pc {pc}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// The scalar abstract domain: a tnum (known bits) plus unsigned and
/// signed interval bounds, all describing the same set of `u64` values.
/// Kept mutually consistent by [`Range::sync`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Range {
    tnum: Tnum,
    umin: u64,
    umax: u64,
    smin: i64,
    smax: i64,
}

impl Range {
    fn unknown() -> Self {
        Range {
            tnum: Tnum::unknown(),
            umin: 0,
            umax: u64::MAX,
            smin: i64::MIN,
            smax: i64::MAX,
        }
    }

    fn cnst(v: i64) -> Self {
        Range {
            tnum: Tnum::cnst(v as u64),
            umin: v as u64,
            umax: v as u64,
            smin: v,
            smax: v,
        }
    }

    fn const_u(self) -> Option<u64> {
        if self.umin == self.umax {
            Some(self.umin)
        } else {
            None
        }
    }

    fn const_i(self) -> Option<i64> {
        if self.smin == self.smax {
            Some(self.smin)
        } else {
            None
        }
    }

    /// Is every value admitted by `other` admitted by `self`?
    fn subsumes(self, other: Range) -> bool {
        self.umin <= other.umin
            && self.umax >= other.umax
            && self.smin <= other.smin
            && self.smax >= other.smax
            && self.tnum.subsumes(other.tnum)
    }

    /// Propagate information between the three sub-domains until they
    /// agree. Returns `None` when they contradict — the abstract value
    /// describes no concrete value, i.e. the path is dead.
    fn sync(mut self) -> Option<Range> {
        // The domains converge in a couple of rounds; 8 is a safe cap.
        for _ in 0..8 {
            let prev = self;
            self.umin = self.umin.max(self.tnum.min());
            self.umax = self.umax.min(self.tnum.max());
            if self.umin > self.umax {
                return None;
            }
            // Unsigned bounds imply signed ones only when the range does
            // not straddle the sign boundary.
            if (self.umin as i64) <= (self.umax as i64) {
                self.smin = self.smin.max(self.umin as i64);
                self.smax = self.smax.min(self.umax as i64);
            }
            if self.smin > self.smax {
                return None;
            }
            // Symmetrically, a sign-pure signed range casts to unsigned.
            if self.smin >= 0 || self.smax < 0 {
                self.umin = self.umin.max(self.smin as u64);
                self.umax = self.umax.min(self.smax as u64);
                if self.umin > self.umax {
                    return None;
                }
            }
            self.tnum = self.tnum.intersect(Tnum::range(self.umin, self.umax))?;
            if self == prev {
                break;
            }
        }
        Some(self)
    }
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(c) = self.const_u() {
            return write!(f, "{c:#x}");
        }
        write!(f, "u=[{:#x},{:#x}]", self.umin, self.umax)?;
        if self.smin != i64::MIN || self.smax != i64::MAX {
            write!(f, " s=[{},{}]", self.smin, self.smax)?;
        }
        if self.tnum != Tnum::unknown() {
            write!(f, " t={}", self.tnum)?;
        }
        Ok(())
    }
}

/// Abstract transfer function for a scalar ALU op. Always returns a
/// sound over-approximation; contradictions collapse to `unknown` (they
/// cannot arise from a live input, but over-approximating is safe).
fn range_alu(op: AluOp, d: Range, s: Range) -> Range {
    use AluOp::*;
    let mut r = Range::unknown();
    match op {
        Mov | Neg => unreachable!("handled before range_alu"),
        Add => {
            r.tnum = d.tnum.add(s.tnum);
            if let (Some(lo), Some(hi)) = (d.umin.checked_add(s.umin), d.umax.checked_add(s.umax)) {
                r.umin = lo;
                r.umax = hi;
            }
            if let (Some(lo), Some(hi)) = (d.smin.checked_add(s.smin), d.smax.checked_add(s.smax)) {
                r.smin = lo;
                r.smax = hi;
            }
        }
        Sub => {
            r.tnum = d.tnum.sub(s.tnum);
            if let (Some(lo), Some(hi)) = (d.umin.checked_sub(s.umax), d.umax.checked_sub(s.umin)) {
                r.umin = lo;
                r.umax = hi;
            }
            if let (Some(lo), Some(hi)) = (d.smin.checked_sub(s.smax), d.smax.checked_sub(s.smin)) {
                r.smin = lo;
                r.smax = hi;
            }
        }
        Mul => {
            r.tnum = d.tnum.mul(s.tnum);
            if let (Some(lo), Some(hi)) = (d.umin.checked_mul(s.umin), d.umax.checked_mul(s.umax)) {
                r.umin = lo;
                r.umax = hi;
            }
        }
        Div => {
            // VM semantics: unsigned division, divide-by-zero yields 0.
            if let Some(c) = s.const_u() {
                if c == 0 {
                    return Range::cnst(0);
                }
                r.umin = d.umin / c;
                r.umax = d.umax / c;
            } else {
                r.umin = 0;
                r.umax = d.umax;
            }
        }
        Mod => {
            // VM semantics: unsigned remainder, mod-by-zero keeps dst.
            if let (Some(a), Some(c)) = (d.const_u(), s.const_u()) {
                return Range::cnst(if c == 0 { a } else { a % c } as i64);
            }
            if let Some(c) = s.const_u() {
                if c == 0 {
                    return d;
                }
                r.umin = 0;
                r.umax = d.umax.min(c - 1);
            } else {
                // d % s <= d whether or not s is zero.
                r.umin = 0;
                r.umax = d.umax;
            }
        }
        And => {
            r.tnum = d.tnum.and(s.tnum);
            r.umin = 0;
            r.umax = d.umax.min(s.umax);
        }
        Or => {
            r.tnum = d.tnum.or(s.tnum);
            r.umin = d.umin.max(s.umin);
        }
        Xor => {
            r.tnum = d.tnum.xor(s.tnum);
        }
        Lsh => {
            if let Some(c) = s.const_u() {
                let c = (c & 63) as u32;
                r.tnum = d.tnum.lshift(c);
                // Bounds shift only when no set bit can fall off the top.
                if d.umax.leading_zeros() >= c {
                    r.umin = d.umin << c;
                    r.umax = d.umax << c;
                }
            }
        }
        Rsh => {
            if let Some(c) = s.const_u() {
                let c = (c & 63) as u32;
                r.tnum = d.tnum.rshift(c);
                r.umin = d.umin >> c;
                r.umax = d.umax >> c;
            } else {
                r.umin = 0;
                r.umax = d.umax;
            }
        }
        Arsh => {
            if let Some(c) = s.const_u() {
                let c = (c & 63) as u32;
                r.tnum = d.tnum.arshift(c);
                r.smin = d.smin >> c;
                r.smax = d.smax >> c;
            }
        }
    }
    r.sync().unwrap_or_else(Range::unknown)
}

/// A branch condition to assume while refining: either one of the insn
/// set's conditions or the negation of `Set` (which has no insn form).
#[derive(Debug, Clone, Copy)]
enum BranchCond {
    C(Cond),
    NotSet,
}

/// The condition that holds on the fall-through arm when `c` does not.
fn negate(c: Cond) -> BranchCond {
    use BranchCond::C;
    match c {
        Cond::Eq => C(Cond::Ne),
        Cond::Ne => C(Cond::Eq),
        Cond::Lt => C(Cond::Ge),
        Cond::Ge => C(Cond::Lt),
        Cond::Gt => C(Cond::Le),
        Cond::Le => C(Cond::Gt),
        Cond::SLt => C(Cond::SGe),
        Cond::SGe => C(Cond::SLt),
        Cond::SGt => C(Cond::SLe),
        Cond::SLe => C(Cond::SGt),
        Cond::Set => BranchCond::NotSet,
    }
}

/// Shrink `r` assuming `r != other`; only exact endpoints move. `None`
/// when `r` must equal the excluded constant.
fn refine_ne(r: &mut Range, other: &Range) -> Option<()> {
    if let Some(c) = other.const_u() {
        if r.umin == c {
            if c == u64::MAX {
                return None;
            }
            r.umin += 1;
        }
        if r.umax == c {
            if c == 0 {
                return None;
            }
            r.umax -= 1;
        }
    }
    if let Some(c) = other.const_i() {
        if r.smin == c {
            if c == i64::MAX {
                return None;
            }
            r.smin += 1;
        }
        if r.smax == c {
            if c == i64::MIN {
                return None;
            }
            r.smax -= 1;
        }
    }
    Some(())
}

/// Refine both operand ranges assuming `cond(d, s)` holds. Returns the
/// narrowed pair, or `None` when the condition cannot hold — that
/// branch arm is dead. Every `?` on checked endpoint arithmetic below
/// coincides exactly with a genuine contradiction (e.g. `d < s` with
/// `s.umax == 0` means "unsigned less than zero": impossible).
fn refine(cond: BranchCond, d: Range, s: Range) -> Option<(Range, Range)> {
    let (mut d, mut s) = (d, s);
    match cond {
        BranchCond::C(Cond::Eq) => {
            let t = d.tnum.intersect(s.tnum)?;
            d.tnum = t;
            s.tnum = t;
            d.umin = d.umin.max(s.umin);
            s.umin = d.umin;
            d.umax = d.umax.min(s.umax);
            s.umax = d.umax;
            d.smin = d.smin.max(s.smin);
            s.smin = d.smin;
            d.smax = d.smax.min(s.smax);
            s.smax = d.smax;
        }
        BranchCond::C(Cond::Ne) => {
            refine_ne(&mut d, &s)?;
            refine_ne(&mut s, &d)?;
        }
        BranchCond::C(Cond::Lt) => {
            d.umax = d.umax.min(s.umax.checked_sub(1)?);
            s.umin = s.umin.max(d.umin.checked_add(1)?);
        }
        BranchCond::C(Cond::Le) => {
            d.umax = d.umax.min(s.umax);
            s.umin = s.umin.max(d.umin);
        }
        BranchCond::C(Cond::Gt) => {
            d.umin = d.umin.max(s.umin.checked_add(1)?);
            s.umax = s.umax.min(d.umax.checked_sub(1)?);
        }
        BranchCond::C(Cond::Ge) => {
            d.umin = d.umin.max(s.umin);
            s.umax = s.umax.min(d.umax);
        }
        BranchCond::C(Cond::SLt) => {
            d.smax = d.smax.min(s.smax.checked_sub(1)?);
            s.smin = s.smin.max(d.smin.checked_add(1)?);
        }
        BranchCond::C(Cond::SLe) => {
            d.smax = d.smax.min(s.smax);
            s.smin = s.smin.max(d.smin);
        }
        BranchCond::C(Cond::SGt) => {
            d.smin = d.smin.max(s.smin.checked_add(1)?);
            s.smax = s.smax.min(d.smax.checked_sub(1)?);
        }
        BranchCond::C(Cond::SGe) => {
            d.smin = d.smin.max(s.smin);
            s.smax = s.smax.min(d.smax);
        }
        BranchCond::C(Cond::Set) => {
            // `d & s != 0`: impossible when no bit can be set in both.
            if (d.tnum.value | d.tnum.mask) & (s.tnum.value | s.tnum.mask) == 0 {
                return None;
            }
        }
        BranchCond::NotSet => {
            // `d & s == 0`: impossible when a bit is known set in both;
            // against a constant mask, the masked bits become known 0.
            if d.tnum.value & s.tnum.value != 0 {
                return None;
            }
            if let Some(c) = s.tnum.const_value() {
                d.tnum.mask &= !c;
            }
            if let Some(c) = d.tnum.const_value() {
                s.tnum.mask &= !c;
            }
        }
    }
    Some((d.sync()?, s.sync()?))
}

/// Abstract register type. Pointers carry a constant base offset plus a
/// variable part `[vmin, vmax]` accumulated from bounded-scalar
/// arithmetic; the concrete offset is `off + v` for some `v` in range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegType {
    Uninit,
    Scalar(Range),
    PtrStack {
        off: i64,
        vmin: i64,
        vmax: i64,
    },
    PtrCtx {
        off: i64,
        vmin: i64,
        vmax: i64,
    },
    PtrMap {
        map: MapId,
        off: i64,
        vmin: i64,
        vmax: i64,
    },
    PtrMapOrNull {
        map: MapId,
    },
    MapHandle(MapId),
}

impl RegType {
    fn cnst(v: i64) -> Self {
        RegType::Scalar(Range::cnst(v))
    }

    fn unknown_scalar() -> Self {
        RegType::Scalar(Range::unknown())
    }

    fn is_scalar(self) -> bool {
        matches!(self, RegType::Scalar(_))
    }

    fn is_init(self) -> bool {
        !matches!(self, RegType::Uninit)
    }

    fn const_i(self) -> Option<i64> {
        match self {
            RegType::Scalar(r) => r.const_i(),
            _ => None,
        }
    }
}

fn fmt_ptr(
    f: &mut std::fmt::Formatter<'_>,
    base: &str,
    off: i64,
    vmin: i64,
    vmax: i64,
) -> std::fmt::Result {
    write!(f, "{base}{off:+}")?;
    if (vmin, vmax) != (0, 0) {
        write!(f, "+[{vmin},{vmax}]")?;
    }
    Ok(())
}

impl std::fmt::Display for RegType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegType::Uninit => write!(f, "uninit"),
            RegType::Scalar(r) => write!(f, "{r}"),
            RegType::PtrStack { off, vmin, vmax } => fmt_ptr(f, "fp", *off, *vmin, *vmax),
            RegType::PtrCtx { off, vmin, vmax } => fmt_ptr(f, "ctx", *off, *vmin, *vmax),
            RegType::PtrMap {
                map,
                off,
                vmin,
                vmax,
            } => fmt_ptr(f, &format!("map_value({})", map.0), *off, *vmin, *vmax),
            RegType::PtrMapOrNull { map } => write!(f, "map_value_or_null({})", map.0),
            RegType::MapHandle(map) => write!(f, "map_handle({})", map.0),
        }
    }
}

/// Does the abstract value `old` cover every concrete value `new` can
/// take? (The per-register leg of state subsumption.)
fn reg_subsumes(old: RegType, new: RegType) -> bool {
    match (old, new) {
        // An uninit slot admits anything: the old path never read it.
        (RegType::Uninit, _) => true,
        (RegType::Scalar(a), RegType::Scalar(b)) => a.subsumes(b),
        (a, b) => a == b,
    }
}

/// A per-path abstract machine state.
#[derive(Debug, Clone)]
struct State {
    regs: [RegType; 11],
    /// One bit per stack byte: written on this path.
    stack_init: [u64; 8],
    /// Back-edge traversal counts, keyed by the jump's pc. Kept sorted
    /// by insertion order (first back edge met first); compared for
    /// equality during pruning so loop iterations are never conflated.
    trips: Vec<(u32, u32)>,
}

impl State {
    fn entry() -> Self {
        let mut regs = [RegType::Uninit; 11];
        regs[1] = RegType::PtrCtx {
            off: 0,
            vmin: 0,
            vmax: 0,
        }; // R1 = ctx at entry
        regs[10] = RegType::PtrStack {
            off: 0,
            vmin: 0,
            vmax: 0,
        }; // R10 = frame top
        State {
            regs,
            stack_init: [0; 8],
            trips: Vec::new(),
        }
    }

    fn stack_bit(off: i64) -> (usize, u64) {
        // off in [-512, -1]; bit index 0 = fp-512.
        let idx = (off + STACK_SIZE) as usize;
        (idx / 64, 1u64 << (idx % 64))
    }

    fn mark_stack_init(&mut self, off: i64, size: usize) {
        for b in 0..size as i64 {
            let (w, m) = Self::stack_bit(off + b);
            self.stack_init[w] |= m;
        }
    }

    fn stack_is_init(&self, off: i64, size: usize) -> bool {
        (0..size as i64).all(|b| {
            let (w, m) = Self::stack_bit(off + b);
            self.stack_init[w] & m != 0
        })
    }

    /// Count one traversal of the back edge at `pc`; returns the new count.
    fn bump_trip(&mut self, pc: u32) -> u32 {
        for t in &mut self.trips {
            if t.0 == pc {
                t.1 += 1;
                return t.1;
            }
        }
        self.trips.push((pc, 1));
        1
    }
}

/// Is `new` redundant given we already explored `old` from the same pc?
fn state_subsumes(old: &State, new: &State) -> bool {
    // Differing trip counts are different loop iterations: pruning
    // across them could bless an infinite loop, so require equality.
    old.trips == new.trips
        && old
            .stack_init
            .iter()
            .zip(&new.stack_init)
            .all(|(o, n)| o & !n == 0)
        && old
            .regs
            .iter()
            .zip(&new.regs)
            .all(|(o, n)| reg_subsumes(*o, *n))
}

/// Statistics from one verifier pass — the "verifier pass stats" leg of
/// the BPF VM's telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Program length in instructions.
    pub insns: usize,
    /// Instruction visits during exploration (≥ `insns` on branchy or
    /// loopy programs; the kernel reports the same number).
    pub insns_visited: usize,
    /// Abstract states popped off the exploration worklist.
    pub states_explored: usize,
    /// States skipped because a recorded state at the same pc subsumed
    /// them.
    pub states_pruned: usize,
    /// Execution paths that reached `exit`.
    pub paths_completed: usize,
    /// High-water mark of the pending-states worklist.
    pub peak_depth: usize,
}

/// Lattice of "what constant value does this register hold at this pc,
/// over every state that reached it". `Bottom` = no state seen yet,
/// `Top` = visited with conflicting / non-constant values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum ConstFact {
    #[default]
    Bottom,
    Const(u64),
    Top,
}

impl ConstFact {
    pub(crate) fn value(self) -> Option<u64> {
        match self {
            ConstFact::Const(v) => Some(v),
            _ => None,
        }
    }
}

/// Facts the verifier proves about one pc, exported to the load-time
/// optimizer. All facts are joins over every abstract state popped at
/// the pc; subsumption pruning keeps them sound because a pruned state
/// is covered by a recorded state that *was* explored from the same pc.
#[derive(Debug, Clone, Default)]
pub(crate) struct PcFacts {
    /// Exploration reached this pc at least once.
    pub visited: bool,
    /// Join of scalar-constant register values across every visiting
    /// state. Uninit registers join as identity: if the instruction at
    /// this pc reads the register, verification would have rejected the
    /// uninit path, so the fact only ever feeds reads that are init on
    /// every path.
    pub reg_const: [ConstFact; 11],
    /// For conditional jumps: some visiting state could take the branch.
    pub taken_live: bool,
    /// For conditional jumps: some visiting state could fall through.
    pub fallthrough_live: bool,
}

/// Verify a program against a map registry and a declared context size.
pub fn verify(prog: &[Insn], maps: &MapRegistry, ctx_size: usize) -> Result<(), VerifyError> {
    run(prog, maps, ctx_size, false, false).0.map(|_| ())
}

/// Like [`verify`], but reports how much work the pass did.
pub fn verify_with_stats(
    prog: &[Insn],
    maps: &MapRegistry,
    ctx_size: usize,
) -> Result<VerifyStats, VerifyError> {
    run(prog, maps, ctx_size, false, false).0
}

/// Like [`verify_with_stats`], but also produces a kernel-style
/// human-readable exploration log (most useful on rejection).
pub fn verify_with_log(
    prog: &[Insn],
    maps: &MapRegistry,
    ctx_size: usize,
) -> (Result<VerifyStats, VerifyError>, String) {
    let (result, log, _) = run(prog, maps, ctx_size, true, false);
    (result, log)
}

/// Like [`verify_with_stats`], but also exports the per-pc facts the
/// optimizer consumes (constant registers, dead branch arms, visited
/// pcs). Crate-internal: the public surface is `opt::optimize`.
pub(crate) fn verify_with_facts(
    prog: &[Insn],
    maps: &MapRegistry,
    ctx_size: usize,
) -> (Result<VerifyStats, VerifyError>, Vec<PcFacts>) {
    let (result, _, facts) = run(prog, maps, ctx_size, false, true);
    (result, facts)
}

fn run(
    prog: &[Insn],
    maps: &MapRegistry,
    ctx_size: usize,
    want_log: bool,
    want_facts: bool,
) -> (Result<VerifyStats, VerifyError>, String, Vec<PcFacts>) {
    let mut log = if want_log { Some(String::new()) } else { None };
    if let Some(l) = log.as_mut() {
        l.push_str(&format!(
            "verifying {} insns, ctx {} bytes\n",
            prog.len(),
            ctx_size
        ));
    }
    let early = if prog.is_empty() {
        Some(VerifyError::EmptyProgram)
    } else if prog.len() > MAX_INSNS {
        Some(VerifyError::TooLong { len: prog.len() })
    } else {
        None
    };
    if let Some(err) = early {
        let mut log = log.unwrap_or_default();
        if want_log {
            log.push_str(&format!("rejected: {err}\n"));
        }
        return (Err(err), log, Vec::new());
    }
    let mut v = Verifier {
        prog,
        maps,
        ctx_size,
        states_explored: 0,
        states_pruned: 0,
        insns_visited: 0,
        paths_completed: 0,
        peak_depth: 0,
        prune_point: prune_points(prog),
        seen: HashMap::new(),
        log,
        facts: if want_facts {
            Some(vec![PcFacts::default(); prog.len()])
        } else {
            None
        },
    };
    let result = v.explore();
    let stats = VerifyStats {
        insns: prog.len(),
        insns_visited: v.insns_visited,
        states_explored: v.states_explored,
        states_pruned: v.states_pruned,
        paths_completed: v.paths_completed,
        peak_depth: v.peak_depth,
    };
    let mut log = v.log.take().unwrap_or_default();
    if want_log {
        match &result {
            Ok(()) => log.push_str("accepted\n"),
            Err(e) => log.push_str(&format!("rejected: {e}\n")),
        }
        log.push_str(&format!(
            "stats: insns {} visited {} states {} pruned {} paths {} peak depth {}\n",
            stats.insns,
            stats.insns_visited,
            stats.states_explored,
            stats.states_pruned,
            stats.paths_completed,
            stats.peak_depth,
        ));
    }
    let facts = v.facts.take().unwrap_or_default();
    (result.map(|()| stats), log, facts)
}

/// Pcs where exploration records and prunes states: every jump target
/// plus the fall-through of every conditional jump (the kernel marks
/// the same set).
fn prune_points(prog: &[Insn]) -> Vec<bool> {
    let mut marks = vec![false; prog.len()];
    for (pc, insn) in prog.iter().enumerate() {
        if let Insn::Jump { cond, off } = insn {
            let target = pc as i64 + 1 + *off as i64;
            if (0..prog.len() as i64).contains(&target) {
                marks[target as usize] = true;
            }
            if cond.is_some() && pc + 1 < prog.len() {
                marks[pc + 1] = true;
            }
        }
    }
    marks
}

struct Verifier<'a> {
    prog: &'a [Insn],
    maps: &'a MapRegistry,
    ctx_size: usize,
    states_explored: usize,
    states_pruned: usize,
    insns_visited: usize,
    paths_completed: usize,
    peak_depth: usize,
    prune_point: Vec<bool>,
    seen: HashMap<usize, Vec<State>>,
    log: Option<String>,
    /// Per-pc fact export for the optimizer (joined over popped states).
    facts: Option<Vec<PcFacts>>,
}

impl<'a> Verifier<'a> {
    /// Append one log line; the closure only runs when logging is on.
    fn trace(&mut self, f: impl FnOnce() -> String) {
        if let Some(log) = self.log.as_mut() {
            if log.len() < MAX_LOG_BYTES {
                log.push_str(&f());
                log.push('\n');
                if log.len() >= MAX_LOG_BYTES {
                    log.push_str("...log truncated...\n");
                }
            }
        }
    }

    /// Join one popped state into the per-pc fact export. Pruned states
    /// are joined too (before the prune decision), which only weakens
    /// facts — soundness never depends on excluding them.
    fn note_state(&mut self, pc: usize, st: &State) {
        let Some(facts) = self.facts.as_mut() else {
            return;
        };
        let Some(f) = facts.get_mut(pc) else {
            return;
        };
        f.visited = true;
        for (i, reg) in st.regs.iter().enumerate() {
            let c = match reg {
                // Identity: a read of an uninit register at this pc
                // would have failed verification on that path.
                RegType::Uninit => continue,
                RegType::Scalar(r) => r.const_u(),
                _ => None,
            };
            f.reg_const[i] = match (f.reg_const[i], c) {
                (ConstFact::Bottom, Some(v)) => ConstFact::Const(v),
                (ConstFact::Const(a), Some(v)) if a == v => ConstFact::Const(a),
                _ => ConstFact::Top,
            };
        }
    }

    /// Record that some state could traverse a conditional jump's arm.
    fn note_arm(&mut self, pc: usize, taken: bool) {
        if let Some(facts) = self.facts.as_mut() {
            if let Some(f) = facts.get_mut(pc) {
                if taken {
                    f.taken_live = true;
                } else {
                    f.fallthrough_live = true;
                }
            }
        }
    }

    fn explore(&mut self) -> Result<(), VerifyError> {
        let mut worklist = vec![(0usize, State::entry())];
        self.peak_depth = 1;
        while let Some((pc, st)) = worklist.pop() {
            self.states_explored += 1;
            if self.states_explored > MAX_STATES {
                return Err(VerifyError::TooComplex);
            }
            self.note_state(pc, &st);
            let mut pruned = false;
            if pc < self.prune_point.len() && self.prune_point[pc] {
                let recorded = self.seen.entry(pc).or_default();
                if recorded.iter().any(|old| state_subsumes(old, &st)) {
                    pruned = true;
                } else if recorded.len() < MAX_RECORDED_PER_PC {
                    recorded.push(st.clone());
                }
            }
            if pruned {
                self.states_pruned += 1;
                self.trace(|| format!("{pc}: pruned (subsumed by an earlier state)"));
                continue;
            }
            self.insns_visited += 1;
            self.step(pc, st, &mut worklist)?;
            self.peak_depth = self.peak_depth.max(worklist.len());
        }
        Ok(())
    }

    fn push(&mut self, worklist: &mut Vec<(usize, State)>, pc: usize, st: State) {
        worklist.push((pc, st));
        self.peak_depth = self.peak_depth.max(worklist.len());
    }

    /// Push a jump successor, counting (and bounding) back-edge trips.
    fn push_succ(
        &mut self,
        worklist: &mut Vec<(usize, State)>,
        from: usize,
        to: usize,
        mut st: State,
    ) -> Result<(), VerifyError> {
        if to <= from {
            let trips = st.bump_trip(from as u32);
            if trips > MAX_LOOP_TRIPS {
                return Err(VerifyError::BackEdge { pc: from });
            }
            self.trace(|| format!("{from}: back edge to {to} (trip {trips})"));
        }
        self.push(worklist, to, st);
        Ok(())
    }

    fn read_reg(&self, st: &State, pc: usize, r: Reg) -> Result<RegType, VerifyError> {
        if !r.is_valid() {
            return Err(VerifyError::InvalidRegister { pc });
        }
        let t = st.regs[r.index()];
        if !t.is_init() {
            return Err(VerifyError::UninitRead { pc, reg: r.0 });
        }
        Ok(t)
    }

    fn src_type(&self, st: &State, pc: usize, src: Src) -> Result<RegType, VerifyError> {
        match src {
            Src::Imm(i) => Ok(RegType::cnst(i)),
            Src::Reg(r) => self.read_reg(st, pc, r),
        }
    }

    fn check_writable(&self, pc: usize, r: Reg) -> Result<(), VerifyError> {
        if !r.is_valid() {
            return Err(VerifyError::InvalidRegister { pc });
        }
        if !r.is_writable() {
            return Err(VerifyError::WriteToFramePointer { pc });
        }
        Ok(())
    }

    /// Check a pointer access over the pointer's whole offset span
    /// `[off+vmin, off+vmax]` and, for stack reads, initialization.
    fn check_access(
        &self,
        st: &State,
        pc: usize,
        base: RegType,
        off: i32,
        size: usize,
        write: bool,
    ) -> Result<(), VerifyError> {
        match base {
            RegType::PtrStack { off: p, vmin, vmax } => {
                let lo = (p + vmin) + off as i64;
                let hi = (p + vmax) + off as i64;
                let span = (hi - lo) as usize + size;
                if lo < -STACK_SIZE || hi + size as i64 > 0 {
                    return Err(VerifyError::OutOfBounds {
                        pc,
                        region: "stack",
                        off: lo,
                        size: span,
                    });
                }
                if !write && !st.stack_is_init(lo, span) {
                    return Err(VerifyError::UninitStackRead { pc, off: lo });
                }
                Ok(())
            }
            RegType::PtrCtx { off: p, vmin, vmax } => {
                if write {
                    return Err(VerifyError::CtxWrite { pc });
                }
                let lo = (p + vmin) + off as i64;
                let hi = (p + vmax) + off as i64;
                if lo < 0 || hi + size as i64 > self.ctx_size as i64 {
                    return Err(VerifyError::OutOfBounds {
                        pc,
                        region: "ctx",
                        off: lo,
                        size: (hi - lo) as usize + size,
                    });
                }
                Ok(())
            }
            RegType::PtrMap {
                map,
                off: p,
                vmin,
                vmax,
            } => {
                let vs = self
                    .maps
                    .def(map)
                    .ok_or(VerifyError::UnknownMap { pc })?
                    .value_size as i64;
                let lo = (p + vmin) + off as i64;
                let hi = (p + vmax) + off as i64;
                if lo < 0 || hi + size as i64 > vs {
                    return Err(VerifyError::OutOfBounds {
                        pc,
                        region: "map value",
                        off: lo,
                        size: (hi - lo) as usize + size,
                    });
                }
                Ok(())
            }
            RegType::PtrMapOrNull { .. } => Err(VerifyError::PossiblyNullDeref { pc }),
            _ => Err(VerifyError::NotAPointer { pc }),
        }
    }

    fn step(
        &mut self,
        pc: usize,
        mut st: State,
        worklist: &mut Vec<(usize, State)>,
    ) -> Result<(), VerifyError> {
        if pc >= self.prog.len() {
            return Err(VerifyError::FellOffEnd { pc });
        }
        let insn = self.prog[pc];
        self.trace(|| format!("{pc}: {insn}"));
        match insn {
            Insn::Alu { op, dst, src } => {
                self.check_writable(pc, dst)?;
                let d = st.regs[dst.index()];
                let s = self.src_type(&st, pc, src)?;
                let result = self.alu_result(pc, op, d, s)?;
                st.regs[dst.index()] = result;
                self.trace(|| format!("  ; r{}={}", dst.0, result));
                self.push(worklist, pc + 1, st);
            }
            Insn::Load {
                size,
                dst,
                base,
                off,
            } => {
                self.check_writable(pc, dst)?;
                let b = self.read_reg(&st, pc, base)?;
                self.check_access(&st, pc, b, off, size.bytes(), false)?;
                // Loads are zero-extended, so sub-64-bit loads have
                // known bounds.
                st.regs[dst.index()] = if size.bytes() == 8 {
                    RegType::unknown_scalar()
                } else {
                    let max = (1u64 << (size.bytes() * 8)) - 1;
                    RegType::Scalar(Range {
                        tnum: Tnum {
                            value: 0,
                            mask: max,
                        },
                        umin: 0,
                        umax: max,
                        smin: 0,
                        smax: max as i64,
                    })
                };
                self.push(worklist, pc + 1, st);
            }
            Insn::Store {
                size,
                base,
                off,
                src,
            } => {
                let b = self.read_reg(&st, pc, base)?;
                let s = self.src_type(&st, pc, src)?;
                if !s.is_scalar() {
                    return Err(VerifyError::PointerStore { pc });
                }
                self.check_access(&st, pc, b, off, size.bytes(), true)?;
                if let RegType::PtrStack { off: p, vmin, vmax } = b {
                    // A variable-offset store initializes *some* bytes
                    // of the span; marking the whole span is still safe
                    // because the VM zero-fills the stack (init
                    // tracking is a strictness check, not a safety
                    // one).
                    let lo = (p + vmin) + off as i64;
                    st.mark_stack_init(lo, (vmax - vmin) as usize + size.bytes());
                }
                self.push(worklist, pc + 1, st);
            }
            Insn::Jump { cond, off } => {
                let target = pc as i64 + 1 + off as i64;
                if target < 0 || target > self.prog.len() as i64 {
                    return Err(VerifyError::JumpOutOfBounds { pc });
                }
                let target = target as usize;
                match cond {
                    None => self.push_succ(worklist, pc, target, st)?,
                    Some((c, dst, src)) => {
                        let d = self.read_reg(&st, pc, dst)?;
                        let s = self.src_type(&st, pc, src)?;
                        // Null-check refinement for map lookups.
                        let zero_cmp = s.const_i() == Some(0);
                        if let RegType::PtrMapOrNull { map } = d {
                            if zero_cmp && (c == Cond::Eq || c == Cond::Ne) {
                                let (null_pc, ptr_pc) = if c == Cond::Eq {
                                    (target, pc + 1)
                                } else {
                                    (pc + 1, target)
                                };
                                // Both arms of a null test are live: the
                                // optimizer must never fold one away.
                                self.note_arm(pc, true);
                                self.note_arm(pc, false);
                                let mut null_st = st.clone();
                                null_st.regs[dst.index()] = RegType::cnst(0);
                                self.push_succ(worklist, pc, null_pc, null_st)?;
                                let mut ptr_st = st;
                                ptr_st.regs[dst.index()] = RegType::PtrMap {
                                    map,
                                    off: 0,
                                    vmin: 0,
                                    vmax: 0,
                                };
                                self.push_succ(worklist, pc, ptr_pc, ptr_st)?;
                                return Ok(());
                            }
                            return Err(VerifyError::PointerComparison { pc });
                        }
                        let (RegType::Scalar(dr), RegType::Scalar(sr)) = (d, s) else {
                            return Err(VerifyError::PointerComparison { pc });
                        };
                        // Taken arm first, then fall-through (LIFO pops
                        // fall-through first). A `None` refinement means
                        // that arm is statically dead — this is also
                        // what terminates constant-bounded loops.
                        if let Some((rd, rs)) = refine(BranchCond::C(c), dr, sr) {
                            self.note_arm(pc, true);
                            let mut t_st = st.clone();
                            t_st.regs[dst.index()] = RegType::Scalar(rd);
                            if let Src::Reg(sreg) = src {
                                t_st.regs[sreg.index()] = RegType::Scalar(rs);
                            }
                            self.push_succ(worklist, pc, target, t_st)?;
                        } else {
                            self.trace(|| format!("{pc}: branch never taken (dead arm)"));
                        }
                        if let Some((rd, rs)) = refine(negate(c), dr, sr) {
                            self.note_arm(pc, false);
                            let mut f_st = st;
                            f_st.regs[dst.index()] = RegType::Scalar(rd);
                            if let Src::Reg(sreg) = src {
                                f_st.regs[sreg.index()] = RegType::Scalar(rs);
                            }
                            self.push_succ(worklist, pc, pc + 1, f_st)?;
                        } else {
                            self.trace(|| format!("{pc}: branch always taken (dead fall-through)"));
                        }
                    }
                }
            }
            Insn::Call { helper } => {
                self.check_call(&mut st, pc, helper)?;
                self.push(worklist, pc + 1, st);
            }
            Insn::LoadMap { dst, map } => {
                self.check_writable(pc, dst)?;
                if self.maps.def(map).is_none() {
                    return Err(VerifyError::UnknownMap { pc });
                }
                st.regs[dst.index()] = RegType::MapHandle(map);
                self.push(worklist, pc + 1, st);
            }
            Insn::Exit => {
                if !st.regs[0].is_scalar() {
                    return Err(VerifyError::ExitWithoutScalarR0 { pc });
                }
                // Path terminates.
                self.paths_completed += 1;
                self.trace(|| format!("{pc}: exit; r0={}", st.regs[0]));
            }
        }
        Ok(())
    }

    fn alu_result(
        &self,
        pc: usize,
        op: AluOp,
        dst: RegType,
        src: RegType,
    ) -> Result<RegType, VerifyError> {
        use AluOp::*;
        use RegType::*;
        match op {
            Mov => {
                if !src.is_init() {
                    return Err(VerifyError::UninitRead { pc, reg: 255 });
                }
                Ok(src)
            }
            Neg => match dst {
                Scalar(r) => Ok(Scalar(range_alu(Sub, Range::cnst(0), r))),
                Uninit => Err(VerifyError::UninitRead { pc, reg: 255 }),
                _ => Err(VerifyError::PointerArithmetic { pc }),
            },
            Add | Sub => {
                if !dst.is_init() {
                    return Err(VerifyError::UninitRead { pc, reg: 255 });
                }
                match (dst, src) {
                    (PtrStack { .. } | PtrCtx { .. } | PtrMap { .. }, Scalar(s)) => {
                        self.ptr_math(pc, op, dst, s)
                    }
                    (PtrStack { .. } | PtrCtx { .. } | PtrMap { .. }, _)
                    | (PtrMapOrNull { .. } | MapHandle(_), _) => {
                        Err(VerifyError::PointerArithmetic { pc })
                    }
                    (Scalar(a), Scalar(b)) => Ok(Scalar(range_alu(op, a, b))),
                    _ => Err(VerifyError::PointerArithmetic { pc }),
                }
            }
            Div | AluOp::Mod => match (dst, src) {
                (Scalar(a), Scalar(b)) => {
                    if b.const_u() == Some(0) {
                        return Err(VerifyError::DivisionByZero { pc });
                    }
                    Ok(Scalar(range_alu(op, a, b)))
                }
                _ => Err(VerifyError::PointerArithmetic { pc }),
            },
            Mul | And | Or | Xor | Lsh | Rsh | Arsh => match (dst, src) {
                (Scalar(a), Scalar(b)) => Ok(Scalar(range_alu(op, a, b))),
                _ => Err(VerifyError::PointerArithmetic { pc }),
            },
        }
    }

    /// Pointer ± scalar. Constant scalars fold into the base offset;
    /// bounded scalars widen the variable part. All arithmetic is
    /// checked and the resulting span is capped at ±[`MAX_PTR_OFF`], so
    /// adversarial constants (e.g. `i64::MIN`) reject instead of
    /// overflowing.
    fn ptr_math(
        &self,
        pc: usize,
        op: AluOp,
        ptr: RegType,
        s: Range,
    ) -> Result<RegType, VerifyError> {
        let err = VerifyError::PointerArithmetic { pc };
        let (RegType::PtrStack { off, vmin, vmax }
        | RegType::PtrCtx { off, vmin, vmax }
        | RegType::PtrMap {
            off, vmin, vmax, ..
        }) = ptr
        else {
            return Err(err);
        };
        let add = op == AluOp::Add;
        let (off, vmin, vmax) = if let Some(c) = s.const_i() {
            let off = if add {
                off.checked_add(c)
            } else {
                off.checked_sub(c)
            };
            (off.ok_or_else(|| err.clone())?, vmin, vmax)
        } else {
            let (lo, hi) = if add {
                (vmin.checked_add(s.smin), vmax.checked_add(s.smax))
            } else {
                (vmin.checked_sub(s.smax), vmax.checked_sub(s.smin))
            };
            (
                off,
                lo.ok_or_else(|| err.clone())?,
                hi.ok_or_else(|| err.clone())?,
            )
        };
        let lo = off.checked_add(vmin).ok_or_else(|| err.clone())?;
        let hi = off.checked_add(vmax).ok_or_else(|| err.clone())?;
        if lo < -MAX_PTR_OFF || hi > MAX_PTR_OFF {
            return Err(err);
        }
        Ok(match ptr {
            RegType::PtrStack { .. } => RegType::PtrStack { off, vmin, vmax },
            RegType::PtrCtx { .. } => RegType::PtrCtx { off, vmin, vmax },
            RegType::PtrMap { map, .. } => RegType::PtrMap {
                map,
                off,
                vmin,
                vmax,
            },
            _ => unreachable!(),
        })
    }

    fn check_call(&self, st: &mut State, pc: usize, helper: Helper) -> Result<(), VerifyError> {
        use Helper::*;
        let ret = match helper {
            KtimeGetNs | GetCurrentPidTgid => RegType::unknown_scalar(),
            MapLookup => {
                let map = self.arg_map(st, pc, helper, 1, &[MapClass::Keyed])?;
                let ks = self.maps.def(map).unwrap().key_size;
                self.arg_ptr(st, pc, helper, 2, ks, false)?;
                RegType::PtrMapOrNull { map }
            }
            MapUpdate => {
                let map = self.arg_map(st, pc, helper, 1, &[MapClass::Keyed])?;
                let (ks, vs) = {
                    let d = self.maps.def(map).unwrap();
                    (d.key_size, d.value_size)
                };
                self.arg_ptr(st, pc, helper, 2, ks, false)?;
                self.arg_ptr(st, pc, helper, 3, vs, false)?;
                self.arg_scalar(st, pc, helper, 4)?;
                RegType::unknown_scalar()
            }
            MapDelete => {
                let map = self.arg_map(st, pc, helper, 1, &[MapClass::Keyed])?;
                let ks = self.maps.def(map).unwrap().key_size;
                self.arg_ptr(st, pc, helper, 2, ks, false)?;
                RegType::unknown_scalar()
            }
            MapPush => {
                let map = self.arg_map(st, pc, helper, 1, &[MapClass::Stack])?;
                let vs = self.maps.def(map).unwrap().value_size;
                self.arg_ptr(st, pc, helper, 2, vs, false)?;
                RegType::unknown_scalar()
            }
            MapPop => {
                let map = self.arg_map(st, pc, helper, 1, &[MapClass::Stack])?;
                let vs = self.maps.def(map).unwrap().value_size;
                self.arg_ptr(st, pc, helper, 2, vs, true)?;
                RegType::unknown_scalar()
            }
            PerfEventReadBuf => {
                self.arg_scalar(st, pc, helper, 1)?;
                self.arg_ptr(st, pc, helper, 2, 24, true)?;
                RegType::unknown_scalar()
            }
            ReadTaskIo | ReadTcpSock => {
                self.arg_ptr(st, pc, helper, 1, 32, true)?;
                RegType::unknown_scalar()
            }
            PerfEventOutput => {
                self.arg_map(st, pc, helper, 1, &[MapClass::Ring])?;
                // The runtime length is r3; the data pointer must be
                // valid for the largest value r3 can take.
                let len = match st.regs[3] {
                    RegType::Scalar(r) if r.umin >= 1 && r.umax <= MAX_OUTPUT_BYTES as u64 => {
                        r.umax as usize
                    }
                    _ => {
                        return Err(VerifyError::BadHelperArg {
                            pc,
                            helper,
                            arg: 3,
                            expected: "bounded length in 1..=8192",
                        })
                    }
                };
                self.arg_ptr(st, pc, helper, 2, len, false)?;
                RegType::unknown_scalar()
            }
        };
        // Calls clobber the caller-saved registers.
        for r in 1..=5 {
            st.regs[r] = RegType::Uninit;
        }
        st.regs[0] = ret;
        Ok(())
    }

    fn arg_scalar(
        &self,
        st: &State,
        pc: usize,
        helper: Helper,
        arg: u8,
    ) -> Result<(), VerifyError> {
        if st.regs[arg as usize].is_scalar() {
            Ok(())
        } else {
            Err(VerifyError::BadHelperArg {
                pc,
                helper,
                arg,
                expected: "scalar",
            })
        }
    }

    fn arg_map(
        &self,
        st: &State,
        pc: usize,
        helper: Helper,
        arg: u8,
        classes: &[MapClass],
    ) -> Result<MapId, VerifyError> {
        let bad = |expected| VerifyError::BadHelperArg {
            pc,
            helper,
            arg,
            expected,
        };
        match st.regs[arg as usize] {
            RegType::MapHandle(m) => {
                let def = self.maps.def(m).ok_or(VerifyError::UnknownMap { pc })?;
                let class = MapClass::of(def.kind);
                if classes.contains(&class) {
                    Ok(m)
                } else {
                    Err(bad("map of compatible kind"))
                }
            }
            _ => Err(bad("map handle")),
        }
    }

    fn arg_ptr(
        &self,
        st: &mut State,
        pc: usize,
        helper: Helper,
        arg: u8,
        size: usize,
        write: bool,
    ) -> Result<(), VerifyError> {
        let t = st.regs[arg as usize];
        if !t.is_init() {
            return Err(VerifyError::UninitRead { pc, reg: arg });
        }
        self.check_access(st, pc, t, 0, size, write)
            .map_err(|e| match e {
                VerifyError::NotAPointer { .. } => VerifyError::BadHelperArg {
                    pc,
                    helper,
                    arg,
                    expected: "pointer to memory",
                },
                other => other,
            })?;
        if write {
            if let RegType::PtrStack { off, vmin, vmax } = t {
                st.mark_stack_init(off + vmin, (vmax - vmin) as usize + size);
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MapClass {
    Keyed,
    Stack,
    Ring,
}

impl MapClass {
    fn of(kind: MapKind) -> Self {
        match kind {
            MapKind::Hash { .. } | MapKind::Array { .. } => MapClass::Keyed,
            MapKind::Stack { .. } => MapClass::Stack,
            MapKind::PerfEventArray { .. } => MapClass::Ring,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::insn::{Size, R0, R1, R10, R2, R3, R4, R6};
    use crate::maps::MapDef;

    fn maps() -> (MapRegistry, MapId, MapId, MapId) {
        let mut r = MapRegistry::new();
        let h = r.create(MapDef::hash("h", 8, 16, 64));
        let s = r.create(MapDef::stack("s", 8, 8));
        let ring = r.create(MapDef::perf_event_array("ring", 16));
        (r, h, s, ring)
    }

    fn ok(prog: Vec<Insn>, maps: &MapRegistry, ctx: usize) {
        if let Err(e) = verify(&prog, maps, ctx) {
            panic!("expected OK, got {e}\n{}", crate::insn::disassemble(&prog));
        }
    }

    fn rejected(prog: Vec<Insn>, maps: &MapRegistry, ctx: usize) -> VerifyError {
        verify(&prog, maps, ctx).expect_err("expected rejection")
    }

    #[test]
    fn minimal_program_verifies() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 0).exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn empty_program_rejected() {
        let (m, ..) = maps();
        assert_eq!(rejected(vec![], &m, 0), VerifyError::EmptyProgram);
    }

    #[test]
    fn exit_with_uninit_r0_rejected() {
        let (m, ..) = maps();
        assert!(matches!(
            rejected(vec![Insn::Exit], &m, 0),
            VerifyError::ExitWithoutScalarR0 { .. }
        ));
    }

    #[test]
    fn uninit_register_read_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_reg(R0, R6).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::UninitRead { .. }
        ));
    }

    #[test]
    fn unconditional_back_edge_rejected() {
        let (m, ..) = maps();
        let prog = vec![
            Insn::Alu {
                op: AluOp::Mov,
                dst: R0,
                src: Src::Imm(0),
            },
            Insn::Jump {
                cond: None,
                off: -2,
            },
            Insn::Exit,
        ];
        assert!(matches!(
            rejected(prog, &m, 0),
            VerifyError::BackEdge { .. }
        ));
    }

    #[test]
    fn unbounded_data_dependent_loop_rejected() {
        // while (ktime() != 0) {} — the governing register never
        // narrows, so the trip budget runs out.
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.call(Helper::KtimeGetNs);
        b.jump_if_imm(Cond::Ne, R0, 0, top);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::BackEdge { .. }
        ));
    }

    #[test]
    fn bounded_loop_verifies() {
        // for (r6 = 0; r6 < 10; ) r6 += 1 — refinement proves the taken
        // arm dead once r6 reaches 10.
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R6, 0);
        let top = b.label();
        b.bind(top);
        b.alu_imm(AluOp::Add, R6, 1);
        b.jump_if_imm(Cond::Lt, R6, 10, top);
        b.mov_imm(R0, 0).exit();
        let prog = b.resolve().unwrap();
        let s = verify_with_stats(&prog, &m, 0).unwrap();
        assert_eq!(s.paths_completed, 1);
        assert!(s.insns_visited > s.insns, "loop body visited repeatedly");

        // The same loop without the exit condition is rejected.
        let mut b = ProgramBuilder::new();
        b.mov_imm(R6, 0);
        let top = b.label();
        b.bind(top);
        b.alu_imm(AluOp::Add, R6, 1);
        b.jump(top);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::BackEdge { .. }
        ));
    }

    #[test]
    fn loop_exceeding_trip_budget_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R6, 0);
        let top = b.label();
        b.bind(top);
        b.alu_imm(AluOp::Add, R6, 1);
        b.jump_if_imm(Cond::Lt, R6, MAX_LOOP_TRIPS as i64 + 100, top);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::BackEdge { .. }
        ));
    }

    #[test]
    fn fall_off_end_rejected() {
        let (m, ..) = maps();
        let prog = vec![Insn::Alu {
            op: AluOp::Mov,
            dst: R0,
            src: Src::Imm(0),
        }];
        assert!(matches!(
            rejected(prog, &m, 0),
            VerifyError::FellOffEnd { .. }
        ));
    }

    #[test]
    fn stack_write_then_read_ok() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 7);
        b.load(Size::B8, R0, R10, -8);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn uninit_stack_read_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.load(Size::B8, R0, R10, -8);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::UninitStackRead { .. }
        ));
    }

    #[test]
    fn stack_out_of_bounds_rejected() {
        let (m, ..) = maps();
        for off in [-520, 0, 8] {
            let mut b = ProgramBuilder::new();
            b.store_imm(Size::B8, R10, off, 7);
            b.mov_imm(R0, 0).exit();
            assert!(
                matches!(
                    rejected(b.resolve().unwrap(), &m, 0),
                    VerifyError::OutOfBounds {
                        region: "stack",
                        ..
                    }
                ),
                "offset {off} should be rejected"
            );
        }
        // -512 .. -505 is the deepest valid 8-byte slot.
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -512, 7);
        b.mov_imm(R0, 0).exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn ctx_read_ok_write_rejected_oob_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.load(Size::B8, R0, R1, 0);
        b.exit();
        ok(b.resolve().unwrap(), &m, 16);

        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R1, 0, 1);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 16),
            VerifyError::CtxWrite { .. }
        ));

        let mut b = ProgramBuilder::new();
        b.load(Size::B8, R0, R1, 16);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 16),
            VerifyError::OutOfBounds { region: "ctx", .. }
        ));
    }

    fn lookup_prog(check_null: bool) -> (MapRegistry, Vec<Insn>) {
        let (m, h, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 1); // key = 1
        b.load_map(R1, h);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::MapLookup);
        if check_null {
            let miss = b.label();
            b.jump_if_imm(Cond::Eq, R0, 0, miss);
            b.load(Size::B8, R3, R0, 0); // deref value
            b.bind(miss);
        } else {
            b.load(Size::B8, R3, R0, 0);
        }
        b.mov_imm(R0, 0).exit();
        (m, b.resolve().unwrap())
    }

    #[test]
    fn map_lookup_with_null_check_ok() {
        let (m, prog) = lookup_prog(true);
        ok(prog, &m, 0);
    }

    #[test]
    fn map_lookup_without_null_check_rejected() {
        let (m, prog) = lookup_prog(false);
        assert!(matches!(
            verify(&prog, &m, 0),
            Err(VerifyError::PossiblyNullDeref { .. })
        ));
    }

    #[test]
    fn map_value_oob_rejected() {
        let (m, h, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 1);
        b.load_map(R1, h);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::MapLookup);
        let miss = b.label();
        b.jump_if_imm(Cond::Eq, R0, 0, miss);
        b.load(Size::B8, R3, R0, 16); // value_size is 16: off 16 is OOB
        b.bind(miss);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::OutOfBounds {
                region: "map value",
                ..
            }
        ));
    }

    #[test]
    fn pointer_arithmetic_with_unknown_scalar_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.call(Helper::KtimeGetNs); // R0 = unknown scalar
        b.mov_reg(R2, R10);
        b.alu_reg(AluOp::Add, R2, R0); // fp + unknown
        b.store_imm(Size::B8, R2, -8, 1);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::PointerArithmetic { .. }
        ));
    }

    #[test]
    fn branch_refinement_allows_variable_stack_access() {
        // ktime() & guard proves r0 ∈ [0, 7]; fp-16+r0 stays in frame.
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.call(Helper::KtimeGetNs);
        let out = b.label();
        b.jump_if_imm(Cond::Gt, R0, 7, out);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -16);
        b.alu_reg(AluOp::Add, R2, R0);
        b.store_imm(Size::B8, R2, 0, 1);
        b.bind(out);
        b.mov_imm(R0, 0).exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn too_wide_refined_range_still_rejected() {
        // The guard only proves r0 <= 600; fp-16+600+8 overruns fp.
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.call(Helper::KtimeGetNs);
        let out = b.label();
        b.jump_if_imm(Cond::Gt, R0, 600, out);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -16);
        b.alu_reg(AluOp::Add, R2, R0);
        b.store_imm(Size::B8, R2, 0, 1);
        b.bind(out);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::OutOfBounds {
                region: "stack",
                ..
            }
        ));
    }

    #[test]
    fn variable_ctx_read_with_masked_index_ok() {
        // r0 = ktime() & 7 — the tnum alone bounds the index.
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_reg(R6, R1); // ctx survives the call in a callee-saved reg
        b.call(Helper::KtimeGetNs);
        b.alu_imm(AluOp::And, R0, 7);
        b.mov_reg(R2, R6);
        b.alu_reg(AluOp::Add, R2, R0);
        b.load(Size::B1, R0, R2, 0);
        b.exit();
        ok(b.resolve().unwrap(), &m, 8);
    }

    #[test]
    fn jset_refinement_proves_bit_clear() {
        // Fall-through of jset r0, 8 proves bit 3 is 0, so r0 (already
        // masked to bit 3 only) must be exactly 0 and the OOB store in
        // the dead region is never explored.
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.call(Helper::KtimeGetNs);
        b.alu_imm(AluOp::And, R0, 8);
        let t = b.label();
        let end = b.label();
        b.jump_if_imm(Cond::Set, R0, 8, t);
        b.jump_if_imm(Cond::Eq, R0, 0, end);
        b.store_imm(Size::B8, R10, 100, 1); // dead: would be OOB
        b.bind(t);
        b.bind(end);
        b.mov_imm(R0, 0).exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn pointer_add_i64_min_does_not_panic() {
        let (m, ..) = maps();
        for op in [AluOp::Add, AluOp::Sub] {
            let mut b = ProgramBuilder::new();
            b.mov_reg(R2, R10);
            b.alu_imm(op, R2, i64::MIN);
            b.store_imm(Size::B8, R2, 0, 1);
            b.mov_imm(R0, 0).exit();
            assert!(matches!(
                rejected(b.resolve().unwrap(), &m, 0),
                VerifyError::PointerArithmetic { .. }
            ));
        }
    }

    #[test]
    fn adversarial_constant_arithmetic_does_not_panic() {
        // Overflow-prone constant folds must wrap, not panic.
        let (m, ..) = maps();
        for op in [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Neg] {
            let mut b = ProgramBuilder::new();
            b.mov_imm(R0, i64::MIN);
            b.alu_imm(op, R0, i64::MAX);
            b.alu_imm(op, R0, i64::MIN);
            b.exit();
            ok(b.resolve().unwrap(), &m, 0);
        }
    }

    #[test]
    fn pruning_reduces_states_on_diamonds() {
        // A chain of diamonds whose merged states are identical: without
        // pruning 2^k paths, with pruning ~linear.
        let (m, ..) = maps();
        let k = 6;
        let mut b = ProgramBuilder::new();
        for _ in 0..k {
            b.call(Helper::KtimeGetNs);
            let els = b.label();
            let end = b.label();
            b.jump_if_imm(Cond::Eq, R0, 0, els);
            b.store_imm(Size::B8, R10, -8, 1);
            b.jump(end);
            b.bind(els);
            b.store_imm(Size::B8, R10, -8, 2);
            b.bind(end);
        }
        b.mov_imm(R0, 0).exit();
        let prog = b.resolve().unwrap();
        let s = verify_with_stats(&prog, &m, 0).unwrap();
        assert!(s.states_pruned > 0, "expected pruning, got {s:?}");
        assert!(
            s.paths_completed < (1 << k),
            "pruning should collapse the exponential paths, got {s:?}"
        );
    }

    #[test]
    fn pointer_comparison_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.mov_reg(R2, R10);
        b.jump_if_reg(Cond::Eq, R2, R10, l);
        b.bind(l);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::PointerComparison { .. }
        ));
    }

    #[test]
    fn pointer_store_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.store_reg(Size::B8, R10, -8, R10);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::PointerStore { .. }
        ));
    }

    #[test]
    fn write_to_r10_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R10, 0);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::WriteToFramePointer { .. }
        ));
    }

    #[test]
    fn division_by_zero_imm_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 10);
        b.alu_imm(AluOp::Div, R0, 0);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::DivisionByZero { .. }
        ));
    }

    #[test]
    fn helper_clobbers_caller_saved_registers() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R1, 5);
        b.call(Helper::KtimeGetNs);
        b.mov_reg(R2, R1); // R1 was clobbered by the call
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::UninitRead { reg: 1, .. }
        ));
    }

    #[test]
    fn callee_saved_registers_survive_calls() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R6, 5);
        b.call(Helper::KtimeGetNs);
        b.mov_reg(R0, R6);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn helper_wrong_map_class_rejected() {
        let (m, h, ..) = maps();
        // MapPush on a hash map.
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 1);
        b.load_map(R1, h);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::MapPush);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::BadHelperArg { .. }
        ));
    }

    #[test]
    fn perf_event_output_requires_bounded_len() {
        let (m, _, _, ring) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 0);
        b.load_map(R1, ring);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::KtimeGetNs); // clobbers R1..R5!
        b.load_map(R1, ring);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.mov_reg(R3, R0); // unknown scalar length
        b.call(Helper::PerfEventOutput);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::BadHelperArg { arg: 3, .. }
        ));
    }

    #[test]
    fn perf_event_output_ok_with_const_len() {
        let (m, _, _, ring) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -16, 1);
        b.store_imm(Size::B8, R10, -8, 2);
        b.load_map(R1, ring);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -16);
        b.mov_imm(R3, 16);
        b.call(Helper::PerfEventOutput);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn perf_event_output_ok_with_range_bounded_len() {
        // r3 refined into [1, 16]; the data pointer covers 16 bytes.
        let (m, _, _, ring) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -16, 1);
        b.store_imm(Size::B8, R10, -8, 2);
        b.call(Helper::KtimeGetNs);
        b.alu_imm(AluOp::And, R0, 15);
        b.alu_imm(AluOp::Add, R0, 1); // r0 ∈ [1, 16]
        b.load_map(R1, ring);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -16);
        b.mov_reg(R3, R0);
        b.call(Helper::PerfEventOutput);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn map_update_full_signature_ok() {
        let (m, h, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 1); // key
        for i in 0..2 {
            b.store_imm(Size::B8, R10, -24 + i * 8, 0); // 16-byte value
        }
        b.load_map(R1, h);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.mov_reg(R3, R10);
        b.alu_imm(AluOp::Add, R3, -24);
        b.mov_imm(R4, 0);
        b.call(Helper::MapUpdate);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn map_pop_marks_destination_initialized() {
        let (m, _, s, _) = maps();
        let mut b = ProgramBuilder::new();
        b.load_map(R1, s);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::MapPop);
        // Reading the popped value must now be legal.
        b.load(Size::B8, R0, R10, -8);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn unknown_map_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.load_map(R1, MapId(99));
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::UnknownMap { .. }
        ));
    }

    #[test]
    fn verify_stats_count_states_and_paths() {
        let (m, ..) = maps();
        // Straight-line program: one state per insn, one path.
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 0).exit();
        let prog = b.resolve().unwrap();
        let s = verify_with_stats(&prog, &m, 0).unwrap();
        assert_eq!(s.insns, 2);
        assert_eq!(s.states_explored, 2);
        assert_eq!(s.paths_completed, 1);

        // A genuinely two-sided fork (unknown scalar): both arms
        // explored, two exits reached.
        let mut b = ProgramBuilder::new();
        b.call(Helper::KtimeGetNs);
        let l = b.label();
        b.jump_if_imm(Cond::Eq, R0, 0, l);
        b.mov_imm(R0, 7);
        b.bind(l);
        b.exit();
        let prog = b.resolve().unwrap();
        let s = verify_with_stats(&prog, &m, 0).unwrap();
        assert_eq!(s.paths_completed, 2);
        assert!(s.states_explored > s.insns);
        assert!(s.peak_depth >= 2);
    }

    #[test]
    fn statically_dead_branch_not_explored() {
        // jeq on a constant: only one arm is live now.
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 0);
        let l = b.label();
        b.jump_if_imm(Cond::Eq, R0, 0, l);
        b.mov_imm(R0, 1); // dead
        b.bind(l);
        b.exit();
        let prog = b.resolve().unwrap();
        let s = verify_with_stats(&prog, &m, 0).unwrap();
        assert_eq!(s.paths_completed, 1);
    }

    #[test]
    fn verify_with_log_reports_rejection() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.load(Size::B8, R0, R10, -8); // uninit stack read
        b.exit();
        let (res, log) = verify_with_log(&b.resolve().unwrap(), &m, 0);
        assert!(res.is_err());
        assert!(log.contains("verifying 2 insns"), "log was: {log}");
        assert!(log.contains("rejected:"), "log was: {log}");
        assert!(log.contains("ldx"), "log should show insns: {log}");

        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 0).exit();
        let (res, log) = verify_with_log(&b.resolve().unwrap(), &m, 0);
        assert!(res.is_ok());
        assert!(log.contains("accepted"), "log was: {log}");
        assert!(log.contains("stats:"), "log was: {log}");
    }

    #[test]
    fn too_long_program_rejected() {
        let (m, ..) = maps();
        let mut prog = vec![
            Insn::Alu {
                op: AluOp::Mov,
                dst: R0,
                src: Src::Imm(0)
            };
            MAX_INSNS + 1
        ];
        prog.push(Insn::Exit);
        assert!(matches!(
            verify(&prog, &m, 0),
            Err(VerifyError::TooLong { .. })
        ));
    }

    #[test]
    fn const_folding_keeps_lengths_checkable() {
        let (m, _, _, ring) = maps();
        // Length computed via const arithmetic still counts as constant.
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 0);
        b.load_map(R1, ring);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.mov_imm(R3, 4);
        b.alu_imm(AluOp::Mul, R3, 2);
        b.call(Helper::PerfEventOutput);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    // ---- direct unit tests of the abstract domain ----

    #[test]
    fn range_sync_detects_contradiction() {
        let mut r = Range::unknown();
        r.umin = 10;
        r.umax = 5;
        assert_eq!(r.sync(), None);
        let mut r = Range::unknown();
        r.tnum = Tnum::cnst(3);
        r.umin = 4;
        assert_eq!(r.sync(), None);
        // Consistent case: tnum tightens bounds.
        let mut r = Range::unknown();
        r.tnum = Tnum::cnst(9);
        let r = r.sync().unwrap();
        assert_eq!((r.umin, r.umax, r.smin, r.smax), (9, 9, 9, 9));
    }

    #[test]
    fn refine_branches_narrow_both_sides() {
        let d = Range::unknown();
        let s = Range::cnst(15);
        let (d2, _) = refine(BranchCond::C(Cond::Gt), d, s).unwrap();
        assert_eq!(d2.umin, 16);
        let (d3, _) = refine(BranchCond::C(Cond::Le), d, s).unwrap();
        assert_eq!(d3.umax, 15);
        // Contradiction: nothing is unsigned-less-than zero.
        assert!(refine(BranchCond::C(Cond::Lt), d, Range::cnst(0)).is_none());
        // Eq against a constant pins the register.
        let (d4, _) = refine(BranchCond::C(Cond::Eq), d, s).unwrap();
        assert_eq!(d4.const_u(), Some(15));
        // Ne against the only possible value kills the branch.
        assert!(refine(BranchCond::C(Cond::Ne), Range::cnst(4), Range::cnst(4)).is_none());
    }

    #[test]
    fn range_alu_tracks_bounds() {
        let a = Range::cnst(10);
        let b = Range::cnst(4);
        assert_eq!(range_alu(AluOp::Add, a, b).const_u(), Some(14));
        assert_eq!(range_alu(AluOp::Sub, a, b).const_u(), Some(6));
        assert_eq!(range_alu(AluOp::Mul, a, b).const_u(), Some(40));
        assert_eq!(range_alu(AluOp::Div, a, b).const_u(), Some(2));
        assert_eq!(range_alu(AluOp::Mod, a, b).const_u(), Some(2));
        let masked = range_alu(AluOp::And, Range::unknown(), Range::cnst(0xFF));
        assert_eq!(masked.umin, 0);
        assert_eq!(masked.umax, 0xFF);
        let shifted = range_alu(AluOp::Lsh, masked, Range::cnst(4));
        assert_eq!(shifted.umax, 0xFF0);
    }
}
