//! The static verifier.
//!
//! Models the Linux BPF verifier's architecture (paper §5.1): it explores
//! every execution path from the entry point, tracking an abstract type for
//! each register, and rejects the program if *any* path can perform an
//! unsafe operation. Enforced properties:
//!
//! * no back edges — loops must be unrolled at codegen time (the paper's
//!   Codegen does exactly this; bounded at compile time);
//! * a hard instruction-count cap (the kernel's is 1M; "TS's compiled BPF
//!   programs only contain 100s of instructions");
//! * every register is written before it is read;
//! * every memory access is through a typed pointer with statically known
//!   offset, in bounds for its region (512-byte stack, read-only context,
//!   map values of declared size);
//! * stack reads only touch bytes previously written on this path;
//! * map-lookup results must be null-checked before dereference;
//! * helper calls obey typed signatures; calls clobber `R1`–`R5`;
//! * `exit` requires `R0` to hold a scalar;
//! * pointers never leak into arithmetic other than `±constant`, never get
//!   compared (except null checks), and never get stored to memory.

use crate::insn::{AluOp, Cond, Helper, Insn, Reg, Src};
use crate::maps::{MapId, MapKind, MapRegistry};

/// Stack size available to a program, like eBPF.
pub const STACK_SIZE: i64 = 512;
/// Maximum program length (the kernel's modern limit).
pub const MAX_INSNS: usize = 1_000_000;
/// Cap on abstract states explored before giving up.
pub const MAX_STATES: usize = 200_000;
/// Largest record `perf_event_output` may publish.
pub const MAX_OUTPUT_BYTES: i64 = 8192;

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    EmptyProgram,
    TooLong {
        len: usize,
    },
    TooComplex,
    InvalidRegister {
        pc: usize,
    },
    WriteToFramePointer {
        pc: usize,
    },
    UninitRead {
        pc: usize,
        reg: u8,
    },
    BackEdge {
        pc: usize,
    },
    JumpOutOfBounds {
        pc: usize,
    },
    FellOffEnd {
        pc: usize,
    },
    PointerArithmetic {
        pc: usize,
    },
    PointerComparison {
        pc: usize,
    },
    PointerStore {
        pc: usize,
    },
    DivisionByZero {
        pc: usize,
    },
    NotAPointer {
        pc: usize,
    },
    PossiblyNullDeref {
        pc: usize,
    },
    OutOfBounds {
        pc: usize,
        region: &'static str,
        off: i64,
        size: usize,
    },
    UninitStackRead {
        pc: usize,
        off: i64,
    },
    CtxWrite {
        pc: usize,
    },
    UnknownMap {
        pc: usize,
    },
    BadHelperArg {
        pc: usize,
        helper: Helper,
        arg: u8,
        expected: &'static str,
    },
    ExitWithoutScalarR0 {
        pc: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::EmptyProgram => write!(f, "empty program"),
            VerifyError::TooLong { len } => write!(f, "program too long ({len} insns)"),
            VerifyError::TooComplex => write!(f, "verification too complex"),
            VerifyError::InvalidRegister { pc } => write!(f, "invalid register at pc {pc}"),
            VerifyError::WriteToFramePointer { pc } => write!(f, "write to r10 at pc {pc}"),
            VerifyError::UninitRead { pc, reg } => {
                write!(f, "read of uninitialized r{reg} at pc {pc}")
            }
            VerifyError::BackEdge { pc } => write!(f, "back edge at pc {pc} (unbounded loop)"),
            VerifyError::JumpOutOfBounds { pc } => write!(f, "jump out of bounds at pc {pc}"),
            VerifyError::FellOffEnd { pc } => write!(f, "control falls off program end at pc {pc}"),
            VerifyError::PointerArithmetic { pc } => {
                write!(f, "disallowed pointer arithmetic at pc {pc}")
            }
            VerifyError::PointerComparison { pc } => {
                write!(f, "disallowed pointer comparison at pc {pc}")
            }
            VerifyError::PointerStore { pc } => write!(f, "pointer stored to memory at pc {pc}"),
            VerifyError::DivisionByZero { pc } => write!(f, "division by zero at pc {pc}"),
            VerifyError::NotAPointer { pc } => {
                write!(f, "memory access via non-pointer at pc {pc}")
            }
            VerifyError::PossiblyNullDeref { pc } => {
                write!(f, "map value dereferenced without null check at pc {pc}")
            }
            VerifyError::OutOfBounds {
                pc,
                region,
                off,
                size,
            } => {
                write!(
                    f,
                    "{region} access out of bounds at pc {pc} (off {off}, size {size})"
                )
            }
            VerifyError::UninitStackRead { pc, off } => {
                write!(f, "read of uninitialized stack at fp{off:+} (pc {pc})")
            }
            VerifyError::CtxWrite { pc } => write!(f, "store to read-only context at pc {pc}"),
            VerifyError::UnknownMap { pc } => write!(f, "reference to unknown map at pc {pc}"),
            VerifyError::BadHelperArg {
                pc,
                helper,
                arg,
                expected,
            } => write!(
                f,
                "helper {} arg r{arg} at pc {pc}: expected {expected}",
                helper.name()
            ),
            VerifyError::ExitWithoutScalarR0 { pc } => {
                write!(f, "exit with non-scalar r0 at pc {pc}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Abstract register type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegType {
    Uninit,
    Scalar,
    Const(i64),
    PtrStack { off: i64 },
    PtrCtx { off: i64 },
    PtrMap { map: MapId, off: i64 },
    PtrMapOrNull { map: MapId },
    MapHandle(MapId),
}

impl RegType {
    fn is_scalar(self) -> bool {
        matches!(self, RegType::Scalar | RegType::Const(_))
    }

    fn is_init(self) -> bool {
        !matches!(self, RegType::Uninit)
    }
}

/// A per-path abstract machine state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    regs: [RegType; 11],
    /// One bit per stack byte: written on this path.
    stack_init: [u64; 8],
}

impl State {
    fn entry() -> Self {
        let mut regs = [RegType::Uninit; 11];
        regs[1] = RegType::PtrCtx { off: 0 }; // R1 = ctx at entry
        regs[10] = RegType::PtrStack { off: 0 }; // R10 = frame top
        State {
            regs,
            stack_init: [0; 8],
        }
    }

    fn stack_bit(off: i64) -> (usize, u64) {
        // off in [-512, -1]; bit index 0 = fp-512.
        let idx = (off + STACK_SIZE) as usize;
        (idx / 64, 1u64 << (idx % 64))
    }

    fn mark_stack_init(&mut self, off: i64, size: usize) {
        for b in 0..size as i64 {
            let (w, m) = Self::stack_bit(off + b);
            self.stack_init[w] |= m;
        }
    }

    fn stack_is_init(&self, off: i64, size: usize) -> bool {
        (0..size as i64).all(|b| {
            let (w, m) = Self::stack_bit(off + b);
            self.stack_init[w] & m != 0
        })
    }
}

struct Verifier<'a> {
    prog: &'a [Insn],
    maps: &'a MapRegistry,
    ctx_size: usize,
    states_visited: usize,
    paths_completed: usize,
}

/// Statistics from one verifier pass — the "verifier pass stats" leg of
/// the BPF VM's telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Program length in instructions.
    pub insns: usize,
    /// Abstract states popped off the exploration worklist.
    pub states_explored: usize,
    /// Execution paths that reached `exit`.
    pub paths_completed: usize,
}

/// Verify a program against a map registry and a declared context size.
pub fn verify(prog: &[Insn], maps: &MapRegistry, ctx_size: usize) -> Result<(), VerifyError> {
    verify_with_stats(prog, maps, ctx_size).map(|_| ())
}

/// Like [`verify`], but reports how much work the pass did.
pub fn verify_with_stats(
    prog: &[Insn],
    maps: &MapRegistry,
    ctx_size: usize,
) -> Result<VerifyStats, VerifyError> {
    if prog.is_empty() {
        return Err(VerifyError::EmptyProgram);
    }
    if prog.len() > MAX_INSNS {
        return Err(VerifyError::TooLong { len: prog.len() });
    }
    let mut v = Verifier {
        prog,
        maps,
        ctx_size,
        states_visited: 0,
        paths_completed: 0,
    };
    let mut worklist = vec![(0usize, State::entry())];
    while let Some((pc, state)) = worklist.pop() {
        v.states_visited += 1;
        if v.states_visited > MAX_STATES {
            return Err(VerifyError::TooComplex);
        }
        v.step(pc, state, &mut worklist)?;
    }
    Ok(VerifyStats {
        insns: prog.len(),
        states_explored: v.states_visited,
        paths_completed: v.paths_completed,
    })
}

impl<'a> Verifier<'a> {
    fn read_reg(&self, st: &State, pc: usize, r: Reg) -> Result<RegType, VerifyError> {
        if !r.is_valid() {
            return Err(VerifyError::InvalidRegister { pc });
        }
        let t = st.regs[r.index()];
        if !t.is_init() {
            return Err(VerifyError::UninitRead { pc, reg: r.0 });
        }
        Ok(t)
    }

    fn src_type(&self, st: &State, pc: usize, src: Src) -> Result<RegType, VerifyError> {
        match src {
            Src::Imm(i) => Ok(RegType::Const(i)),
            Src::Reg(r) => self.read_reg(st, pc, r),
        }
    }

    fn check_writable(&self, pc: usize, r: Reg) -> Result<(), VerifyError> {
        if !r.is_valid() {
            return Err(VerifyError::InvalidRegister { pc });
        }
        if !r.is_writable() {
            return Err(VerifyError::WriteToFramePointer { pc });
        }
        Ok(())
    }

    /// Check a pointer access and, for stack reads, initialization.
    fn check_access(
        &self,
        st: &State,
        pc: usize,
        base: RegType,
        off: i32,
        size: usize,
        write: bool,
    ) -> Result<RegType, VerifyError> {
        match base {
            RegType::PtrStack { off: p } => {
                let a = p + off as i64;
                if a < -STACK_SIZE || a + size as i64 > 0 {
                    return Err(VerifyError::OutOfBounds {
                        pc,
                        region: "stack",
                        off: a,
                        size,
                    });
                }
                if !write && !st.stack_is_init(a, size) {
                    return Err(VerifyError::UninitStackRead { pc, off: a });
                }
                Ok(base)
            }
            RegType::PtrCtx { off: p } => {
                if write {
                    return Err(VerifyError::CtxWrite { pc });
                }
                let a = p + off as i64;
                if a < 0 || a + size as i64 > self.ctx_size as i64 {
                    return Err(VerifyError::OutOfBounds {
                        pc,
                        region: "ctx",
                        off: a,
                        size,
                    });
                }
                Ok(base)
            }
            RegType::PtrMap { map, off: p } => {
                let vs = self
                    .maps
                    .def(map)
                    .ok_or(VerifyError::UnknownMap { pc })?
                    .value_size as i64;
                let a = p + off as i64;
                if a < 0 || a + size as i64 > vs {
                    return Err(VerifyError::OutOfBounds {
                        pc,
                        region: "map value",
                        off: a,
                        size,
                    });
                }
                Ok(base)
            }
            RegType::PtrMapOrNull { .. } => Err(VerifyError::PossiblyNullDeref { pc }),
            _ => Err(VerifyError::NotAPointer { pc }),
        }
    }

    fn step(
        &mut self,
        pc: usize,
        mut st: State,
        worklist: &mut Vec<(usize, State)>,
    ) -> Result<(), VerifyError> {
        if pc >= self.prog.len() {
            return Err(VerifyError::FellOffEnd { pc });
        }
        match self.prog[pc] {
            Insn::Alu { op, dst, src } => {
                self.check_writable(pc, dst)?;
                let d = st.regs[dst.index()];
                let s = self.src_type(&st, pc, src)?;
                let result = self.alu_result(pc, op, d, s)?;
                st.regs[dst.index()] = result;
                worklist.push((pc + 1, st));
            }
            Insn::Load {
                size,
                dst,
                base,
                off,
            } => {
                self.check_writable(pc, dst)?;
                let b = self.read_reg(&st, pc, base)?;
                self.check_access(&st, pc, b, off, size.bytes(), false)?;
                st.regs[dst.index()] = RegType::Scalar;
                worklist.push((pc + 1, st));
            }
            Insn::Store {
                size,
                base,
                off,
                src,
            } => {
                let b = self.read_reg(&st, pc, base)?;
                let s = self.src_type(&st, pc, src)?;
                if !s.is_scalar() {
                    return Err(VerifyError::PointerStore { pc });
                }
                self.check_access(&st, pc, b, off, size.bytes(), true)?;
                if let RegType::PtrStack { off: p } = b {
                    st.mark_stack_init(p + off as i64, size.bytes());
                }
                worklist.push((pc + 1, st));
            }
            Insn::Jump { cond, off } => {
                if off < 0 {
                    return Err(VerifyError::BackEdge { pc });
                }
                let target = pc + 1 + off as usize;
                if target > self.prog.len() {
                    return Err(VerifyError::JumpOutOfBounds { pc });
                }
                match cond {
                    None => worklist.push((target, st)),
                    Some((c, dst, src)) => {
                        let d = self.read_reg(&st, pc, dst)?;
                        let s = self.src_type(&st, pc, src)?;
                        // Null-check refinement for map lookups.
                        let zero_cmp = matches!(s, RegType::Const(0));
                        if let RegType::PtrMapOrNull { map } = d {
                            if zero_cmp && (c == Cond::Eq || c == Cond::Ne) {
                                let (null_pc, ptr_pc) = if c == Cond::Eq {
                                    (target, pc + 1)
                                } else {
                                    (pc + 1, target)
                                };
                                let mut null_st = st.clone();
                                null_st.regs[dst.index()] = RegType::Const(0);
                                worklist.push((null_pc, null_st));
                                let mut ptr_st = st;
                                ptr_st.regs[dst.index()] = RegType::PtrMap { map, off: 0 };
                                worklist.push((ptr_pc, ptr_st));
                                return Ok(());
                            }
                            return Err(VerifyError::PointerComparison { pc });
                        }
                        if !d.is_scalar() || !s.is_scalar() {
                            return Err(VerifyError::PointerComparison { pc });
                        }
                        // Statically decidable branches still explore both
                        // sides; harmless over-approximation.
                        worklist.push((target, st.clone()));
                        worklist.push((pc + 1, st));
                    }
                }
            }
            Insn::Call { helper } => {
                self.check_call(&mut st, pc, helper)?;
                worklist.push((pc + 1, st));
            }
            Insn::LoadMap { dst, map } => {
                self.check_writable(pc, dst)?;
                if self.maps.def(map).is_none() {
                    return Err(VerifyError::UnknownMap { pc });
                }
                st.regs[dst.index()] = RegType::MapHandle(map);
                worklist.push((pc + 1, st));
            }
            Insn::Exit => {
                if !st.regs[0].is_scalar() {
                    return Err(VerifyError::ExitWithoutScalarR0 { pc });
                }
                // Path terminates.
                self.paths_completed += 1;
            }
        }
        Ok(())
    }

    fn alu_result(
        &self,
        pc: usize,
        op: AluOp,
        dst: RegType,
        src: RegType,
    ) -> Result<RegType, VerifyError> {
        use AluOp::*;
        use RegType::*;
        match op {
            Mov => {
                if !src.is_init() {
                    return Err(VerifyError::UninitRead { pc, reg: 255 });
                }
                Ok(src)
            }
            Neg => match dst {
                Const(c) => Ok(Const(c.wrapping_neg())),
                Scalar => Ok(Scalar),
                Uninit => Err(VerifyError::UninitRead { pc, reg: 255 }),
                _ => Err(VerifyError::PointerArithmetic { pc }),
            },
            Add | Sub => {
                if !dst.is_init() {
                    return Err(VerifyError::UninitRead { pc, reg: 255 });
                }
                match (dst, src) {
                    (PtrStack { off }, Const(c)) => Ok(PtrStack {
                        off: apply_off(pc, op, off, c)?,
                    }),
                    (PtrCtx { off }, Const(c)) => Ok(PtrCtx {
                        off: apply_off(pc, op, off, c)?,
                    }),
                    (PtrMap { map, off }, Const(c)) => Ok(PtrMap {
                        map,
                        off: apply_off(pc, op, off, c)?,
                    }),
                    (PtrStack { .. } | PtrCtx { .. } | PtrMap { .. }, _) => {
                        Err(VerifyError::PointerArithmetic { pc })
                    }
                    (PtrMapOrNull { .. } | MapHandle(_), _) => {
                        Err(VerifyError::PointerArithmetic { pc })
                    }
                    (Const(a), Const(b)) => Ok(Const(if op == Add {
                        a.wrapping_add(b)
                    } else {
                        a.wrapping_sub(b)
                    })),
                    (d, s) if d.is_scalar() && s.is_scalar() => Ok(Scalar),
                    _ => Err(VerifyError::PointerArithmetic { pc }),
                }
            }
            Div | AluOp::Mod => {
                if !dst.is_scalar() || !src.is_scalar() {
                    return Err(VerifyError::PointerArithmetic { pc });
                }
                if src == Const(0) {
                    return Err(VerifyError::DivisionByZero { pc });
                }
                match (dst, src) {
                    (Const(a), Const(b)) => Ok(Const(if op == Div {
                        (a as u64).checked_div(b as u64).unwrap_or(0) as i64
                    } else {
                        (a as u64).checked_rem(b as u64).unwrap_or(0) as i64
                    })),
                    _ => Ok(Scalar),
                }
            }
            Mul | And | Or | Xor | Lsh | Rsh | Arsh => {
                if !dst.is_scalar() || !src.is_scalar() {
                    return Err(VerifyError::PointerArithmetic { pc });
                }
                match (dst, src) {
                    (Const(a), Const(b)) => Ok(Const(fold(op, a, b))),
                    _ => Ok(Scalar),
                }
            }
        }
    }

    fn check_call(&self, st: &mut State, pc: usize, helper: Helper) -> Result<(), VerifyError> {
        use Helper::*;
        let ret = match helper {
            KtimeGetNs | GetCurrentPidTgid => RegType::Scalar,
            MapLookup => {
                let map = self.arg_map(st, pc, helper, 1, &[MapClass::Keyed])?;
                let ks = self.maps.def(map).unwrap().key_size;
                self.arg_ptr(st, pc, helper, 2, ks, false)?;
                RegType::PtrMapOrNull { map }
            }
            MapUpdate => {
                let map = self.arg_map(st, pc, helper, 1, &[MapClass::Keyed])?;
                let (ks, vs) = {
                    let d = self.maps.def(map).unwrap();
                    (d.key_size, d.value_size)
                };
                self.arg_ptr(st, pc, helper, 2, ks, false)?;
                self.arg_ptr(st, pc, helper, 3, vs, false)?;
                self.arg_scalar(st, pc, helper, 4)?;
                RegType::Scalar
            }
            MapDelete => {
                let map = self.arg_map(st, pc, helper, 1, &[MapClass::Keyed])?;
                let ks = self.maps.def(map).unwrap().key_size;
                self.arg_ptr(st, pc, helper, 2, ks, false)?;
                RegType::Scalar
            }
            MapPush => {
                let map = self.arg_map(st, pc, helper, 1, &[MapClass::Stack])?;
                let vs = self.maps.def(map).unwrap().value_size;
                self.arg_ptr(st, pc, helper, 2, vs, false)?;
                RegType::Scalar
            }
            MapPop => {
                let map = self.arg_map(st, pc, helper, 1, &[MapClass::Stack])?;
                let vs = self.maps.def(map).unwrap().value_size;
                self.arg_ptr(st, pc, helper, 2, vs, true)?;
                RegType::Scalar
            }
            PerfEventReadBuf => {
                self.arg_scalar(st, pc, helper, 1)?;
                self.arg_ptr(st, pc, helper, 2, 24, true)?;
                RegType::Scalar
            }
            ReadTaskIo | ReadTcpSock => {
                self.arg_ptr(st, pc, helper, 1, 32, true)?;
                RegType::Scalar
            }
            PerfEventOutput => {
                self.arg_map(st, pc, helper, 1, &[MapClass::Ring])?;
                let len = match st.regs[3] {
                    RegType::Const(l) if l > 0 && l <= MAX_OUTPUT_BYTES => l as usize,
                    _ => {
                        return Err(VerifyError::BadHelperArg {
                            pc,
                            helper,
                            arg: 3,
                            expected: "constant length in 1..=8192",
                        })
                    }
                };
                self.arg_ptr(st, pc, helper, 2, len, false)?;
                RegType::Scalar
            }
        };
        // Calls clobber the caller-saved registers.
        for r in 1..=5 {
            st.regs[r] = RegType::Uninit;
        }
        st.regs[0] = ret;
        Ok(())
    }

    fn arg_scalar(
        &self,
        st: &State,
        pc: usize,
        helper: Helper,
        arg: u8,
    ) -> Result<(), VerifyError> {
        if st.regs[arg as usize].is_scalar() {
            Ok(())
        } else {
            Err(VerifyError::BadHelperArg {
                pc,
                helper,
                arg,
                expected: "scalar",
            })
        }
    }

    fn arg_map(
        &self,
        st: &State,
        pc: usize,
        helper: Helper,
        arg: u8,
        classes: &[MapClass],
    ) -> Result<MapId, VerifyError> {
        let bad = |expected| VerifyError::BadHelperArg {
            pc,
            helper,
            arg,
            expected,
        };
        match st.regs[arg as usize] {
            RegType::MapHandle(m) => {
                let def = self.maps.def(m).ok_or(VerifyError::UnknownMap { pc })?;
                let class = MapClass::of(def.kind);
                if classes.contains(&class) {
                    Ok(m)
                } else {
                    Err(bad("map of compatible kind"))
                }
            }
            _ => Err(bad("map handle")),
        }
    }

    fn arg_ptr(
        &self,
        st: &mut State,
        pc: usize,
        helper: Helper,
        arg: u8,
        size: usize,
        write: bool,
    ) -> Result<(), VerifyError> {
        let t = st.regs[arg as usize];
        if !t.is_init() {
            return Err(VerifyError::UninitRead { pc, reg: arg });
        }
        self.check_access(st, pc, t, 0, size, write)
            .map_err(|e| match e {
                VerifyError::NotAPointer { .. } => VerifyError::BadHelperArg {
                    pc,
                    helper,
                    arg,
                    expected: "pointer to memory",
                },
                other => other,
            })?;
        if write {
            if let RegType::PtrStack { off } = t {
                st.mark_stack_init(off, size);
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MapClass {
    Keyed,
    Stack,
    Ring,
}

impl MapClass {
    fn of(kind: MapKind) -> Self {
        match kind {
            MapKind::Hash { .. } | MapKind::Array { .. } => MapClass::Keyed,
            MapKind::Stack { .. } => MapClass::Stack,
            MapKind::PerfEventArray { .. } => MapClass::Ring,
        }
    }
}

fn apply_off(pc: usize, op: AluOp, off: i64, c: i64) -> Result<i64, VerifyError> {
    let next = if op == AluOp::Add {
        off.wrapping_add(c)
    } else {
        off.wrapping_sub(c)
    };
    // Keep offsets sane; real verifier bounds these too.
    if next.abs() > 1 << 29 {
        Err(VerifyError::PointerArithmetic { pc })
    } else {
        Ok(next)
    }
}

fn fold(op: AluOp, a: i64, b: i64) -> i64 {
    match op {
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Lsh => ((a as u64) << (b as u64 & 63)) as i64,
        AluOp::Rsh => ((a as u64) >> (b as u64 & 63)) as i64,
        AluOp::Arsh => a >> (b as u64 & 63),
        _ => unreachable!("fold called for non-foldable op"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::insn::{Size, R0, R1, R10, R2, R3, R4, R6};
    use crate::maps::MapDef;

    fn maps() -> (MapRegistry, MapId, MapId, MapId) {
        let mut r = MapRegistry::new();
        let h = r.create(MapDef::hash("h", 8, 16, 64));
        let s = r.create(MapDef::stack("s", 8, 8));
        let ring = r.create(MapDef::perf_event_array("ring", 16));
        (r, h, s, ring)
    }

    fn ok(prog: Vec<Insn>, maps: &MapRegistry, ctx: usize) {
        if let Err(e) = verify(&prog, maps, ctx) {
            panic!("expected OK, got {e}\n{}", crate::insn::disassemble(&prog));
        }
    }

    fn rejected(prog: Vec<Insn>, maps: &MapRegistry, ctx: usize) -> VerifyError {
        verify(&prog, maps, ctx).expect_err("expected rejection")
    }

    #[test]
    fn minimal_program_verifies() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 0).exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn empty_program_rejected() {
        let (m, ..) = maps();
        assert_eq!(rejected(vec![], &m, 0), VerifyError::EmptyProgram);
    }

    #[test]
    fn exit_with_uninit_r0_rejected() {
        let (m, ..) = maps();
        assert!(matches!(
            rejected(vec![Insn::Exit], &m, 0),
            VerifyError::ExitWithoutScalarR0 { .. }
        ));
    }

    #[test]
    fn uninit_register_read_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_reg(R0, R6).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::UninitRead { .. }
        ));
    }

    #[test]
    fn back_edge_rejected() {
        let (m, ..) = maps();
        let prog = vec![
            Insn::Alu {
                op: AluOp::Mov,
                dst: R0,
                src: Src::Imm(0),
            },
            Insn::Jump {
                cond: None,
                off: -2,
            },
            Insn::Exit,
        ];
        assert!(matches!(
            rejected(prog, &m, 0),
            VerifyError::BackEdge { .. }
        ));
    }

    #[test]
    fn fall_off_end_rejected() {
        let (m, ..) = maps();
        let prog = vec![Insn::Alu {
            op: AluOp::Mov,
            dst: R0,
            src: Src::Imm(0),
        }];
        assert!(matches!(
            rejected(prog, &m, 0),
            VerifyError::FellOffEnd { .. }
        ));
    }

    #[test]
    fn stack_write_then_read_ok() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 7);
        b.load(Size::B8, R0, R10, -8);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn uninit_stack_read_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.load(Size::B8, R0, R10, -8);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::UninitStackRead { .. }
        ));
    }

    #[test]
    fn stack_out_of_bounds_rejected() {
        let (m, ..) = maps();
        for off in [-520, 0, 8] {
            let mut b = ProgramBuilder::new();
            b.store_imm(Size::B8, R10, off, 7);
            b.mov_imm(R0, 0).exit();
            assert!(
                matches!(
                    rejected(b.resolve().unwrap(), &m, 0),
                    VerifyError::OutOfBounds {
                        region: "stack",
                        ..
                    }
                ),
                "offset {off} should be rejected"
            );
        }
        // -512 .. -505 is the deepest valid 8-byte slot.
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -512, 7);
        b.mov_imm(R0, 0).exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn ctx_read_ok_write_rejected_oob_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.load(Size::B8, R0, R1, 0);
        b.exit();
        ok(b.resolve().unwrap(), &m, 16);

        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R1, 0, 1);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 16),
            VerifyError::CtxWrite { .. }
        ));

        let mut b = ProgramBuilder::new();
        b.load(Size::B8, R0, R1, 16);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 16),
            VerifyError::OutOfBounds { region: "ctx", .. }
        ));
    }

    fn lookup_prog(check_null: bool) -> (MapRegistry, Vec<Insn>) {
        let (m, h, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 1); // key = 1
        b.load_map(R1, h);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::MapLookup);
        if check_null {
            let miss = b.label();
            b.jump_if_imm(Cond::Eq, R0, 0, miss);
            b.load(Size::B8, R3, R0, 0); // deref value
            b.bind(miss);
        } else {
            b.load(Size::B8, R3, R0, 0);
        }
        b.mov_imm(R0, 0).exit();
        (m, b.resolve().unwrap())
    }

    #[test]
    fn map_lookup_with_null_check_ok() {
        let (m, prog) = lookup_prog(true);
        ok(prog, &m, 0);
    }

    #[test]
    fn map_lookup_without_null_check_rejected() {
        let (m, prog) = lookup_prog(false);
        assert!(matches!(
            verify(&prog, &m, 0),
            Err(VerifyError::PossiblyNullDeref { .. })
        ));
    }

    #[test]
    fn map_value_oob_rejected() {
        let (m, h, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 1);
        b.load_map(R1, h);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::MapLookup);
        let miss = b.label();
        b.jump_if_imm(Cond::Eq, R0, 0, miss);
        b.load(Size::B8, R3, R0, 16); // value_size is 16: off 16 is OOB
        b.bind(miss);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::OutOfBounds {
                region: "map value",
                ..
            }
        ));
    }

    #[test]
    fn pointer_arithmetic_with_unknown_scalar_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.call(Helper::KtimeGetNs); // R0 = unknown scalar
        b.mov_reg(R2, R10);
        b.alu_reg(AluOp::Add, R2, R0); // fp + unknown
        b.store_imm(Size::B8, R2, -8, 1);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::PointerArithmetic { .. }
        ));
    }

    #[test]
    fn pointer_comparison_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.mov_reg(R2, R10);
        b.jump_if_reg(Cond::Eq, R2, R10, l);
        b.bind(l);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::PointerComparison { .. }
        ));
    }

    #[test]
    fn pointer_store_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.store_reg(Size::B8, R10, -8, R10);
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::PointerStore { .. }
        ));
    }

    #[test]
    fn write_to_r10_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R10, 0);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::WriteToFramePointer { .. }
        ));
    }

    #[test]
    fn division_by_zero_imm_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 10);
        b.alu_imm(AluOp::Div, R0, 0);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::DivisionByZero { .. }
        ));
    }

    #[test]
    fn helper_clobbers_caller_saved_registers() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R1, 5);
        b.call(Helper::KtimeGetNs);
        b.mov_reg(R2, R1); // R1 was clobbered by the call
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::UninitRead { reg: 1, .. }
        ));
    }

    #[test]
    fn callee_saved_registers_survive_calls() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R6, 5);
        b.call(Helper::KtimeGetNs);
        b.mov_reg(R0, R6);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn helper_wrong_map_class_rejected() {
        let (m, h, ..) = maps();
        // MapPush on a hash map.
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 1);
        b.load_map(R1, h);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::MapPush);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::BadHelperArg { .. }
        ));
    }

    #[test]
    fn perf_event_output_requires_const_len() {
        let (m, _, _, ring) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 0);
        b.load_map(R1, ring);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::KtimeGetNs); // clobbers R1..R5!
        b.load_map(R1, ring);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.mov_reg(R3, R0); // unknown scalar length
        b.call(Helper::PerfEventOutput);
        b.exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::BadHelperArg { arg: 3, .. }
        ));
    }

    #[test]
    fn perf_event_output_ok_with_const_len() {
        let (m, _, _, ring) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -16, 1);
        b.store_imm(Size::B8, R10, -8, 2);
        b.load_map(R1, ring);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -16);
        b.mov_imm(R3, 16);
        b.call(Helper::PerfEventOutput);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn map_update_full_signature_ok() {
        let (m, h, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 1); // key
        for i in 0..2 {
            b.store_imm(Size::B8, R10, -24 + i * 8, 0); // 16-byte value
        }
        b.load_map(R1, h);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.mov_reg(R3, R10);
        b.alu_imm(AluOp::Add, R3, -24);
        b.mov_imm(R4, 0);
        b.call(Helper::MapUpdate);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn map_pop_marks_destination_initialized() {
        let (m, _, s, _) = maps();
        let mut b = ProgramBuilder::new();
        b.load_map(R1, s);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::MapPop);
        // Reading the popped value must now be legal.
        b.load(Size::B8, R0, R10, -8);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }

    #[test]
    fn unknown_map_rejected() {
        let (m, ..) = maps();
        let mut b = ProgramBuilder::new();
        b.load_map(R1, MapId(99));
        b.mov_imm(R0, 0).exit();
        assert!(matches!(
            rejected(b.resolve().unwrap(), &m, 0),
            VerifyError::UnknownMap { .. }
        ));
    }

    #[test]
    fn verify_stats_count_states_and_paths() {
        let (m, ..) = maps();
        // Straight-line program: one state per insn, one path.
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 0).exit();
        let prog = b.resolve().unwrap();
        let s = verify_with_stats(&prog, &m, 0).unwrap();
        assert_eq!(s.insns, 2);
        assert_eq!(s.states_explored, 2);
        assert_eq!(s.paths_completed, 1);

        // One conditional fork: both sides explored, two exits reached.
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 0);
        let l = b.label();
        b.jump_if_imm(Cond::Eq, R0, 0, l);
        b.bind(l);
        b.exit();
        let prog = b.resolve().unwrap();
        let s = verify_with_stats(&prog, &m, 0).unwrap();
        assert_eq!(s.paths_completed, 2);
        assert!(s.states_explored > s.insns);
    }

    #[test]
    fn too_long_program_rejected() {
        let (m, ..) = maps();
        let mut prog = vec![
            Insn::Alu {
                op: AluOp::Mov,
                dst: R0,
                src: Src::Imm(0)
            };
            MAX_INSNS + 1
        ];
        prog.push(Insn::Exit);
        assert!(matches!(
            verify(&prog, &m, 0),
            Err(VerifyError::TooLong { .. })
        ));
    }

    #[test]
    fn const_folding_keeps_lengths_checkable() {
        let (m, _, _, ring) = maps();
        // Length computed via const arithmetic still counts as constant.
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 0);
        b.load_map(R1, ring);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.mov_imm(R3, 4);
        b.alu_imm(AluOp::Mul, R3, 2);
        b.call(Helper::PerfEventOutput);
        b.exit();
        ok(b.resolve().unwrap(), &m, 0);
    }
}
