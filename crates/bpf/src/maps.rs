//! BPF maps: the only mutable state a BPF program may touch.
//!
//! TScout's Collector uses maps for all intermediate storage (paper §3.2):
//! a hash map keyed by thread id holds the BEGIN snapshot and the END
//! deltas, a stack map handles recursive operators (§5.2), and a
//! perf-event array ships finished samples to the Processor. The perf
//! buffer is bounded and *overwrites* when full — the Processor may drop
//! data without correctness problems, which is how TScout avoids back
//! pressure on the DBMS (§3).
//!
//! Hash maps use `BTreeMap` internally so iteration order — and therefore
//! every simulation — is deterministic.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};

/// How many overwritten ring records are retained for the collector's
/// loss-attribution telemetry. The collector drains this after every
/// program run, so the cap only matters for raw `MapRegistry` users who
/// never look; beyond it, evicted payloads are discarded (the count in
/// `dropped` stays exact either way).
pub const EVICTED_KEEP: usize = 4096;

/// Identifier of a created map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MapId(pub u32);

/// Map flavors, mirroring the BPF map types TScout relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// Keyed storage; at most `max_entries` live keys.
    Hash { max_entries: usize },
    /// Fixed-size array; keys are 4-byte little-endian indices.
    Array { entries: usize },
    /// LIFO stack of values; at most `max_entries` deep.
    Stack { max_entries: usize },
    /// Bounded ring buffer to user space; overwrites oldest when full.
    PerfEventArray { capacity: usize },
}

/// A map definition supplied at creation time.
#[derive(Debug, Clone)]
pub struct MapDef {
    pub name: String,
    pub kind: MapKind,
    pub key_size: usize,
    pub value_size: usize,
}

impl MapDef {
    pub fn hash(name: &str, key_size: usize, value_size: usize, max_entries: usize) -> Self {
        MapDef {
            name: name.into(),
            kind: MapKind::Hash { max_entries },
            key_size,
            value_size,
        }
    }

    pub fn array(name: &str, value_size: usize, entries: usize) -> Self {
        MapDef {
            name: name.into(),
            kind: MapKind::Array { entries },
            key_size: 4,
            value_size,
        }
    }

    pub fn stack(name: &str, value_size: usize, max_entries: usize) -> Self {
        MapDef {
            name: name.into(),
            kind: MapKind::Stack { max_entries },
            key_size: 0,
            value_size,
        }
    }

    pub fn perf_event_array(name: &str, capacity: usize) -> Self {
        MapDef {
            name: name.into(),
            kind: MapKind::PerfEventArray { capacity },
            key_size: 0,
            value_size: 0,
        }
    }
}

#[derive(Debug)]
enum Storage {
    Hash(BTreeMap<Vec<u8>, Vec<u8>>),
    Array(Vec<Vec<u8>>),
    Stack(Vec<Vec<u8>>),
    Ring {
        buf: VecDeque<Vec<u8>>,
        dropped: u64,
        /// Records ever published (drained + live + dropped).
        produced: u64,
        /// Payload bytes ever published.
        bytes: u64,
        /// Occupancy high-water mark.
        hwm: usize,
        /// Recently overwritten records, kept (bounded) so the collector
        /// can attribute losses to a subsystem/OU by decoding headers.
        evicted: VecDeque<Vec<u8>>,
    },
}

/// Point-in-time statistics for one perf ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    pub produced: u64,
    pub dropped: u64,
    pub bytes: u64,
    pub hwm: usize,
    pub len: usize,
    pub capacity: usize,
}

/// Registry-wide operation counters — the "map ops" half of the BPF VM's
/// telemetry. Plain integers here; the telemetry crate reads them out at
/// export time so `tscout-bpf` itself stays dependency-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapOpStats {
    pub lookups: u64,
    pub updates: u64,
    pub deletes: u64,
    pub pushes: u64,
    pub pops: u64,
    pub ring_pushes: u64,
    pub ring_drained: u64,
}

/// One live map.
#[derive(Debug)]
pub struct MapInstance {
    pub def: MapDef,
    storage: Storage,
}

/// Errors surfaced to BPF as negative return codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// `-E2BIG`: the map is full.
    Full,
    /// `-ENOENT`: no such element.
    NotFound,
    /// `-EINVAL`: wrong key/value size or wrong map kind for the operation.
    Invalid,
}

impl MapError {
    /// The errno-style value returned in `R0`.
    pub fn errno(self) -> i64 {
        match self {
            MapError::Full => -7,
            MapError::NotFound => -2,
            MapError::Invalid => -22,
        }
    }
}

/// All maps created through a loader.
#[derive(Debug, Default)]
pub struct MapRegistry {
    maps: Vec<MapInstance>,
    /// `Cell` because `lookup` takes `&self`.
    lookups: Cell<u64>,
    ops: MapOpStats,
}

impl MapRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn create(&mut self, def: MapDef) -> MapId {
        let storage = match def.kind {
            MapKind::Hash { .. } => Storage::Hash(BTreeMap::new()),
            MapKind::Array { entries } => Storage::Array(vec![vec![0; def.value_size]; entries]),
            MapKind::Stack { .. } => Storage::Stack(Vec::new()),
            MapKind::PerfEventArray { .. } => Storage::Ring {
                buf: VecDeque::new(),
                dropped: 0,
                produced: 0,
                bytes: 0,
                hwm: 0,
                evicted: VecDeque::new(),
            },
        };
        let id = MapId(self.maps.len() as u32);
        self.maps.push(MapInstance { def, storage });
        id
    }

    pub fn def(&self, id: MapId) -> Option<&MapDef> {
        self.maps.get(id.0 as usize).map(|m| &m.def)
    }

    pub fn len(&self) -> usize {
        self.maps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    fn map(&self, id: MapId) -> &MapInstance {
        &self.maps[id.0 as usize]
    }

    fn map_mut(&mut self, id: MapId) -> &mut MapInstance {
        &mut self.maps[id.0 as usize]
    }

    // ------------------------------------------------------------------
    // Hash / array element access
    // ------------------------------------------------------------------

    /// Look up a value. For arrays the key is a 4-byte LE index.
    pub fn lookup(&self, id: MapId, key: &[u8]) -> Option<&[u8]> {
        self.lookups.set(self.lookups.get() + 1);
        let m = self.map(id);
        match &m.storage {
            Storage::Hash(h) => h.get(key).map(Vec::as_slice),
            Storage::Array(a) => {
                let idx = array_index(key)?;
                a.get(idx).map(Vec::as_slice)
            }
            _ => None,
        }
    }

    /// Mutable view of a stored value (backs BPF's in-place value pointers).
    pub fn lookup_mut(&mut self, id: MapId, key: &[u8]) -> Option<&mut [u8]> {
        self.lookups.set(self.lookups.get() + 1);
        let m = self.map_mut(id);
        match &mut m.storage {
            Storage::Hash(h) => h.get_mut(key).map(Vec::as_mut_slice),
            Storage::Array(a) => {
                let idx = array_index(key)?;
                a.get_mut(idx).map(Vec::as_mut_slice)
            }
            _ => None,
        }
    }

    /// Insert or overwrite.
    pub fn update(&mut self, id: MapId, key: &[u8], value: &[u8]) -> Result<(), MapError> {
        self.ops.updates += 1;
        let m = self.map_mut(id);
        if key.len() != m.def.key_size || value.len() != m.def.value_size {
            return Err(MapError::Invalid);
        }
        match (&mut m.storage, m.def.kind) {
            (Storage::Hash(h), MapKind::Hash { max_entries }) => {
                if !h.contains_key(key) && h.len() >= max_entries {
                    return Err(MapError::Full);
                }
                h.insert(key.to_vec(), value.to_vec());
                Ok(())
            }
            (Storage::Array(a), _) => {
                let idx = array_index(key).ok_or(MapError::Invalid)?;
                let slot = a.get_mut(idx).ok_or(MapError::NotFound)?;
                slot.copy_from_slice(value);
                Ok(())
            }
            _ => Err(MapError::Invalid),
        }
    }

    pub fn delete(&mut self, id: MapId, key: &[u8]) -> Result<(), MapError> {
        self.ops.deletes += 1;
        let m = self.map_mut(id);
        match &mut m.storage {
            Storage::Hash(h) => h.remove(key).map(|_| ()).ok_or(MapError::NotFound),
            _ => Err(MapError::Invalid),
        }
    }

    /// Number of live entries (hash/stack) or slots (array).
    pub fn entries(&self, id: MapId) -> usize {
        match &self.map(id).storage {
            Storage::Hash(h) => h.len(),
            Storage::Array(a) => a.len(),
            Storage::Stack(s) => s.len(),
            Storage::Ring { buf, .. } => buf.len(),
        }
    }

    // ------------------------------------------------------------------
    // Stack maps (recursive operators, paper §5.2)
    // ------------------------------------------------------------------

    pub fn push(&mut self, id: MapId, value: &[u8]) -> Result<(), MapError> {
        self.ops.pushes += 1;
        let m = self.map_mut(id);
        if value.len() != m.def.value_size {
            return Err(MapError::Invalid);
        }
        match (&mut m.storage, m.def.kind) {
            (Storage::Stack(s), MapKind::Stack { max_entries }) => {
                if s.len() >= max_entries {
                    return Err(MapError::Full);
                }
                s.push(value.to_vec());
                Ok(())
            }
            _ => Err(MapError::Invalid),
        }
    }

    pub fn pop(&mut self, id: MapId) -> Result<Vec<u8>, MapError> {
        self.ops.pops += 1;
        let m = self.map_mut(id);
        match &mut m.storage {
            Storage::Stack(s) => s.pop().ok_or(MapError::NotFound),
            _ => Err(MapError::Invalid),
        }
    }

    // ------------------------------------------------------------------
    // Perf event ring buffer (Collector → Processor channel, paper §3.2)
    // ------------------------------------------------------------------

    /// Publish a record. When the ring is full the *oldest* record is
    /// overwritten and the drop counter incremented; the producer never
    /// blocks (the "no back pressure" design property).
    pub fn ring_push(&mut self, id: MapId, data: &[u8]) -> Result<(), MapError> {
        self.ops.ring_pushes += 1;
        let m = self.map_mut(id);
        match (&mut m.storage, m.def.kind) {
            (
                Storage::Ring {
                    buf,
                    dropped,
                    produced,
                    bytes,
                    hwm,
                    evicted,
                },
                MapKind::PerfEventArray { capacity },
            ) => {
                if buf.len() >= capacity {
                    if let Some(old) = buf.pop_front() {
                        if evicted.len() >= EVICTED_KEEP {
                            evicted.pop_front();
                        }
                        evicted.push_back(old);
                    }
                    *dropped += 1;
                }
                buf.push_back(data.to_vec());
                *produced += 1;
                *bytes += data.len() as u64;
                *hwm = (*hwm).max(buf.len());
                Ok(())
            }
            _ => Err(MapError::Invalid),
        }
    }

    /// Drain up to `max` records for the Processor.
    pub fn ring_drain(&mut self, id: MapId, max: usize) -> Vec<Vec<u8>> {
        let m = self.map_mut(id);
        let out: Vec<Vec<u8>> = match &mut m.storage {
            Storage::Ring { buf, .. } => {
                let n = buf.len().min(max);
                buf.drain(..n).collect()
            }
            _ => Vec::new(),
        };
        self.ops.ring_drained += out.len() as u64;
        out
    }

    /// Records overwritten because the ring was full.
    pub fn ring_dropped(&self, id: MapId) -> u64 {
        match &self.map(id).storage {
            Storage::Ring { dropped, .. } => *dropped,
            _ => 0,
        }
    }

    /// Full statistics for a perf ring.
    pub fn ring_stats(&self, id: MapId) -> RingStats {
        let m = self.map(id);
        match (&m.storage, m.def.kind) {
            (
                Storage::Ring {
                    buf,
                    dropped,
                    produced,
                    bytes,
                    hwm,
                    ..
                },
                MapKind::PerfEventArray { capacity },
            ) => RingStats {
                produced: *produced,
                dropped: *dropped,
                bytes: *bytes,
                hwm: *hwm,
                len: buf.len(),
                capacity,
            },
            _ => RingStats::default(),
        }
    }

    /// Take the retained payloads of recently overwritten records (for
    /// loss attribution). Clears the retained buffer.
    pub fn ring_take_evicted(&mut self, id: MapId) -> Vec<Vec<u8>> {
        match &mut self.map_mut(id).storage {
            Storage::Ring { evicted, .. } => evicted.drain(..).collect(),
            _ => Vec::new(),
        }
    }

    /// Registry-wide operation counters.
    pub fn op_stats(&self) -> MapOpStats {
        MapOpStats {
            lookups: self.lookups.get(),
            ..self.ops
        }
    }

    /// Current ring occupancy.
    pub fn ring_len(&self, id: MapId) -> usize {
        self.entries(id)
    }

    /// Canonical snapshot of one map's data, for differential testing
    /// and diagnostics: `(key, value)` pairs in deterministic order.
    /// Hash maps report sorted key/value pairs; arrays report index →
    /// value; stacks and rings report position → record (bottom/oldest
    /// first). Does not consume or mutate anything (unlike
    /// [`MapRegistry::ring_drain`]) and bumps no op counters.
    pub fn dump(&self, id: MapId) -> Vec<(Vec<u8>, Vec<u8>)> {
        let idx_key = |i: usize| (i as u32).to_le_bytes().to_vec();
        match &self.map(id).storage {
            Storage::Hash(h) => h.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            Storage::Array(a) => a
                .iter()
                .enumerate()
                .map(|(i, v)| (idx_key(i), v.clone()))
                .collect(),
            Storage::Stack(s) => s
                .iter()
                .enumerate()
                .map(|(i, v)| (idx_key(i), v.clone()))
                .collect(),
            Storage::Ring { buf, .. } => buf
                .iter()
                .enumerate()
                .map(|(i, v)| (idx_key(i), v.clone()))
                .collect(),
        }
    }

    /// Clear all dynamic contents (reload support, §5.4).
    pub fn clear(&mut self, id: MapId) {
        let m = self.map_mut(id);
        match &mut m.storage {
            Storage::Hash(h) => h.clear(),
            Storage::Array(a) => {
                for slot in a.iter_mut() {
                    slot.fill(0);
                }
            }
            Storage::Stack(s) => s.clear(),
            Storage::Ring {
                buf,
                dropped,
                evicted,
                ..
            } => {
                buf.clear();
                evicted.clear();
                *dropped = 0;
            }
        }
    }
}

fn array_index(key: &[u8]) -> Option<usize> {
    if key.len() != 4 {
        return None;
    }
    Some(u32::from_le_bytes([key[0], key[1], key[2], key[3]]) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: u64) -> Vec<u8> {
        k.to_le_bytes().to_vec()
    }

    #[test]
    fn hash_crud() {
        let mut r = MapRegistry::new();
        let m = r.create(MapDef::hash("t", 8, 16, 4));
        assert!(r.lookup(m, &key(1)).is_none());
        r.update(m, &key(1), &[7u8; 16]).unwrap();
        assert_eq!(r.lookup(m, &key(1)).unwrap(), &[7u8; 16]);
        r.update(m, &key(1), &[9u8; 16]).unwrap();
        assert_eq!(r.lookup(m, &key(1)).unwrap(), &[9u8; 16]);
        r.delete(m, &key(1)).unwrap();
        assert_eq!(r.delete(m, &key(1)), Err(MapError::NotFound));
    }

    #[test]
    fn hash_respects_max_entries() {
        let mut r = MapRegistry::new();
        let m = r.create(MapDef::hash("t", 8, 1, 2));
        r.update(m, &key(1), &[0]).unwrap();
        r.update(m, &key(2), &[0]).unwrap();
        assert_eq!(r.update(m, &key(3), &[0]), Err(MapError::Full));
        // Overwriting an existing key is always allowed.
        r.update(m, &key(1), &[1]).unwrap();
    }

    #[test]
    fn wrong_sizes_rejected() {
        let mut r = MapRegistry::new();
        let m = r.create(MapDef::hash("t", 8, 4, 2));
        assert_eq!(r.update(m, &[1, 2], &[0; 4]), Err(MapError::Invalid));
        assert_eq!(r.update(m, &key(1), &[0; 3]), Err(MapError::Invalid));
    }

    #[test]
    fn array_indexing() {
        let mut r = MapRegistry::new();
        let m = r.create(MapDef::array("a", 8, 3));
        let idx = 2u32.to_le_bytes();
        r.update(m, &idx, &42u64.to_le_bytes()).unwrap();
        assert_eq!(r.lookup(m, &idx).unwrap(), &42u64.to_le_bytes());
        let oob = 9u32.to_le_bytes();
        assert!(r.lookup(m, &oob).is_none());
        assert_eq!(r.update(m, &oob, &[0; 8]), Err(MapError::NotFound));
    }

    #[test]
    fn stack_lifo_and_bounds() {
        let mut r = MapRegistry::new();
        let m = r.create(MapDef::stack("s", 8, 2));
        r.push(m, &1u64.to_le_bytes()).unwrap();
        r.push(m, &2u64.to_le_bytes()).unwrap();
        assert_eq!(r.push(m, &3u64.to_le_bytes()), Err(MapError::Full));
        assert_eq!(r.pop(m).unwrap(), 2u64.to_le_bytes());
        assert_eq!(r.pop(m).unwrap(), 1u64.to_le_bytes());
        assert_eq!(r.pop(m), Err(MapError::NotFound));
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut r = MapRegistry::new();
        let m = r.create(MapDef::perf_event_array("ring", 2));
        r.ring_push(m, b"a").unwrap();
        r.ring_push(m, b"b").unwrap();
        r.ring_push(m, b"c").unwrap(); // overwrites "a"
        assert_eq!(r.ring_dropped(m), 1);
        let drained = r.ring_drain(m, 10);
        assert_eq!(drained, vec![b"b".to_vec(), b"c".to_vec()]);
        assert_eq!(r.ring_len(m), 0);
    }

    #[test]
    fn ring_drain_respects_max() {
        let mut r = MapRegistry::new();
        let m = r.create(MapDef::perf_event_array("ring", 10));
        for i in 0..5u8 {
            r.ring_push(m, &[i]).unwrap();
        }
        let first = r.ring_drain(m, 2);
        assert_eq!(first, vec![vec![0], vec![1]]);
        assert_eq!(r.ring_len(m), 3);
    }

    #[test]
    fn lookup_mut_mutates_in_place() {
        let mut r = MapRegistry::new();
        let m = r.create(MapDef::hash("t", 8, 4, 2));
        r.update(m, &key(5), &[0; 4]).unwrap();
        r.lookup_mut(m, &key(5)).unwrap()[0] = 0xAB;
        assert_eq!(r.lookup(m, &key(5)).unwrap()[0], 0xAB);
    }

    #[test]
    fn ring_stats_track_production_and_hwm() {
        let mut r = MapRegistry::new();
        let m = r.create(MapDef::perf_event_array("ring", 3));
        for i in 0..5u8 {
            r.ring_push(m, &[i, i]).unwrap();
        }
        let s = r.ring_stats(m);
        assert_eq!(s.produced, 5);
        assert_eq!(s.dropped, 2);
        assert_eq!(s.bytes, 10);
        assert_eq!(s.hwm, 3);
        assert_eq!(s.len, 3);
        assert_eq!(s.capacity, 3);
        // The two overwritten records are retained for attribution.
        let evicted = r.ring_take_evicted(m);
        assert_eq!(evicted, vec![vec![0, 0], vec![1, 1]]);
        assert!(r.ring_take_evicted(m).is_empty(), "take drains the buffer");
    }

    #[test]
    fn op_stats_count_operations() {
        let mut r = MapRegistry::new();
        let h = r.create(MapDef::hash("h", 8, 4, 8));
        let s = r.create(MapDef::stack("s", 8, 4));
        let p = r.create(MapDef::perf_event_array("p", 4));
        r.update(h, &key(1), &[0; 4]).unwrap();
        r.lookup(h, &key(1));
        r.lookup(h, &key(2));
        r.delete(h, &key(1)).unwrap();
        r.push(s, &key(9)).unwrap();
        r.pop(s).unwrap();
        r.ring_push(p, b"x").unwrap();
        r.ring_drain(p, 10);
        let ops = r.op_stats();
        assert_eq!(ops.updates, 1);
        assert_eq!(ops.lookups, 2);
        assert_eq!(ops.deletes, 1);
        assert_eq!(ops.pushes, 1);
        assert_eq!(ops.pops, 1);
        assert_eq!(ops.ring_pushes, 1);
        assert_eq!(ops.ring_drained, 1);
    }

    #[test]
    fn clear_resets_contents() {
        let mut r = MapRegistry::new();
        let h = r.create(MapDef::hash("h", 8, 4, 8));
        let a = r.create(MapDef::array("a", 8, 2));
        r.update(h, &key(1), &[1; 4]).unwrap();
        r.update(a, &0u32.to_le_bytes(), &7u64.to_le_bytes())
            .unwrap();
        r.clear(h);
        r.clear(a);
        assert_eq!(r.entries(h), 0);
        assert_eq!(r.lookup(a, &0u32.to_le_bytes()).unwrap(), &[0; 8]);
    }
}
