//! The interpreter ("JIT" stage of the loader pipeline).
//!
//! The kernel JIT-compiles verified bytecode to machine code; we interpret
//! it. The interpreter *trusts* the verifier for performance in real BPF,
//! but ours stays defensive: every memory access is still checked, so a
//! verifier bug surfaces as a [`VmError`] instead of undefined behavior —
//! a property the cross-checking property tests rely on.
//!
//! ## Memory model
//!
//! Pointers are plain `u64`s in disjoint address windows, so pointer
//! arithmetic works with ordinary ALU instructions:
//!
//! * stack:      `0x1000_0000_0000 ..+ 512` (R10 starts at the top),
//! * context:    `0x2000_0000_0000 ..+ ctx_len` (read-only),
//! * map values: `0x3000_0000_0000 + (entry << 32) ..+ value_size`, where
//!   `entry` indexes a per-execution dereference table created by
//!   `map_lookup_elem` — giving BPF's in-place value-update semantics,
//! * map handles: `0x4000_0000_0000 | map_id` (opaque; only helpers use
//!   them).

use crate::insn::{AluOp, Helper, Insn, Src};
use crate::maps::{MapError, MapId, MapRegistry};

pub const STACK_BASE: u64 = 0x1000_0000_0000;
pub const STACK_SIZE: usize = 512;
pub const CTX_BASE: u64 = 0x2000_0000_0000;
pub const MAPV_BASE: u64 = 0x3000_0000_0000;
pub const HANDLE_BASE: u64 = 0x4000_0000_0000;
/// Interpreter fuel: far above the verifier's path lengths, so exhausting
/// it indicates a bug rather than a slow program.
pub const FUEL: u64 = 4_000_000;

/// Runtime faults. A verified program should never produce one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    BadAddress { pc: usize, addr: u64 },
    ReadOnly { pc: usize, addr: u64 },
    StaleMapValue { pc: usize },
    BadMapHandle { pc: usize },
    OutOfFuel,
    PcOutOfBounds { pc: usize },
    BadHelperArgs { pc: usize, helper: Helper },
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::BadAddress { pc, addr } => write!(f, "bad address {addr:#x} at pc {pc}"),
            VmError::ReadOnly { pc, addr } => write!(f, "write to read-only {addr:#x} at pc {pc}"),
            VmError::StaleMapValue { pc } => write!(f, "stale map value pointer at pc {pc}"),
            VmError::BadMapHandle { pc } => write!(f, "bad map handle at pc {pc}"),
            VmError::OutOfFuel => write!(f, "out of fuel"),
            VmError::PcOutOfBounds { pc } => write!(f, "pc {pc} out of bounds"),
            VmError::BadHelperArgs { pc, helper } => {
                write!(f, "bad args for helper {} at pc {pc}", helper.name())
            }
        }
    }
}

impl std::error::Error for VmError {}

/// Counters the caller uses to charge kernel time for the program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    pub insns: u64,
    pub helper_calls: u64,
    /// Records published via `perf_event_output` during this run.
    pub ring_publishes: u64,
}

/// The kernel facilities helpers read. Implemented by the `tscout` runtime
/// over the simulated kernel; kept as a trait so this crate stays
/// dependency-free and unit-testable with mock worlds.
pub trait HelperWorld {
    /// Current task-local monotonic time in ns.
    fn ktime_ns(&mut self) -> u64;
    /// `(pid << 32) | tid` of the task that hit the tracepoint.
    fn current_pid_tgid(&mut self) -> u64;
    /// Read PMU counter `idx`: `[value, time_enabled, time_running]`.
    fn perf_event_read(&mut self, idx: u64) -> Option<[u64; 3]>;
    /// Task I/O accounting: `[read_bytes, write_bytes, read_syscalls, write_syscalls]`.
    fn read_task_io(&mut self) -> [u64; 4];
    /// Socket stats: `[bytes_sent, bytes_received, segs_out, segs_in]`.
    fn read_tcp_sock(&mut self) -> [u64; 4];
}

/// A no-op world for tests.
#[derive(Debug, Default)]
pub struct NullWorld {
    pub time_ns: u64,
    pub pid_tgid: u64,
}

impl HelperWorld for NullWorld {
    fn ktime_ns(&mut self) -> u64 {
        self.time_ns
    }
    fn current_pid_tgid(&mut self) -> u64 {
        self.pid_tgid
    }
    fn perf_event_read(&mut self, idx: u64) -> Option<[u64; 3]> {
        Some([idx * 100, 1000, 1000])
    }
    fn read_task_io(&mut self) -> [u64; 4] {
        [0; 4]
    }
    fn read_tcp_sock(&mut self) -> [u64; 4] {
        [0; 4]
    }
}

/// The interpreter.
#[derive(Debug)]
pub struct Vm;

struct Exec<'a> {
    stack: [u8; STACK_SIZE],
    ctx: &'a [u8],
    maps: &'a mut MapRegistry,
    /// Live map-value pointers: `(map, key)` per dereference window.
    deref: Vec<(MapId, Vec<u8>)>,
}

impl<'a> Exec<'a> {
    fn read_bytes(&self, pc: usize, addr: u64, len: usize) -> Result<Vec<u8>, VmError> {
        let mut out = vec![0u8; len];
        self.read_into(pc, addr, &mut out)?;
        Ok(out)
    }

    fn read_into(&self, pc: usize, addr: u64, out: &mut [u8]) -> Result<(), VmError> {
        let len = out.len();
        if in_window(addr, STACK_BASE, STACK_SIZE as u64, len) {
            let off = (addr - STACK_BASE) as usize;
            out.copy_from_slice(&self.stack[off..off + len]);
            return Ok(());
        }
        if in_window(addr, CTX_BASE, self.ctx.len() as u64, len) {
            let off = (addr - CTX_BASE) as usize;
            out.copy_from_slice(&self.ctx[off..off + len]);
            return Ok(());
        }
        if let Some((entry, off)) = mapv_decode(addr) {
            let (map, key) = self
                .deref
                .get(entry)
                .ok_or(VmError::BadAddress { pc, addr })?;
            let val = self
                .maps
                .lookup(*map, key)
                .ok_or(VmError::StaleMapValue { pc })?;
            if off + len > val.len() {
                return Err(VmError::BadAddress { pc, addr });
            }
            out.copy_from_slice(&val[off..off + len]);
            return Ok(());
        }
        Err(VmError::BadAddress { pc, addr })
    }

    fn write_bytes(&mut self, pc: usize, addr: u64, data: &[u8]) -> Result<(), VmError> {
        let len = data.len();
        if in_window(addr, STACK_BASE, STACK_SIZE as u64, len) {
            let off = (addr - STACK_BASE) as usize;
            self.stack[off..off + len].copy_from_slice(data);
            return Ok(());
        }
        if in_window(addr, CTX_BASE, self.ctx.len() as u64, len) {
            return Err(VmError::ReadOnly { pc, addr });
        }
        if let Some((entry, off)) = mapv_decode(addr) {
            let (map, key) = self
                .deref
                .get(entry)
                .cloned()
                .ok_or(VmError::BadAddress { pc, addr })?;
            let val = self
                .maps
                .lookup_mut(map, &key)
                .ok_or(VmError::StaleMapValue { pc })?;
            if off + len > val.len() {
                return Err(VmError::BadAddress { pc, addr });
            }
            val[off..off + len].copy_from_slice(data);
            return Ok(());
        }
        Err(VmError::BadAddress { pc, addr })
    }
}

fn in_window(addr: u64, base: u64, window: u64, len: usize) -> bool {
    addr >= base && addr.saturating_add(len as u64) <= base + window
}

fn mapv_decode(addr: u64) -> Option<(usize, usize)> {
    if (MAPV_BASE..HANDLE_BASE).contains(&addr) {
        let rel = addr - MAPV_BASE;
        Some(((rel >> 32) as usize, (rel & 0xFFFF_FFFF) as usize))
    } else {
        None
    }
}

fn handle_decode(v: u64) -> Option<MapId> {
    if (HANDLE_BASE..HANDLE_BASE + (1 << 32)).contains(&v) {
        Some(MapId((v - HANDLE_BASE) as u32))
    } else {
        None
    }
}

impl Vm {
    /// Execute a (verified) program. Returns `R0` and execution stats.
    pub fn run(
        prog: &[Insn],
        ctx: &[u8],
        maps: &mut MapRegistry,
        world: &mut dyn HelperWorld,
    ) -> Result<(u64, ExecStats), VmError> {
        let mut regs = [0u64; 11];
        regs[1] = CTX_BASE;
        regs[10] = STACK_BASE + STACK_SIZE as u64;
        let mut exec = Exec {
            stack: [0; STACK_SIZE],
            ctx,
            maps,
            deref: Vec::new(),
        };
        let mut stats = ExecStats::default();
        let mut pc = 0usize;
        let mut fuel = FUEL;

        loop {
            if fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            fuel -= 1;
            stats.insns += 1;
            let insn = *prog.get(pc).ok_or(VmError::PcOutOfBounds { pc })?;
            match insn {
                Insn::Alu { op, dst, src } => {
                    let s = match src {
                        Src::Imm(i) => i as u64,
                        Src::Reg(r) => regs[r.index()],
                    };
                    let d = regs[dst.index()];
                    regs[dst.index()] = alu(op, d, s);
                    pc += 1;
                }
                Insn::Load {
                    size,
                    dst,
                    base,
                    off,
                } => {
                    let addr = regs[base.index()].wrapping_add(off as i64 as u64);
                    let bytes = exec.read_bytes(pc, addr, size.bytes())?;
                    regs[dst.index()] = zext(&bytes);
                    pc += 1;
                }
                Insn::Store {
                    size,
                    base,
                    off,
                    src,
                } => {
                    let addr = regs[base.index()].wrapping_add(off as i64 as u64);
                    let v = match src {
                        Src::Imm(i) => i as u64,
                        Src::Reg(r) => regs[r.index()],
                    };
                    let bytes = v.to_le_bytes();
                    exec.write_bytes(pc, addr, &bytes[..size.bytes()])?;
                    pc += 1;
                }
                Insn::Jump { cond, off } => {
                    let taken = match cond {
                        None => true,
                        Some((c, dst, src)) => {
                            let s = match src {
                                Src::Imm(i) => i as u64,
                                Src::Reg(r) => regs[r.index()],
                            };
                            c.eval(regs[dst.index()], s)
                        }
                    };
                    pc = if taken {
                        (pc as i64 + 1 + off as i64) as usize
                    } else {
                        pc + 1
                    };
                }
                Insn::Call { helper } => {
                    stats.helper_calls += 1;
                    Self::call(helper, &mut regs, &mut exec, world, &mut stats, pc)?;
                    pc += 1;
                }
                Insn::LoadMap { dst, map } => {
                    regs[dst.index()] = HANDLE_BASE | map.0 as u64;
                    pc += 1;
                }
                Insn::Exit => return Ok((regs[0], stats)),
            }
        }
    }

    fn call(
        helper: Helper,
        regs: &mut [u64; 11],
        exec: &mut Exec<'_>,
        world: &mut dyn HelperWorld,
        stats: &mut ExecStats,
        pc: usize,
    ) -> Result<(), VmError> {
        let bad = || VmError::BadHelperArgs { pc, helper };
        let r0 = match helper {
            Helper::KtimeGetNs => world.ktime_ns(),
            Helper::GetCurrentPidTgid => world.current_pid_tgid(),
            Helper::MapLookup => {
                let map = handle_decode(regs[1]).ok_or_else(bad)?;
                let key_size = exec.maps.def(map).ok_or_else(bad)?.key_size;
                let key = exec.read_bytes(pc, regs[2], key_size)?;
                if exec.maps.lookup(map, &key).is_some() {
                    let entry = exec.deref.len();
                    exec.deref.push((map, key));
                    MAPV_BASE + ((entry as u64) << 32)
                } else {
                    0
                }
            }
            Helper::MapUpdate => {
                let map = handle_decode(regs[1]).ok_or_else(bad)?;
                let (ks, vs) = {
                    let d = exec.maps.def(map).ok_or_else(bad)?;
                    (d.key_size, d.value_size)
                };
                let key = exec.read_bytes(pc, regs[2], ks)?;
                let val = exec.read_bytes(pc, regs[3], vs)?;
                errno(exec.maps.update(map, &key, &val))
            }
            Helper::MapDelete => {
                let map = handle_decode(regs[1]).ok_or_else(bad)?;
                let ks = exec.maps.def(map).ok_or_else(bad)?.key_size;
                let key = exec.read_bytes(pc, regs[2], ks)?;
                errno(exec.maps.delete(map, &key))
            }
            Helper::MapPush => {
                let map = handle_decode(regs[1]).ok_or_else(bad)?;
                let vs = exec.maps.def(map).ok_or_else(bad)?.value_size;
                let val = exec.read_bytes(pc, regs[2], vs)?;
                errno(exec.maps.push(map, &val))
            }
            Helper::MapPop => {
                let map = handle_decode(regs[1]).ok_or_else(bad)?;
                match exec.maps.pop(map) {
                    Ok(val) => {
                        exec.write_bytes(pc, regs[2], &val)?;
                        0
                    }
                    Err(e) => e.errno() as u64,
                }
            }
            Helper::PerfEventReadBuf => match world.perf_event_read(regs[1]) {
                Some(triple) => {
                    let mut buf = [0u8; 24];
                    for (i, v) in triple.iter().enumerate() {
                        buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
                    }
                    exec.write_bytes(pc, regs[2], &buf)?;
                    0
                }
                None => (-2i64) as u64,
            },
            Helper::ReadTaskIo | Helper::ReadTcpSock => {
                let quad = if helper == Helper::ReadTaskIo {
                    world.read_task_io()
                } else {
                    world.read_tcp_sock()
                };
                let mut buf = [0u8; 32];
                for (i, v) in quad.iter().enumerate() {
                    buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
                }
                exec.write_bytes(pc, regs[1], &buf)?;
                0
            }
            Helper::PerfEventOutput => {
                let map = handle_decode(regs[1]).ok_or_else(bad)?;
                let len = regs[3] as usize;
                let data = exec.read_bytes(pc, regs[2], len)?;
                stats.ring_publishes += 1;
                errno(exec.maps.ring_push(map, &data))
            }
        };
        // Clobber caller-saved registers exactly as the ABI specifies.
        for r in regs.iter_mut().take(6).skip(1) {
            *r = 0xDEAD_BEEF_DEAD_BEEF;
        }
        regs[0] = r0;
        Ok(())
    }
}

fn errno(r: Result<(), MapError>) -> u64 {
    match r {
        Ok(()) => 0,
        Err(e) => e.errno() as u64,
    }
}

fn zext(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(buf)
}

/// Concrete ALU evaluation — shared with the load-time optimizer's
/// constant folder so folded results match execution bit-for-bit.
pub(crate) fn alu(op: AluOp, d: u64, s: u64) -> u64 {
    match op {
        AluOp::Add => d.wrapping_add(s),
        AluOp::Sub => d.wrapping_sub(s),
        AluOp::Mul => d.wrapping_mul(s),
        // eBPF semantics: division by zero yields 0, modulo by zero keeps dst.
        AluOp::Div => d.checked_div(s).unwrap_or(0),
        AluOp::Mod => d.checked_rem(s).unwrap_or(d),
        AluOp::And => d & s,
        AluOp::Or => d | s,
        AluOp::Xor => d ^ s,
        AluOp::Lsh => d << (s & 63),
        AluOp::Rsh => d >> (s & 63),
        AluOp::Arsh => ((d as i64) >> (s & 63)) as u64,
        AluOp::Mov => s,
        AluOp::Neg => (d as i64).wrapping_neg() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::insn::{Cond, Size, R0, R1, R10, R2, R3, R4, R6};
    use crate::maps::MapDef;

    fn run(prog: Vec<Insn>, ctx: &[u8], maps: &mut MapRegistry) -> u64 {
        let mut world = NullWorld::default();
        let (r0, _) = Vm::run(&prog, ctx, maps, &mut world).unwrap();
        r0
    }

    #[test]
    fn arithmetic_works() {
        let mut maps = MapRegistry::new();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 10);
        b.alu_imm(AluOp::Mul, R0, 7);
        b.alu_imm(AluOp::Add, R0, 2);
        b.alu_imm(AluOp::Div, R0, 8); // 72 / 8 = 9
        b.exit();
        assert_eq!(run(b.resolve().unwrap(), &[], &mut maps), 9);
    }

    #[test]
    fn division_by_zero_yields_zero_mod_keeps_dst() {
        let mut maps = MapRegistry::new();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 42);
        b.mov_imm(R6, 0);
        b.alu_reg(AluOp::Div, R0, R6);
        b.exit();
        assert_eq!(run(b.resolve().unwrap(), &[], &mut maps), 0);

        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 42);
        b.mov_imm(R6, 0);
        b.alu_reg(AluOp::Mod, R0, R6);
        b.exit();
        assert_eq!(run(b.resolve().unwrap(), &[], &mut maps), 42);
    }

    #[test]
    fn stack_store_load_round_trip() {
        let mut maps = MapRegistry::new();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R6, 0x1122334455667788);
        b.store_reg(Size::B8, R10, -8, R6);
        b.load(Size::B4, R0, R10, -8); // low 4 bytes, zero-extended
        b.exit();
        assert_eq!(run(b.resolve().unwrap(), &[], &mut maps), 0x55667788);
    }

    #[test]
    fn ctx_reads_work_and_writes_fault() {
        let mut maps = MapRegistry::new();
        let ctx = 0xABCDu64.to_le_bytes();
        let mut b = ProgramBuilder::new();
        b.load(Size::B8, R0, R1, 0);
        b.exit();
        assert_eq!(run(b.resolve().unwrap(), &ctx, &mut maps), 0xABCD);

        let prog = vec![
            Insn::Store {
                size: Size::B1,
                base: R1,
                off: 0,
                src: Src::Imm(1),
            },
            Insn::Exit,
        ];
        let mut world = NullWorld::default();
        let err = Vm::run(&prog, &ctx, &mut maps, &mut world).unwrap_err();
        assert!(matches!(err, VmError::ReadOnly { .. }));
    }

    #[test]
    fn conditional_jump_selects_branch() {
        let mut maps = MapRegistry::new();
        let mut b = ProgramBuilder::new();
        let else_ = b.label();
        let end = b.label();
        b.mov_imm(R6, 5);
        b.jump_if_imm(Cond::Gt, R6, 10, else_);
        b.mov_imm(R0, 111);
        b.jump(end);
        b.bind(else_);
        b.mov_imm(R0, 222);
        b.bind(end);
        b.exit();
        assert_eq!(run(b.resolve().unwrap(), &[], &mut maps), 111);
    }

    #[test]
    fn map_update_lookup_and_in_place_mutation() {
        let mut maps = MapRegistry::new();
        let h = maps.create(MapDef::hash("h", 8, 8, 8));
        let mut b = ProgramBuilder::new();
        // key=7 at fp-8, value=100 at fp-16
        b.store_imm(Size::B8, R10, -8, 7);
        b.store_imm(Size::B8, R10, -16, 100);
        b.load_map(R1, h);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.mov_reg(R3, R10);
        b.alu_imm(AluOp::Add, R3, -16);
        b.mov_imm(R4, 0);
        b.call(Helper::MapUpdate);
        // lookup and bump the value in place
        b.load_map(R1, h);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::MapLookup);
        let miss = b.label();
        b.jump_if_imm(Cond::Eq, R0, 0, miss);
        b.load(Size::B8, R6, R0, 0);
        b.alu_imm(AluOp::Add, R6, 1);
        b.store_reg(Size::B8, R0, 0, R6);
        b.bind(miss);
        b.mov_imm(R0, 0);
        b.exit();
        let prog = b.resolve().unwrap();
        crate::verifier::verify(&prog, &maps, 0).unwrap();
        run(prog, &[], &mut maps);
        let stored = maps.lookup(h, &7u64.to_le_bytes()).unwrap();
        assert_eq!(zext(stored), 101);
    }

    #[test]
    fn lookup_miss_returns_null() {
        let mut maps = MapRegistry::new();
        let h = maps.create(MapDef::hash("h", 8, 8, 8));
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 999);
        b.load_map(R1, h);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::MapLookup);
        b.exit(); // R0 = lookup result
        assert_eq!(run(b.resolve().unwrap(), &[], &mut maps), 0);
    }

    #[test]
    fn stack_map_push_pop_through_helpers() {
        let mut maps = MapRegistry::new();
        let s = maps.create(MapDef::stack("s", 8, 4));
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -8, 41);
        b.load_map(R1, s);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -8);
        b.call(Helper::MapPush);
        b.load_map(R1, s);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -16);
        b.call(Helper::MapPop);
        b.load(Size::B8, R0, R10, -16);
        b.alu_imm(AluOp::Add, R0, 1);
        b.exit();
        let prog = b.resolve().unwrap();
        crate::verifier::verify(&prog, &maps, 0).unwrap();
        assert_eq!(run(prog, &[], &mut maps), 42);
    }

    #[test]
    fn perf_event_output_publishes_to_ring() {
        let mut maps = MapRegistry::new();
        let ring = maps.create(MapDef::perf_event_array("ring", 4));
        let mut b = ProgramBuilder::new();
        b.store_imm(Size::B8, R10, -16, 0xAAAA);
        b.store_imm(Size::B8, R10, -8, 0xBBBB);
        b.load_map(R1, ring);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -16);
        b.mov_imm(R3, 16);
        b.call(Helper::PerfEventOutput);
        b.exit();
        let prog = b.resolve().unwrap();
        crate::verifier::verify(&prog, &maps, 0).unwrap();
        let mut world = NullWorld::default();
        let (_, stats) = Vm::run(&prog, &[], &mut maps, &mut world).unwrap();
        assert_eq!(stats.ring_publishes, 1);
        let records = maps.ring_drain(ring, 10);
        assert_eq!(records.len(), 1);
        assert_eq!(zext(&records[0][0..8]), 0xAAAA);
        assert_eq!(zext(&records[0][8..16]), 0xBBBB);
    }

    #[test]
    fn perf_event_read_buf_writes_triple() {
        let mut maps = MapRegistry::new();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R1, 3);
        b.mov_reg(R2, R10);
        b.alu_imm(AluOp::Add, R2, -24);
        b.call(Helper::PerfEventReadBuf);
        b.load(Size::B8, R0, R10, -24); // value = idx * 100 in NullWorld
        b.exit();
        assert_eq!(run(b.resolve().unwrap(), &[], &mut maps), 300);
    }

    #[test]
    fn helper_ktime_and_pid() {
        let mut maps = MapRegistry::new();
        let mut b = ProgramBuilder::new();
        b.call(Helper::KtimeGetNs);
        b.mov_reg(R6, R0);
        b.call(Helper::GetCurrentPidTgid);
        b.alu_reg(AluOp::Add, R0, R6);
        b.exit();
        let prog = b.resolve().unwrap();
        let mut world = NullWorld {
            time_ns: 1000,
            pid_tgid: 24,
        };
        let (r0, stats) = Vm::run(&prog, &[], &mut maps, &mut world).unwrap();
        assert_eq!(r0, 1024);
        assert_eq!(stats.helper_calls, 2);
        assert_eq!(stats.insns, 5);
    }

    #[test]
    fn unverified_garbage_faults_safely() {
        // The VM must return an error, not panic, on wild pointers.
        let mut maps = MapRegistry::new();
        let prog = vec![
            Insn::Load {
                size: Size::B8,
                dst: R0,
                base: R1,
                off: 4096,
            },
            Insn::Exit,
        ];
        let mut world = NullWorld::default();
        let err = Vm::run(&prog, &[], &mut maps, &mut world).unwrap_err();
        assert!(matches!(err, VmError::BadAddress { .. }));
    }

    #[test]
    fn signed_shift_behaves() {
        let mut maps = MapRegistry::new();
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, -16);
        b.alu_imm(AluOp::Arsh, R0, 2);
        b.exit();
        assert_eq!(run(b.resolve().unwrap(), &[], &mut maps) as i64, -4);
    }
}
