//! The instruction set: a compact, typed rendering of eBPF.
//!
//! Differences from kernel eBPF are deliberate simplifications that do not
//! change the properties the reproduction depends on:
//!
//! * instructions are a Rust `enum`, not a packed 8-byte encoding;
//! * only 64-bit ALU (eBPF's ALU32 class is omitted);
//! * map references are first-class ([`Insn::LoadMap`]) instead of the
//!   `ld_imm64` pseudo-instruction + fd relocation dance;
//! * helpers are an enum with typed signatures instead of numeric ids.

use crate::maps::MapId;
use std::fmt;

/// A register. `R0` is the return/scratch register, `R1`–`R5` are caller-
/// saved argument registers, `R6`–`R9` are callee-saved, and `R10` is the
/// read-only frame pointer (top of the 512-byte stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

pub const R0: Reg = Reg(0);
pub const R1: Reg = Reg(1);
pub const R2: Reg = Reg(2);
pub const R3: Reg = Reg(3);
pub const R4: Reg = Reg(4);
pub const R5: Reg = Reg(5);
pub const R6: Reg = Reg(6);
pub const R7: Reg = Reg(7);
pub const R8: Reg = Reg(8);
pub const R9: Reg = Reg(9);
pub const R10: Reg = Reg(10);

impl Reg {
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub fn is_valid(self) -> bool {
        self.0 <= 10
    }

    /// The frame pointer is read-only, like eBPF's R10.
    pub fn is_writable(self) -> bool {
        self.0 <= 9
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Second operand of ALU and jump instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    Reg(Reg),
    Imm(i64),
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// 64-bit ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Lsh,
    Rsh,
    Arsh,
    Mov,
    Neg,
}

impl AluOp {
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Mod => "mod",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Lsh => "lsh",
            AluOp::Rsh => "rsh",
            AluOp::Arsh => "arsh",
            AluOp::Mov => "mov",
            AluOp::Neg => "neg",
        }
    }
}

/// Jump conditions (unsigned unless prefixed `S`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    SLt,
    SLe,
    SGt,
    SGe,
    /// Jump if `dst & src != 0`.
    Set,
}

impl Cond {
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "jeq",
            Cond::Ne => "jne",
            Cond::Lt => "jlt",
            Cond::Le => "jle",
            Cond::Gt => "jgt",
            Cond::Ge => "jge",
            Cond::SLt => "jslt",
            Cond::SLe => "jsle",
            Cond::SGt => "jsgt",
            Cond::SGe => "jsge",
            Cond::Set => "jset",
        }
    }

    /// Evaluate the condition on concrete values.
    pub fn eval(self, dst: u64, src: u64) -> bool {
        match self {
            Cond::Eq => dst == src,
            Cond::Ne => dst != src,
            Cond::Lt => dst < src,
            Cond::Le => dst <= src,
            Cond::Gt => dst > src,
            Cond::Ge => dst >= src,
            Cond::SLt => (dst as i64) < (src as i64),
            Cond::SLe => (dst as i64) <= (src as i64),
            Cond::SGt => (dst as i64) > (src as i64),
            Cond::SGe => (dst as i64) >= (src as i64),
            Cond::Set => dst & src != 0,
        }
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    B1,
    B2,
    B4,
    B8,
}

impl Size {
    pub fn bytes(self) -> usize {
        match self {
            Size::B1 => 1,
            Size::B2 => 2,
            Size::B4 => 4,
            Size::B8 => 8,
        }
    }
}

/// Kernel helper functions callable from BPF programs.
///
/// These correspond to the helpers TScout's generated Collector uses
/// (paper §3.2/§4): map manipulation, perf counter reads, `task_struct`
/// I/O accounting, `tcp_sock` statistics, and `perf_event_output`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Helper {
    /// `R1`=map, `R2`=key ptr → `R0` = value ptr or NULL.
    MapLookup,
    /// `R1`=map, `R2`=key ptr, `R3`=value ptr, `R4`=flags → `R0`=0/err.
    MapUpdate,
    /// `R1`=map, `R2`=key ptr → `R0`=0/err.
    MapDelete,
    /// `R1`=stack map, `R2`=value ptr → `R0`=0/err. Used for recursive
    /// operators (paper §5.2).
    MapPush,
    /// `R1`=stack map, `R2`=out ptr → `R0`=0 or -1 if empty.
    MapPop,
    /// `R1`=counter index, `R2`=ptr to 24-byte out buffer
    /// `{value, time_enabled, time_running}` → `R0`=0/err.
    PerfEventReadBuf,
    /// `R1`=ptr to 32-byte out buffer
    /// `{read_bytes, write_bytes, read_syscalls, write_syscalls}` → `R0`=0.
    ReadTaskIo,
    /// `R1`=ptr to 32-byte out buffer
    /// `{bytes_sent, bytes_received, segs_out, segs_in}` → `R0`=0.
    ReadTcpSock,
    /// `R1`=perf-event-array map, `R2`=data ptr, `R3`=length (constant)
    /// → `R0`=0/err. Ships a sample to the user-space Processor.
    PerfEventOutput,
    /// → `R0` = current task virtual time in ns.
    KtimeGetNs,
    /// → `R0` = (pid << 32) | tid of the task that hit the tracepoint.
    GetCurrentPidTgid,
}

impl Helper {
    /// How many argument registers (`R1..=R{n}`) the helper reads. The
    /// optimizer's liveness analysis uses this to avoid keeping dead
    /// argument setup alive across calls that never read it; the VM
    /// still clobbers all of `R1`–`R5` regardless.
    pub fn num_args(self) -> usize {
        match self {
            Helper::MapLookup
            | Helper::MapDelete
            | Helper::MapPush
            | Helper::MapPop
            | Helper::PerfEventReadBuf => 2,
            Helper::MapUpdate => 4,
            Helper::ReadTaskIo | Helper::ReadTcpSock => 1,
            Helper::PerfEventOutput => 3,
            Helper::KtimeGetNs | Helper::GetCurrentPidTgid => 0,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Helper::MapLookup => "map_lookup_elem",
            Helper::MapUpdate => "map_update_elem",
            Helper::MapDelete => "map_delete_elem",
            Helper::MapPush => "map_push_elem",
            Helper::MapPop => "map_pop_elem",
            Helper::PerfEventReadBuf => "perf_event_read_buf",
            Helper::ReadTaskIo => "read_task_io",
            Helper::ReadTcpSock => "read_tcp_sock",
            Helper::PerfEventOutput => "perf_event_output",
            Helper::KtimeGetNs => "ktime_get_ns",
            Helper::GetCurrentPidTgid => "get_current_pid_tgid",
        }
    }
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Insn {
    /// `dst = dst <op> src` (64-bit). `Mov` copies, `Neg` ignores `src`.
    Alu { op: AluOp, dst: Reg, src: Src },
    /// `dst = *(size*)(base + off)` — zero-extended.
    Load {
        size: Size,
        dst: Reg,
        base: Reg,
        off: i32,
    },
    /// `*(size*)(base + off) = src` — truncated to `size`.
    Store {
        size: Size,
        base: Reg,
        off: i32,
        src: Src,
    },
    /// Conditional (`Some`) or unconditional (`None`) jump. The offset
    /// is relative to the next instruction and may be negative (the
    /// verifier bounds back-edge trips, so loops must provably
    /// terminate).
    /// Target is `pc + 1 + off`.
    Jump {
        cond: Option<(Cond, Reg, Src)>,
        off: i32,
    },
    /// Call a kernel helper.
    Call { helper: Helper },
    /// `dst = handle(map)` — the `ld_imm64 map_fd` pseudo-instruction.
    LoadMap { dst: Reg, map: MapId },
    /// Return `R0` to the kernel.
    Exit,
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::Alu {
                op: AluOp::Neg,
                dst,
                ..
            } => write!(f, "neg {dst}"),
            Insn::Alu { op, dst, src } => write!(f, "{} {dst}, {src}", op.mnemonic()),
            Insn::Load {
                size,
                dst,
                base,
                off,
            } => {
                write!(f, "ldx{} {dst}, [{base}{off:+}]", size.bytes())
            }
            Insn::Store {
                size,
                base,
                off,
                src,
            } => {
                write!(f, "stx{} [{base}{off:+}], {src}", size.bytes())
            }
            Insn::Jump { cond: None, off } => write!(f, "ja {off:+}"),
            Insn::Jump {
                cond: Some((c, dst, src)),
                off,
            } => {
                write!(f, "{} {dst}, {src}, {off:+}", c.mnemonic())
            }
            Insn::Call { helper } => write!(f, "call {}", helper.name()),
            Insn::LoadMap { dst, map } => write!(f, "ldmap {dst}, map#{}", map.0),
            Insn::Exit => write!(f, "exit"),
        }
    }
}

impl Insn {
    /// Disassemble one instruction at `pc`, resolving relative jump
    /// offsets to absolute targets (`ja +3 -> 12`). This is the form
    /// the optimization report, the verifier log header, and test
    /// failure messages use; [`Insn::fmt`] keeps the bare relative
    /// rendering for contexts where the pc is unknown.
    pub fn disasm(&self, pc: usize) -> String {
        match self {
            Insn::Jump { off, .. } => {
                let target = pc as i64 + 1 + *off as i64;
                format!("{self} -> {target}")
            }
            _ => format!("{self}"),
        }
    }
}

/// Disassemble a program into one line per instruction, with jump
/// targets resolved to absolute pcs.
pub fn disassemble(prog: &[Insn]) -> String {
    let mut out = String::new();
    for (pc, insn) in prog.iter().enumerate() {
        out.push_str(&format!("{pc:4}: {}\n", insn.disasm(pc)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        let minus_one = (-1i64) as u64;
        assert!(Cond::Gt.eval(minus_one, 1)); // unsigned: huge
        assert!(Cond::SLt.eval(minus_one, 1)); // signed: -1 < 1
        assert!(Cond::Set.eval(0b1010, 0b0010));
        assert!(!Cond::Set.eval(0b1010, 0b0101));
    }

    #[test]
    fn reg_validity() {
        assert!(R10.is_valid());
        assert!(!R10.is_writable());
        assert!(R9.is_writable());
        assert!(!Reg(11).is_valid());
    }

    #[test]
    fn display_round_trips_reasonably() {
        let prog = vec![
            Insn::Alu {
                op: AluOp::Mov,
                dst: R0,
                src: Src::Imm(0),
            },
            Insn::Load {
                size: Size::B8,
                dst: R1,
                base: R10,
                off: -8,
            },
            Insn::Jump {
                cond: Some((Cond::Eq, R0, Src::Imm(0))),
                off: 1,
            },
            Insn::Call {
                helper: Helper::KtimeGetNs,
            },
            Insn::Exit,
        ];
        let text = disassemble(&prog);
        assert!(text.contains("mov r0, 0"));
        assert!(text.contains("ldx8 r1, [r10-8]"));
        assert!(text.contains("jeq r0, 0, +1 -> 4"), "got: {text}");
        assert!(text.contains("call ktime_get_ns"));
        assert!(text.contains("exit"));
    }

    #[test]
    fn disasm_resolves_jump_targets() {
        let ja = Insn::Jump {
            cond: None,
            off: -3,
        };
        assert_eq!(ja.disasm(10), "ja -3 -> 8");
        let exit = Insn::Exit;
        assert_eq!(exit.disasm(5), "exit");
    }

    #[test]
    fn helper_arity_matches_documented_signatures() {
        assert_eq!(Helper::MapUpdate.num_args(), 4);
        assert_eq!(Helper::PerfEventOutput.num_args(), 3);
        assert_eq!(Helper::MapLookup.num_args(), 2);
        assert_eq!(Helper::ReadTaskIo.num_args(), 1);
        assert_eq!(Helper::KtimeGetNs.num_args(), 0);
    }

    #[test]
    fn size_bytes() {
        assert_eq!(Size::B1.bytes(), 1);
        assert_eq!(Size::B2.bytes(), 2);
        assert_eq!(Size::B4.bytes(), 4);
        assert_eq!(Size::B8.bytes(), 8);
    }
}
