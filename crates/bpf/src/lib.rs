//! # tscout-bpf — a from-scratch BPF-style virtual machine
//!
//! TScout generates a kernel-space program (via Linux BPF) that collects
//! metrics at operating-unit boundaries (paper §3). This crate reproduces
//! the BPF substrate that program runs on:
//!
//! * [`insn`] — a register ISA modeled on eBPF: eleven registers
//!   (`R0`–`R10`), 64-bit ALU, sized loads/stores, forward jumps, helper
//!   calls, and `exit`.
//! * [`asm`] — a label-based program builder. TScout's Codegen emits real
//!   bytecode through it (loops are unrolled at codegen time, as BCC does
//!   for kernel-5.4-era programs).
//! * [`verifier`] — a static verifier in the spirit of the kernel's: it
//!   walks every execution path, tracks register types (scalar, pointer to
//!   stack/context/map-value, map handle), enforces bounds on every memory
//!   access, requires null checks on map lookups, rejects back edges
//!   (unbounded loops), uninitialized reads, and over-long programs.
//! * [`maps`] — BPF maps: hash, array, per-CPU array, stack (used for
//!   recursive operators, paper §5.2), and the perf-event ring buffer that
//!   ships samples to the user-space Processor (bounded, overwrites when
//!   full — paper §3.2).
//! * [`vm`] — the interpreter. It trusts the verifier but still checks
//!   everything defensively; helper calls reach the simulated kernel
//!   through the [`vm::HelperWorld`] trait, which keeps this crate
//!   independent of `tscout-kernel`.
//! * [`loader`] — load → verify → attach lifecycle, including detach and
//!   reload for dynamic feature selection (paper §5.4).
//!
//! The crate is deliberately self-contained (its only dependency is the
//! zero-dep in-workspace telemetry crate, for profiler frame guards) so
//! the verifier and interpreter can be property-tested in isolation.

pub mod asm;
pub mod insn;
pub mod loader;
pub mod maps;
pub mod verifier;
pub mod vm;

pub use asm::ProgramBuilder;
pub use insn::{AluOp, Cond, Helper, Insn, Reg, Size, Src};
pub use loader::{LoadError, Loader, ProgId};
pub use maps::{MapDef, MapId, MapKind, MapOpStats, MapRegistry, RingStats};
pub use verifier::{verify, verify_with_stats, VerifyError, VerifyStats};
pub use vm::{ExecStats, HelperWorld, Vm, VmError};
