//! # tscout-bpf — a from-scratch BPF-style virtual machine
//!
//! TScout generates a kernel-space program (via Linux BPF) that collects
//! metrics at operating-unit boundaries (paper §3). This crate reproduces
//! the BPF substrate that program runs on:
//!
//! * [`insn`] — a register ISA modeled on eBPF: eleven registers
//!   (`R0`–`R10`), 64-bit ALU, sized loads/stores, bidirectional jumps,
//!   helper calls, and `exit`.
//! * [`asm`] — a label-based program builder. TScout's Codegen emits real
//!   bytecode through it, including bounded loops for per-counter
//!   snapshotting (unrolling remains available as a fallback mode).
//! * [`tnum`] — tristate numbers, the kernel verifier's known-bits
//!   abstract domain, used by the verifier's scalar value tracking.
//! * [`verifier`] — a range-tracking abstract interpreter in the spirit
//!   of the kernel's: it walks every execution path, tracks register
//!   types and scalar value ranges (tnum + signed/unsigned bounds),
//!   refines both arms of conditional branches, proves variable-offset
//!   accesses in bounds, accepts bounded loops (back edges with a
//!   per-site trip budget), prunes subsumed states at jump targets, and
//!   rejects uninitialized reads, unbounded loops, and over-long
//!   programs.
//! * [`maps`] — BPF maps: hash, array, per-CPU array, stack (used for
//!   recursive operators, paper §5.2), and the perf-event ring buffer that
//!   ships samples to the user-space Processor (bounded, overwrites when
//!   full — paper §3.2).
//! * [`vm`] — the interpreter. It trusts the verifier but still checks
//!   everything defensively; helper calls reach the simulated kernel
//!   through the [`vm::HelperWorld`] trait, which keeps this crate
//!   independent of `tscout-kernel`.
//! * [`opt`] — a load-time optimizer seeded by verifier facts: CFG and
//!   dominator discovery, liveness and reaching-definitions dataflow,
//!   constant/copy propagation, dead-arm branch folding, redundant
//!   bounds-check elision, dead-code/dead-store elimination, peephole
//!   simplification, and bounded-loop unrolling — every collector
//!   program is shortened before interpretation, and must re-verify.
//! * [`loader`] — load → verify → optimize → attach lifecycle, including
//!   detach and reload for dynamic feature selection (paper §5.4).
//!
//! The crate is deliberately self-contained (its only dependency is the
//! zero-dep in-workspace telemetry crate, for profiler frame guards) so
//! the verifier and interpreter can be property-tested in isolation.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod asm;
pub mod insn;
pub mod loader;
pub mod maps;
pub mod opt;
pub mod tnum;
pub mod verifier;
pub mod vm;

pub use asm::ProgramBuilder;
pub use insn::{AluOp, Cond, Helper, Insn, Reg, Size, Src};
pub use loader::{LoadError, Loader, ProgId};
pub use maps::{MapDef, MapId, MapKind, MapOpStats, MapRegistry, RingStats};
pub use opt::{optimize, OptError, OptOptions, OptStats, Optimized, PASS_NAMES};
pub use tnum::Tnum;
pub use verifier::{verify, verify_with_log, verify_with_stats, VerifyError, VerifyStats};
pub use vm::{ExecStats, HelperWorld, Vm, VmError};
