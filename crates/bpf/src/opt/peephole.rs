//! Peephole simplification: algebraic identities on single
//! instructions, adjacent immediate add/sub merging within a block, and
//! removal of no-op jumps.
//!
//! Every rewrite preserves the VM's exact 64-bit wrapping semantics
//! (`vm::alu`), so the optimized program computes bit-identical
//! register values.

use crate::insn::{AluOp, Insn, Src};
use crate::opt::cfg::{compact, Cfg};

#[derive(Debug, Clone, Copy, Default)]
pub struct PeepCounts {
    pub removed: u64,
    pub rewritten: u64,
}

/// One pass of peephole rewrites. Call to fixed point via the driver.
pub fn peephole(prog: &mut Vec<Insn>) -> PeepCounts {
    let mut counts = PeepCounts::default();
    let mut kill = vec![false; prog.len()];

    for pc in 0..prog.len() {
        match prog[pc] {
            // `jmp +0` falls through anyway.
            Insn::Jump { cond: None, off: 0 } => {
                kill[pc] = true;
                counts.removed += 1;
            }
            // `mov rX, rX` is a no-op.
            Insn::Alu {
                op: AluOp::Mov,
                dst,
                src: Src::Reg(s),
            } if dst == s => {
                kill[pc] = true;
                counts.removed += 1;
            }
            Insn::Alu {
                op,
                dst,
                src: Src::Imm(i),
            } => {
                let identity = matches!(
                    (op, i),
                    (AluOp::Add | AluOp::Sub | AluOp::Or | AluOp::Xor, 0)
                        | (AluOp::Lsh | AluOp::Rsh | AluOp::Arsh, 0)
                        | (AluOp::Mul | AluOp::Div, 1)
                        | (AluOp::And, -1)
                );
                if identity {
                    kill[pc] = true;
                    counts.removed += 1;
                    continue;
                }
                // Absorbing elements rewrite to constant movs.
                let absorbed = match (op, i) {
                    (AluOp::Mul | AluOp::And, 0) => Some(0i64),
                    (AluOp::Mod, 1) => Some(0),
                    (AluOp::Or, -1) => Some(-1),
                    _ => None,
                };
                if let Some(v) = absorbed {
                    prog[pc] = Insn::Alu {
                        op: AluOp::Mov,
                        dst,
                        src: Src::Imm(v),
                    };
                    counts.rewritten += 1;
                }
            }
            _ => {}
        }
    }
    compact(prog, &kill);

    // Merge adjacent `add/sub dst, imm` pairs on the same register
    // within a block (the second pc must not be a jump target). The
    // merge is exact under wrapping arithmetic.
    let cfg = Cfg::build(prog);
    let mut kill = vec![false; prog.len()];
    for b in &cfg.blocks {
        let mut pc = b.start;
        while pc + 1 < b.end {
            let (a, c) = (prog[pc], prog[pc + 1]);
            if let (
                Insn::Alu {
                    op: op1,
                    dst: d1,
                    src: Src::Imm(i1),
                },
                Insn::Alu {
                    op: op2,
                    dst: d2,
                    src: Src::Imm(i2),
                },
            ) = (a, c)
            {
                let signed = |op: AluOp, i: i64| match op {
                    AluOp::Add => Some(i),
                    AluOp::Sub => Some(i.wrapping_neg()),
                    _ => None,
                };
                if d1 == d2 {
                    if let (Some(s1), Some(s2)) = (signed(op1, i1), signed(op2, i2)) {
                        let total = s1.wrapping_add(s2);
                        prog[pc + 1] = Insn::Alu {
                            op: AluOp::Add,
                            dst: d1,
                            src: Src::Imm(total),
                        };
                        kill[pc] = true;
                        counts.removed += 1;
                        pc += 2;
                        continue;
                    }
                }
            }
            pc += 1;
        }
    }
    compact(prog, &kill);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Cond, Reg, R0, R6, R7};
    use crate::maps::MapRegistry;
    use crate::vm::{NullWorld, Vm};

    fn mov_imm(dst: Reg, v: i64) -> Insn {
        Insn::Alu {
            op: AluOp::Mov,
            dst,
            src: Src::Imm(v),
        }
    }

    fn run_r0(prog: &[Insn]) -> u64 {
        let mut maps = MapRegistry::new();
        let mut world = NullWorld::default();
        Vm::run(prog, &[], &mut maps, &mut world)
            .expect("program runs")
            .0
    }

    #[test]
    fn identities_are_removed() {
        let mut prog = vec![
            mov_imm(R0, 5),
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Imm(0),
            },
            Insn::Alu {
                op: AluOp::Mul,
                dst: R0,
                src: Src::Imm(1),
            },
            Insn::Alu {
                op: AluOp::And,
                dst: R0,
                src: Src::Imm(-1),
            },
            Insn::Alu {
                op: AluOp::Mov,
                dst: R0,
                src: Src::Reg(R0),
            },
            Insn::Exit,
        ];
        let before = run_r0(&prog);
        let c = peephole(&mut prog);
        assert_eq!(c.removed, 4);
        assert_eq!(prog.len(), 2);
        assert_eq!(run_r0(&prog), before);
    }

    #[test]
    fn absorbing_ops_become_constant_movs() {
        let mut prog = vec![
            mov_imm(R0, 123),
            Insn::Alu {
                op: AluOp::Mul,
                dst: R0,
                src: Src::Imm(0),
            },
            Insn::Exit,
        ];
        let before = run_r0(&prog);
        let c = peephole(&mut prog);
        assert_eq!(c.rewritten, 1);
        assert_eq!(prog[1], mov_imm(R0, 0));
        assert_eq!(run_r0(&prog), before);
    }

    #[test]
    fn adjacent_add_sub_merge_is_exact() {
        let mut prog = vec![
            mov_imm(R6, 100),
            Insn::Alu {
                op: AluOp::Add,
                dst: R6,
                src: Src::Imm(7),
            },
            Insn::Alu {
                op: AluOp::Sub,
                dst: R6,
                src: Src::Imm(3),
            },
            Insn::Alu {
                op: AluOp::Mov,
                dst: R0,
                src: Src::Reg(R6),
            },
            Insn::Exit,
        ];
        let before = run_r0(&prog);
        let c = peephole(&mut prog);
        assert_eq!(c.removed, 1);
        assert_eq!(run_r0(&prog), before);
        assert_eq!(before, 104);
    }

    #[test]
    fn merge_respects_block_boundaries() {
        // The second add is a jump target: merging would change the
        // value seen when entering via the jump.
        let mut prog = vec![
            mov_imm(R6, 0),
            mov_imm(R7, 1),
            Insn::Jump {
                cond: Some((Cond::Eq, R7, Src::Imm(1))),
                off: 1,
            }, // → 4 (the second add)
            Insn::Alu {
                op: AluOp::Add,
                dst: R6,
                src: Src::Imm(10),
            },
            Insn::Alu {
                op: AluOp::Add,
                dst: R6,
                src: Src::Imm(1),
            },
            Insn::Alu {
                op: AluOp::Mov,
                dst: R0,
                src: Src::Reg(R6),
            },
            Insn::Exit,
        ];
        let before = run_r0(&prog);
        peephole(&mut prog);
        assert_eq!(run_r0(&prog), before);
        assert_eq!(before, 1);
    }

    #[test]
    fn noop_jump_is_removed_and_targets_stay_valid() {
        let mut prog = vec![
            mov_imm(R0, 1),
            Insn::Jump { cond: None, off: 0 },
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Imm(2),
            },
            Insn::Exit,
        ];
        let before = run_r0(&prog);
        let c = peephole(&mut prog);
        assert!(c.removed >= 1);
        assert_eq!(run_r0(&prog), before);
    }
}
