//! Branch folding, bounds-check elision, jump threading, and
//! unreachable-code elimination.
//!
//! The verifier walks every feasible path and records, per conditional
//! jump, whether each arm was ever live. A dead arm is a *proof by
//! contradiction* (refining the operand ranges through the condition
//! yields an empty range), so folding it cannot change any execution:
//!
//! * taken arm dead  → the jump never fires: delete it;
//! * fall-through dead → the jump always fires: make it unconditional.
//!
//! Re-verification stays green because a dead arm means the surviving
//! arm's refinement was already a no-op — the ranges flowing out of the
//! folded jump are exactly the ranges that flowed in.
//!
//! **Check elision vs. branch folding.** Both use the same dead-arm
//! facts; the split is *why* the arm is dead. If the verifier proved it
//! from constant operands, that's classic constant-branch folding. If
//! an operand is non-constant and the proof needed the interval/tnum
//! span of a verified pointer-bounds guard (e.g. `jge r9, 7` with
//! r9 ∈ [0,6] from a loop bound), the jump is a redundant bounds check
//! and its removal is accounted as `checkelide`.

use crate::insn::{Insn, Src};
use crate::opt::cfg::{compact, reachable};
use crate::verifier::PcFacts;

#[derive(Debug, Clone, Copy, Default)]
pub struct FoldCounts {
    /// Instructions removed / rewritten with constant operands.
    pub fold_removed: u64,
    pub fold_rewritten: u64,
    /// Instructions removed / rewritten via range-proven dead arms.
    pub elide_removed: u64,
    pub elide_rewritten: u64,
}

/// Fold conditional jumps whose arms the verifier proved dead.
pub(crate) fn fold_branches(prog: &mut Vec<Insn>, facts: &[PcFacts]) -> FoldCounts {
    let mut counts = FoldCounts::default();
    let mut kill = vec![false; prog.len()];
    for pc in 0..prog.len() {
        let f = &facts[pc];
        if !f.visited {
            continue;
        }
        let Insn::Jump {
            cond: Some((_, dst, src)),
            off,
        } = prog[pc]
        else {
            continue;
        };
        if f.taken_live && f.fallthrough_live {
            continue;
        }
        if !f.taken_live && !f.fallthrough_live {
            // Visited but neither arm recorded can only mean the state
            // errored at this pc — impossible on a verified program.
            continue;
        }
        // Statically decidable (both operands constant) → branch fold;
        // interval-proven with a non-constant operand → check elision.
        let src_const = match src {
            Src::Imm(_) => true,
            Src::Reg(r) => f.reg_const[r.index()].value().is_some(),
        };
        let decidable = src_const && f.reg_const[dst.index()].value().is_some();
        if !f.taken_live {
            // Never taken: the check is pure fall-through — delete it.
            kill[pc] = true;
            if decidable {
                counts.fold_removed += 1;
            } else {
                counts.elide_removed += 1;
            }
        } else {
            // Always taken: drop the condition.
            prog[pc] = Insn::Jump { cond: None, off };
            if decidable {
                counts.fold_rewritten += 1;
            } else {
                counts.elide_rewritten += 1;
            }
        }
    }
    compact(prog, &kill);
    counts
}

/// Retarget jumps that land on unconditional jumps (following chains),
/// and collapse `ja → exit` into a direct `exit`. Returns rewrites.
pub fn jump_thread(prog: &mut [Insn]) -> u64 {
    let mut rewrites = 0u64;
    let n = prog.len();
    for pc in 0..n {
        let Insn::Jump { cond, off } = prog[pc] else {
            continue;
        };
        let mut target = pc as i64 + 1 + off as i64;
        // Follow a chain of unconditional jumps (hop cap guards cycles).
        let mut hops = 0;
        while hops < 64 {
            let t = target as usize;
            if !(0..n as i64).contains(&target) {
                break;
            }
            match prog[t] {
                Insn::Jump {
                    cond: None,
                    off: o2,
                } if o2 != -1 => {
                    target = t as i64 + 1 + o2 as i64;
                    hops += 1;
                }
                _ => break,
            }
        }
        let final_off = (target - (pc as i64 + 1)) as i32;
        // `ja → exit` runs one instruction fewer as a plain exit.
        // (Conditional jumps still need the branch; retargeting them to
        // the exit directly is still worth it if the chain moved.)
        if (0..n as i64).contains(&target)
            && matches!(prog[target as usize], Insn::Exit)
            && cond.is_none()
        {
            prog[pc] = Insn::Exit;
            rewrites += 1;
            continue;
        }
        if final_off != off {
            prog[pc] = Insn::Jump {
                cond,
                off: final_off,
            };
            rewrites += 1;
        }
    }
    rewrites
}

/// Remove instructions no execution can reach. Returns removed count.
pub fn unreachable_elim(prog: &mut Vec<Insn>) -> u64 {
    if prog.is_empty() {
        return 0;
    }
    let seen = reachable(prog);
    let kill: Vec<bool> = seen.iter().map(|&s| !s).collect();
    compact(prog, &kill) as u64
}

/// Sanity helper for tests: every jump target stays in bounds.
#[cfg(test)]
fn targets_in_bounds(prog: &[Insn]) -> bool {
    (0..prog.len()).all(|pc| match prog[pc] {
        Insn::Jump { off, .. } => {
            let t = pc as i64 + 1 + off as i64;
            (0..prog.len() as i64).contains(&t)
        }
        _ => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, Cond, Reg, R0, R6, R9};
    use crate::maps::MapRegistry;
    use crate::verifier::verify_with_facts;

    fn mov_imm(dst: Reg, v: i64) -> Insn {
        Insn::Alu {
            op: AluOp::Mov,
            dst,
            src: Src::Imm(v),
        }
    }

    fn facts_for(prog: &[Insn]) -> Vec<PcFacts> {
        let maps = MapRegistry::new();
        let (res, facts) = verify_with_facts(prog, &maps, 0);
        res.expect("test program must verify");
        facts
    }

    #[test]
    fn constant_dead_arm_is_deleted() {
        // r6 = 3; jeq r6, 5 → never taken; the guarded mov survives.
        let mut prog = vec![
            mov_imm(R6, 3),
            Insn::Jump {
                cond: Some((Cond::Eq, R6, Src::Imm(5))),
                off: 1,
            },
            mov_imm(R0, 1),
            Insn::Exit,
        ];
        let facts = facts_for(&prog);
        let c = fold_branches(&mut prog, &facts);
        assert_eq!(c.fold_removed, 1);
        assert_eq!(c.elide_removed, 0);
        assert_eq!(prog, vec![mov_imm(R6, 3), mov_imm(R0, 1), Insn::Exit]);
        assert!(targets_in_bounds(&prog));
    }

    #[test]
    fn range_proven_check_is_elided_not_folded() {
        // r9 = pid_tgid & 3 ∈ [0,3]; jge r9, 8 can never fire — that is
        // a redundant bounds check, proven by intervals, not constants.
        let mut prog = vec![
            Insn::Call {
                helper: crate::insn::Helper::GetCurrentPidTgid,
            },
            Insn::Alu {
                op: AluOp::Mov,
                dst: R9,
                src: Src::Reg(R0),
            },
            Insn::Alu {
                op: AluOp::And,
                dst: R9,
                src: Src::Imm(3),
            },
            Insn::Jump {
                cond: Some((Cond::Ge, R9, Src::Imm(8))),
                off: 1,
            },
            mov_imm(R0, 1),
            Insn::Exit,
        ];
        let facts = facts_for(&prog);
        let c = fold_branches(&mut prog, &facts);
        assert_eq!(c.elide_removed, 1, "interval proof → check elision");
        assert_eq!(c.fold_removed, 0);
        assert_eq!(prog.len(), 5);
    }

    #[test]
    fn always_taken_becomes_unconditional() {
        // r6 = 9; jge r6, 5 always fires → plain ja; the skipped mov
        // becomes unreachable and is removed by unreachable_elim.
        let mut prog = vec![
            mov_imm(R6, 9),
            Insn::Jump {
                cond: Some((Cond::Ge, R6, Src::Imm(5))),
                off: 1,
            },
            mov_imm(R0, 7), // dead fall-through
            mov_imm(R0, 1),
            Insn::Exit,
        ];
        let facts = facts_for(&prog);
        let c = fold_branches(&mut prog, &facts);
        assert_eq!(c.fold_rewritten, 1);
        assert!(matches!(prog[1], Insn::Jump { cond: None, .. }));
        let removed = unreachable_elim(&mut prog);
        assert_eq!(removed, 1);
        assert_eq!(prog[2], mov_imm(R0, 1));
    }

    #[test]
    fn jump_threading_follows_chains_and_inlines_exit() {
        // 0: ja → 2; 2: ja → 4; 4: exit — pc0 becomes a direct exit.
        let mut prog = vec![
            Insn::Jump { cond: None, off: 1 },
            mov_imm(R0, 0),
            Insn::Jump { cond: None, off: 1 },
            mov_imm(R0, 0),
            Insn::Exit,
        ];
        let n = jump_thread(&mut prog);
        assert!(n >= 1);
        assert_eq!(prog[0], Insn::Exit);
    }

    #[test]
    fn conditional_jump_threads_through_trampoline() {
        // jeq → ja → target: the conditional retargets past the ja.
        let mut prog = vec![
            mov_imm(R6, 1),
            Insn::Jump {
                cond: Some((Cond::Eq, R6, Src::Imm(1))),
                off: 1,
            }, // → 3
            mov_imm(R0, 0),
            Insn::Jump { cond: None, off: 1 }, // → 5
            mov_imm(R0, 2),
            mov_imm(R0, 1),
            Insn::Exit,
        ];
        let n = jump_thread(&mut prog);
        assert_eq!(n, 1);
        match prog[1] {
            Insn::Jump { cond: Some(_), off } => assert_eq!(off, 3), // 1+1+3 = 5
            ref other => panic!("{other:?}"),
        }
    }
}
