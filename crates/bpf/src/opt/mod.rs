//! Load-time optimizer for verified collector programs.
//!
//! TScout interposes this pass pipeline between verification and
//! interpretation: the verifier has already computed per-pc constant
//! and branch-liveness facts as a byproduct of its abstract
//! interpretation, and the optimizer turns those proofs into shorter
//! programs. Because collectors run on every tracepoint crossing, each
//! removed instruction is shaved from *every* begin/end pair the
//! probed system executes.
//!
//! The pipeline (one fixed-point iteration):
//!
//! 1. re-verify, exporting per-pc facts ([`crate::verifier`]);
//! 2. verifier-fact constant propagation (`constprop`);
//! 3. dead-arm branch folding + bounds-check elision (`branchfold`,
//!    `checkelide`);
//! 4. reaching-def constant forwarding (`rdconst`);
//! 5. block-local copy propagation (`copyprop`);
//! 6. liveness dead-code elimination (`dce`);
//! 7. dead stack-store elimination (`deadstore`);
//! 8. algebraic peephole simplification (`peephole`);
//! 9. jump threading (`jumpthread`) and unreachable-code removal
//!    (`unreachable`);
//! 10. bounded-loop unrolling (`unroll`), which re-seeds steps 1–9 on
//!     the next iteration (unrolled counters become constants).
//!
//! Iterating to a fixed point matters: unrolling exposes constants,
//! constants kill bounds checks, dead checks expose dead code. The
//! driver stops when an iteration changes nothing or after
//! [`OptOptions::max_iterations`].
//!
//! **Hard bar:** the optimized program must re-verify and produce
//! bit-identical samples. The driver enforces the first itself (any
//! failure returns [`OptError`] and callers fall back to the original
//! program); the differential test-suite enforces the second.

pub mod branchfold;
pub mod cfg;
pub mod constprop;
pub mod dataflow;
pub mod dce;
pub mod peephole;
pub mod unroll;

use crate::insn::{disassemble, Insn};
use crate::maps::MapRegistry;
use crate::verifier::{verify_with_facts, VerifyError};
use std::fmt;

/// Pass labels, in pipeline order. Indexes into [`OptStats::removed`]
/// and [`OptStats::rewritten`]; also the `pass` label on the
/// `tscout_opt_insns_removed_total` metric.
pub const PASS_NAMES: [&str; 11] = [
    "constprop",
    "branchfold",
    "checkelide",
    "rdconst",
    "copyprop",
    "dce",
    "deadstore",
    "peephole",
    "jumpthread",
    "unreachable",
    "unroll",
];

const P_CONSTPROP: usize = 0;
const P_BRANCHFOLD: usize = 1;
const P_CHECKELIDE: usize = 2;
const P_RDCONST: usize = 3;
const P_COPYPROP: usize = 4;
const P_DCE: usize = 5;
const P_DEADSTORE: usize = 6;
const P_PEEPHOLE: usize = 7;
const P_JUMPTHREAD: usize = 8;
const P_UNREACHABLE: usize = 9;
const P_UNROLL: usize = 10;

/// Tuning knobs. The defaults match the deployment path.
#[derive(Debug, Clone, Copy)]
pub struct OptOptions {
    /// Fixed-point cap: iterations of the full pipeline.
    pub max_iterations: usize,
    /// Maximum program length (insns) an unroll may expand to.
    pub unroll_budget: usize,
    /// Human-readable report cap in bytes (reports are diagnostics,
    /// not logs of record; long ones truncate).
    pub report_cap: usize,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            max_iterations: 8,
            unroll_budget: 4096,
            report_cap: 8192,
        }
    }
}

/// Per-pass and whole-pipeline statistics for one optimized program.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptStats {
    /// Full-pipeline iterations until fixed point (or the cap).
    pub iterations: u64,
    pub insns_before: u64,
    pub insns_after: u64,
    pub loops_unrolled: u64,
    /// Instructions removed, indexed by [`PASS_NAMES`].
    pub removed: [u64; 11],
    /// Instructions rewritten in place, indexed by [`PASS_NAMES`].
    pub rewritten: [u64; 11],
}

impl OptStats {
    pub fn removed_total(&self) -> u64 {
        self.removed.iter().sum()
    }

    pub fn rewritten_total(&self) -> u64 {
        self.rewritten.iter().sum()
    }

    /// Fold another program's stats into this accumulator.
    pub fn absorb(&mut self, other: &OptStats) {
        self.iterations += other.iterations;
        self.insns_before += other.insns_before;
        self.insns_after += other.insns_after;
        self.loops_unrolled += other.loops_unrolled;
        for i in 0..PASS_NAMES.len() {
            self.removed[i] += other.removed[i];
            self.rewritten[i] += other.rewritten[i];
        }
    }
}

/// A successfully optimized program plus its paper trail.
#[derive(Debug, Clone)]
pub struct Optimized {
    pub insns: Vec<Insn>,
    pub stats: OptStats,
    /// Capped human-readable report (per-iteration pass activity and
    /// the final disassembly).
    pub report: String,
}

/// Optimization failure. Callers are expected to fall back to the
/// unoptimized program — optimization is an upgrade, never a gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// The input program does not verify; nothing to optimize.
    Input(VerifyError),
    /// A rewrite produced a program the verifier rejects. This is an
    /// optimizer bug; the error carries the verifier's complaint.
    Reverify(VerifyError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Input(e) => write!(f, "input program failed verification: {e}"),
            OptError::Reverify(e) => {
                write!(f, "optimized program failed re-verification: {e}")
            }
        }
    }
}

impl std::error::Error for OptError {}

const TRUNCATED: &str = "... (report truncated)\n";

fn push_capped(report: &mut String, cap: usize, line: &str) {
    if report.len() >= cap || report.ends_with(TRUNCATED) {
        return;
    }
    if report.len() + line.len() + 1 > cap {
        report.push_str(TRUNCATED);
        return;
    }
    report.push_str(line);
    report.push('\n');
}

/// Run the full pipeline on `prog` to a fixed point.
///
/// `maps` and `ctx_size` must be the same environment the program will
/// execute under — the verifier facts (and therefore every rewrite)
/// are only sound for that environment.
pub fn optimize(
    prog: &[Insn],
    maps: &MapRegistry,
    ctx_size: usize,
    opts: &OptOptions,
) -> Result<Optimized, OptError> {
    let mut insns = prog.to_vec();
    let mut stats = OptStats {
        insns_before: insns.len() as u64,
        ..OptStats::default()
    };
    let mut report = String::new();
    push_capped(
        &mut report,
        opts.report_cap,
        &format!("optimizer: {} insns in", insns.len()),
    );

    for iter in 0..opts.max_iterations {
        let len_at_start = insns.len();
        let mut removed = [0u64; 11];
        let mut rewritten = [0u64; 11];

        // 1. (Re-)verify and export facts. The first failure is the
        // caller's problem (Input); later ones are ours (Reverify).
        let (res, facts) = verify_with_facts(&insns, maps, ctx_size);
        if let Err(e) = res {
            return Err(if iter == 0 {
                OptError::Input(e)
            } else {
                OptError::Reverify(e)
            });
        }

        // 2. Verifier facts → constant operands/folds (pc-stable).
        rewritten[P_CONSTPROP] += constprop::facts_constprop(&mut insns, &facts);

        // 3. Dead-arm folding. Compacts the program, so `facts` must
        // not be consulted after this point.
        let before = insns.len();
        let fc = branchfold::fold_branches(&mut insns, &facts);
        drop(facts);
        debug_assert_eq!(
            before - insns.len(),
            (fc.fold_removed + fc.elide_removed) as usize
        );
        removed[P_BRANCHFOLD] += fc.fold_removed;
        rewritten[P_BRANCHFOLD] += fc.fold_rewritten;
        removed[P_CHECKELIDE] += fc.elide_removed;
        rewritten[P_CHECKELIDE] += fc.elide_rewritten;

        // 4–5. Flow-based constant/copy forwarding.
        rewritten[P_RDCONST] += constprop::rd_constprop(&mut insns);
        rewritten[P_COPYPROP] += constprop::copyprop(&mut insns);

        // 6–7. Dead code and dead stores.
        removed[P_DCE] += dce::dce(&mut insns);
        removed[P_DEADSTORE] += dce::dead_stores(&mut insns);

        // 8. Algebraic identities.
        let pc = peephole::peephole(&mut insns);
        removed[P_PEEPHOLE] += pc.removed;
        rewritten[P_PEEPHOLE] += pc.rewritten;

        // 9. Control-flow cleanup.
        rewritten[P_JUMPTHREAD] += branchfold::jump_thread(&mut insns);
        removed[P_UNREACHABLE] += branchfold::unreachable_elim(&mut insns);

        // 10. Loop unrolling last: it grows the program, and the next
        // iteration's passes shrink the copies back down.
        let unrolled = unroll::unroll(&mut insns, opts.unroll_budget);
        stats.loops_unrolled += unrolled;
        rewritten[P_UNROLL] += unrolled;

        stats.iterations = iter as u64 + 1;
        for i in 0..PASS_NAMES.len() {
            stats.removed[i] += removed[i];
            stats.rewritten[i] += rewritten[i];
        }

        let activity: Vec<String> = PASS_NAMES
            .iter()
            .enumerate()
            .filter(|&(i, _)| removed[i] + rewritten[i] > 0)
            .map(|(i, name)| format!("{name}:-{}/~{}", removed[i], rewritten[i]))
            .collect();
        push_capped(
            &mut report,
            opts.report_cap,
            &format!(
                "iter {}: {} -> {} insns [{}]",
                iter + 1,
                len_at_start,
                insns.len(),
                activity.join(" ")
            ),
        );

        let changed = insns.len() != len_at_start
            || removed.iter().sum::<u64>() + rewritten.iter().sum::<u64>() > 0;
        if !changed {
            break;
        }
    }

    // Hard bar: the result must still verify. (The loop's own head
    // re-verifies every intermediate program except the last one.)
    let (res, _) = verify_with_facts(&insns, maps, ctx_size);
    if let Err(e) = res {
        return Err(OptError::Reverify(e));
    }

    stats.insns_after = insns.len() as u64;
    push_capped(
        &mut report,
        opts.report_cap,
        &format!(
            "optimizer: {} insns out ({} removed, {} rewritten, {} loops unrolled, {} iterations)",
            insns.len(),
            stats.removed_total(),
            stats.rewritten_total(),
            stats.loops_unrolled,
            stats.iterations,
        ),
    );
    for line in disassemble(&insns).lines() {
        push_capped(&mut report, opts.report_cap, line);
    }

    Ok(Optimized {
        insns,
        stats,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, Cond, Reg, Src, R0, R6};
    use crate::vm::{NullWorld, Vm};

    fn mov_imm(dst: Reg, v: i64) -> Insn {
        Insn::Alu {
            op: AluOp::Mov,
            dst,
            src: Src::Imm(v),
        }
    }

    fn run_r0(prog: &[Insn]) -> u64 {
        let mut maps = MapRegistry::new();
        let mut world = NullWorld::default();
        Vm::run(prog, &[], &mut maps, &mut world)
            .expect("program runs")
            .0
    }

    /// sum of 0..8 via a counted loop, plus a redundant bounds check.
    fn loopy_program() -> Vec<Insn> {
        vec![
            mov_imm(R0, 0),
            mov_imm(R6, 0),
            Insn::Jump {
                cond: Some((Cond::Ge, R6, Src::Imm(8))),
                off: 4,
            },
            Insn::Jump {
                cond: Some((Cond::Gt, R6, Src::Imm(100))),
                off: 3,
            }, // redundant: r6 ∈ [0,7] here
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Reg(R6),
            },
            Insn::Alu {
                op: AluOp::Add,
                dst: R6,
                src: Src::Imm(1),
            },
            Insn::Jump {
                cond: None,
                off: -5,
            },
            Insn::Exit,
        ]
    }

    #[test]
    fn loopy_program_collapses_to_constant() {
        let prog = loopy_program();
        let before = run_r0(&prog);
        assert_eq!(before, 28);
        let maps = MapRegistry::new();
        let o = optimize(&prog, &maps, 0, &OptOptions::default()).expect("optimizes");
        assert_eq!(run_r0(&o.insns), before, "bit-identical result");
        assert!(o.stats.loops_unrolled >= 1);
        assert!(
            o.insns.len() <= 3,
            "sum-of-constants should fold to mov+exit: {}",
            disassemble(&o.insns)
        );
        assert!(o.stats.insns_after < o.stats.insns_before);
        assert!(o.report.contains("insns out"));
    }

    #[test]
    fn redundant_check_is_attributed_to_checkelide() {
        // The jgt 100 inside the loop is range-proven dead. Depending
        // on whether the unroll lands first, it is removed either as a
        // check elision (loop form: r6 non-constant) or as a constant
        // fold (unrolled form). The pipeline runs checks before the
        // unroll, so the loop-form proof wins.
        let prog = loopy_program();
        let maps = MapRegistry::new();
        let o = optimize(&prog, &maps, 0, &OptOptions::default()).expect("optimizes");
        let ce = o.stats.removed[super::P_CHECKELIDE];
        assert!(ce >= 1, "expected checkelide credit, stats: {:?}", o.stats);
    }

    #[test]
    fn already_minimal_program_is_untouched() {
        let prog = vec![mov_imm(R0, 7), Insn::Exit];
        let maps = MapRegistry::new();
        let o = optimize(&prog, &maps, 0, &OptOptions::default()).expect("optimizes");
        assert_eq!(o.insns, prog);
        assert_eq!(o.stats.removed_total(), 0);
    }

    #[test]
    fn unverifiable_input_is_rejected_as_input_error() {
        // Reads uninitialized r5: the verifier rejects it.
        let prog = vec![
            Insn::Alu {
                op: AluOp::Mov,
                dst: R0,
                src: Src::Reg(crate::insn::R5),
            },
            Insn::Exit,
        ];
        let maps = MapRegistry::new();
        match optimize(&prog, &maps, 0, &OptOptions::default()) {
            Err(OptError::Input(_)) => {}
            other => panic!("expected Input error, got {other:?}"),
        }
    }

    #[test]
    fn report_is_capped() {
        let prog = loopy_program();
        let maps = MapRegistry::new();
        let opts = OptOptions {
            report_cap: 128,
            ..OptOptions::default()
        };
        let o = optimize(&prog, &maps, 0, &opts).expect("optimizes");
        assert!(
            o.report.len() <= 128 + 32,
            "cap respected: {}",
            o.report.len()
        );
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = OptStats::default();
        let mut b = OptStats::default();
        b.removed[P_DCE] = 3;
        b.insns_before = 10;
        b.insns_after = 7;
        b.iterations = 2;
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.removed[P_DCE], 6);
        assert_eq!(a.insns_before, 20);
        assert_eq!(a.iterations, 4);
    }
}
