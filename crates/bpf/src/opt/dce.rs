//! Dead-code and dead-store elimination.
//!
//! `dce` removes pure register-writing instructions whose result no
//! path can observe (liveness-driven). `dead_stores` removes stack
//! stores whose every byte is overwritten before any possible read.
//!
//! Soundness notes:
//! * Only side-effect-free instructions are candidates: `Alu`, `Load`,
//!   `LoadMap`. `Store`, `Call`, `Jump`, `Exit` are never removed here
//!   (calls mutate maps/rings; stores mutate memory; control flow is
//!   handled by the branch passes). Removing a dead `Load` can skip a
//!   map-op *meta counter* bump, but never changes register state,
//!   memory, or emitted samples — the bit-identity bar compares those.
//! * Re-verification stays green for dead stores because the covering
//!   store re-initializes the same stack bytes before any read; the
//!   verifier's `stack_init` state at every read is unchanged.

use crate::insn::{Insn, Size, R10};
use crate::opt::cfg::{compact, Cfg};
use crate::opt::dataflow::{insn_defs, insn_uses, Liveness};

/// Remove pure instructions whose defined registers are dead. Returns
/// the number of instructions removed.
pub fn dce(prog: &mut Vec<Insn>) -> u64 {
    if prog.is_empty() {
        return 0;
    }
    let cfg = Cfg::build(prog);
    let lv = Liveness::solve(prog, &cfg);
    let mut kill = vec![false; prog.len()];
    for (bi, b) in cfg.blocks.iter().enumerate() {
        // Walk the block backwards, maintaining the live set.
        let mut live = lv.live_out[bi];
        for pc in (b.start..b.end).rev() {
            let insn = &prog[pc];
            let defs = insn_defs(insn);
            let pure = matches!(
                insn,
                Insn::Alu { .. } | Insn::Load { .. } | Insn::LoadMap { .. }
            );
            if pure && defs != 0 && defs & live == 0 {
                kill[pc] = true;
                continue; // dead insn contributes no uses
            }
            live = (live & !defs) | insn_uses(insn);
        }
    }
    compact(prog, &kill) as u64
}

fn store_span(size: Size, off: i32) -> Option<(i32, u8)> {
    let bytes = match size {
        Size::B1 => 1u8,
        Size::B2 => 2,
        Size::B4 => 4,
        Size::B8 => 8,
    };
    Some((off, bytes))
}

/// Remove stack stores fully overwritten before any possible read.
///
/// Block-local and deliberately conservative: only stores based
/// directly on `R10` participate (derived pointers into the stack may
/// alias anything, so they neither seed nor get elided). Any `Load`
/// (the base could point into the stack) or `Call` (helpers read
/// argument buffers) invalidates all pending overwrites.
pub fn dead_stores(prog: &mut Vec<Insn>) -> u64 {
    if prog.is_empty() {
        return 0;
    }
    let cfg = Cfg::build(prog);
    let mut kill = vec![false; prog.len()];
    for b in &cfg.blocks {
        // Byte offsets (relative to fp) known to be overwritten later
        // in the block with no intervening read. -512..0 → index 0..512.
        let mut overwritten = [false; 512];
        for pc in (b.start..b.end).rev() {
            match &prog[pc] {
                Insn::Store {
                    size,
                    base,
                    off,
                    src: _,
                } if *base == R10 => {
                    let Some((start, len)) = store_span(*size, *off) else {
                        continue;
                    };
                    let mut all_covered = true;
                    let mut idxs = Vec::with_capacity(len as usize);
                    for i in 0..len as i32 {
                        let byte = start + i; // negative, fp-relative
                        let idx = byte + 512;
                        if !(0..512).contains(&idx) {
                            all_covered = false;
                            break;
                        }
                        idxs.push(idx as usize);
                        all_covered &= overwritten[idx as usize];
                    }
                    if all_covered && !idxs.is_empty() {
                        kill[pc] = true;
                    } else {
                        for idx in idxs {
                            overwritten[idx] = true;
                        }
                    }
                }
                // Stores through derived pointers write unknown bytes:
                // they must not be elided, but they also read nothing,
                // so pending overwrites stay valid.
                Insn::Store { .. } => {}
                // Any load may read the stack through a derived base.
                Insn::Load { .. } | Insn::Call { .. } => {
                    overwritten = [false; 512];
                }
                _ => {}
            }
        }
    }
    compact(prog, &kill) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, Cond, Helper, Reg, Src, R0, R1, R2, R6};

    fn mov_imm(dst: Reg, v: i64) -> Insn {
        Insn::Alu {
            op: AluOp::Mov,
            dst,
            src: Src::Imm(v),
        }
    }

    #[test]
    fn dce_removes_unused_movs_keeps_result_chain() {
        let mut prog = vec![
            mov_imm(R6, 42), // dead: never read
            mov_imm(R0, 7),
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Imm(1),
            },
            Insn::Exit,
        ];
        let removed = dce(&mut prog);
        assert_eq!(removed, 1);
        assert_eq!(prog.len(), 3);
        assert_eq!(prog[0], mov_imm(R0, 7));
    }

    #[test]
    fn dce_keeps_loop_carried_values() {
        // The counter is read by the back-edge condition: must survive.
        let mut prog = vec![
            mov_imm(R6, 0),
            Insn::Jump {
                cond: Some((Cond::Ge, R6, Src::Imm(3))),
                off: 2,
            },
            Insn::Alu {
                op: AluOp::Add,
                dst: R6,
                src: Src::Imm(1),
            },
            Insn::Jump {
                cond: None,
                off: -3,
            },
            mov_imm(R0, 0),
            Insn::Exit,
        ];
        let removed = dce(&mut prog);
        assert_eq!(removed, 0);
    }

    #[test]
    fn dce_never_touches_calls_or_stores() {
        // The call's R0 result is dead, but helpers have side effects.
        let mut prog = vec![
            mov_imm(R2, 0),
            Insn::Call {
                helper: Helper::KtimeGetNs,
            },
            Insn::Store {
                size: Size::B8,
                base: R10,
                off: -8,
                src: Src::Imm(1),
            },
            mov_imm(R0, 0),
            Insn::Exit,
        ];
        let removed = dce(&mut prog);
        // Only the `mov r2, 0` is removable (r2 clobbered by the call).
        assert_eq!(removed, 1);
        assert!(prog.iter().any(|i| matches!(i, Insn::Call { .. })));
        assert!(prog.iter().any(|i| matches!(i, Insn::Store { .. })));
    }

    #[test]
    fn dead_store_fully_overwritten_is_removed() {
        let mut prog = vec![
            Insn::Store {
                size: Size::B8,
                base: R10,
                off: -8,
                src: Src::Imm(1),
            }, // dead: fully covered below before any read
            Insn::Store {
                size: Size::B8,
                base: R10,
                off: -8,
                src: Src::Imm(2),
            },
            mov_imm(R0, 0),
            Insn::Exit,
        ];
        let removed = dead_stores(&mut prog);
        assert_eq!(removed, 1);
        assert!(matches!(
            prog[0],
            Insn::Store {
                src: Src::Imm(2),
                ..
            }
        ));
    }

    #[test]
    fn partial_overwrite_does_not_kill() {
        let mut prog = vec![
            Insn::Store {
                size: Size::B8,
                base: R10,
                off: -8,
                src: Src::Imm(1),
            },
            Insn::Store {
                size: Size::B4,
                base: R10,
                off: -8,
                src: Src::Imm(2),
            }, // covers only 4 of the 8 bytes
            mov_imm(R0, 0),
            Insn::Exit,
        ];
        let removed = dead_stores(&mut prog);
        assert_eq!(removed, 0);
    }

    #[test]
    fn intervening_load_blocks_dead_store() {
        let mut prog = vec![
            Insn::Store {
                size: Size::B8,
                base: R10,
                off: -8,
                src: Src::Imm(1),
            },
            Insn::Load {
                size: Size::B8,
                dst: R0,
                base: R10,
                off: -8,
            },
            Insn::Store {
                size: Size::B8,
                base: R10,
                off: -8,
                src: Src::Imm(2),
            },
            Insn::Exit,
        ];
        let removed = dead_stores(&mut prog);
        assert_eq!(removed, 0);
    }

    #[test]
    fn derived_pointer_store_is_never_elided() {
        // r1 = fp - 8 (derived); store via r1 must survive even though
        // a direct fp store later covers the same bytes.
        let mut prog = vec![
            Insn::Alu {
                op: AluOp::Mov,
                dst: R1,
                src: Src::Reg(R10),
            },
            Insn::Alu {
                op: AluOp::Add,
                dst: R1,
                src: Src::Imm(-8),
            },
            Insn::Store {
                size: Size::B8,
                base: R1,
                off: 0,
                src: Src::Imm(1),
            },
            Insn::Store {
                size: Size::B8,
                base: R10,
                off: -8,
                src: Src::Imm(2),
            },
            mov_imm(R0, 0),
            Insn::Exit,
        ];
        let removed = dead_stores(&mut prog);
        assert_eq!(removed, 0);
    }
}
