//! Constant and copy propagation.
//!
//! Three cooperating rewrites, all strictly in place (no instruction
//! moves, so pc-indexed verifier facts stay valid):
//!
//! * **Fact-seeded folding** — the verifier's tnum + interval domain
//!   already proved "register r equals constant c at pc" as a join over
//!   every path; we rewrite register operands to immediates and fold
//!   whole ALU ops whose destination is constant, evaluating with the
//!   VM's own [`crate::vm::alu`] so folded bits match execution
//!   exactly (wrapping, div-by-zero → 0, mod-by-zero → dst, masked
//!   shifts).
//! * **Reaching-def forwarding** — a use whose unique reaching
//!   definition is `mov r, imm` is rewritten without waiting for the
//!   next verifier round; an immediate has no dependencies, so the
//!   unique-def condition alone is sufficient.
//! * **Copy propagation** — block-local only: the verifier refines
//!   register ranges on branch edges, and branches terminate blocks, so
//!   a within-block copy substitution can never lose a refinement the
//!   re-verification pass needs. Jump operands are left untouched for
//!   the same reason (substituting them would redirect the refinement
//!   to the wrong register).
//!
//! Soundness of operand rewrites: a fact `Const(c)` is a join over an
//! over-approximation of all executions, so the register holds exactly
//! `c` whenever the instruction executes; `Src::Imm(c as i64)`
//! round-trips to the same 64-bit pattern in the VM.

use crate::insn::{AluOp, Insn, Src};
use crate::opt::cfg::Cfg;
use crate::opt::dataflow::{Defs, ReachingDefs, ENTRY_DEF};
use crate::verifier::PcFacts;
use crate::vm::alu;

/// Rewrite one `Src` operand to an immediate if the fact table proves
/// the register constant at this pc.
fn fold_src(src: &mut Src, consts: &dyn Fn(usize) -> Option<u64>) -> bool {
    if let Src::Reg(r) = *src {
        if let Some(c) = consts(r.index()) {
            *src = Src::Imm(c as i64);
            return true;
        }
    }
    false
}

/// Shared body of fact-seeded and reaching-def constant propagation:
/// `consts(reg)` answers "is this register a known constant just before
/// `insn` executes".
fn constprop_insn(insn: &mut Insn, consts: &dyn Fn(usize) -> Option<u64>) -> u64 {
    let mut rewrites = 0u64;
    match insn {
        Insn::Alu { op, dst, src } => {
            if *op != AluOp::Neg && fold_src(src, consts) {
                rewrites += 1;
            }
            // Fold the whole op when the destination is constant too.
            if *op != AluOp::Mov {
                let d = consts(dst.index());
                let folded = match (*op, d, *src) {
                    (AluOp::Neg, Some(d), _) => Some(alu(AluOp::Neg, d, 0)),
                    (_, Some(d), Src::Imm(i)) => Some(alu(*op, d, i as u64)),
                    _ => None,
                };
                if let Some(v) = folded {
                    *insn = Insn::Alu {
                        op: AluOp::Mov,
                        dst: *dst,
                        src: Src::Imm(v as i64),
                    };
                    rewrites += 1;
                }
            }
        }
        Insn::Store { src, .. } => {
            rewrites += u64::from(fold_src(src, consts));
        }
        _ => {}
    }
    rewrites
}

/// Fact-seeded constant folding/propagation over the whole program.
/// Returns the number of operand/instruction rewrites.
pub(crate) fn facts_constprop(prog: &mut [Insn], facts: &[PcFacts]) -> u64 {
    let mut rewrites = 0u64;
    for (pc, insn) in prog.iter_mut().enumerate() {
        let f = &facts[pc];
        if !f.visited {
            continue;
        }
        let consts = |r: usize| f.reg_const[r].value();
        rewrites += constprop_insn(insn, &consts);
        // Jump source operands may also be folded: the fact proves the
        // register constant on every path, so the verifier's branch
        // refinement of it was already a no-op.
        if let Insn::Jump {
            cond: Some((_, _, src)),
            ..
        } = insn
        {
            if fold_src(src, &consts) {
                rewrites += 1;
            }
        }
    }
    rewrites
}

/// Reaching-definitions constant forwarding: rewrite uses whose unique
/// reaching def is `mov r, imm`. Folds within the same optimizer
/// iteration what fact seeding would only catch after the next verify
/// round.
pub fn rd_constprop(prog: &mut [Insn]) -> u64 {
    if prog.is_empty() {
        return 0;
    }
    let cfg = Cfg::build(prog);
    let rd = ReachingDefs::solve(prog, &cfg);
    let mut rewrites = 0u64;
    for (bi, b) in cfg.blocks.iter().enumerate() {
        let mut cur: [Defs; 11] = rd.block_in[bi].clone();
        for pc in b.start..b.end {
            // Snapshot const-ness of each reg from its unique def.
            let consts = |r: usize| -> Option<u64> {
                let d = cur[r].unique()?;
                if d == ENTRY_DEF {
                    return None;
                }
                match prog[d as usize] {
                    Insn::Alu {
                        op: AluOp::Mov,
                        dst,
                        src: Src::Imm(c),
                    } if dst.index() == r => Some(c as u64),
                    _ => None,
                }
            };
            let mut insn = prog[pc];
            rewrites += constprop_insn(&mut insn, &consts);
            prog[pc] = insn;
            let defs = crate::opt::dataflow::insn_defs(&prog[pc]);
            for (r, d) in cur.iter_mut().enumerate() {
                if defs & (1 << r) != 0 {
                    *d = Defs::Sites(vec![pc as u32]);
                }
            }
        }
    }
    rewrites
}

/// Block-local copy propagation: after `mov dst, src`, reads of `dst`
/// become reads of `src` until either register is redefined. Jump
/// operands are excluded (see module docs).
pub fn copyprop(prog: &mut [Insn]) -> u64 {
    if prog.is_empty() {
        return 0;
    }
    let cfg = Cfg::build(prog);
    let mut rewrites = 0u64;
    for b in &cfg.blocks {
        // copy_of[i] = Some(j) means ri currently equals rj.
        let mut copy_of: [Option<u8>; 11] = [None; 11];
        let subst = |copy_of: &[Option<u8>; 11], r: crate::insn::Reg| -> Option<crate::insn::Reg> {
            copy_of[r.index()].map(crate::insn::Reg)
        };
        for slot in &mut prog[b.start..b.end] {
            let mut insn = *slot;
            let mut changed = false;
            match &mut insn {
                Insn::Alu { op, src, .. } if *op != AluOp::Neg => {
                    if let Src::Reg(r) = *src {
                        if let Some(s) = subst(&copy_of, r) {
                            *src = Src::Reg(s);
                            changed = true;
                        }
                    }
                }
                Insn::Load { base, .. } => {
                    if let Some(s) = subst(&copy_of, *base) {
                        *base = s;
                        changed = true;
                    }
                }
                Insn::Store { base, src, .. } => {
                    if let Some(s) = subst(&copy_of, *base) {
                        *base = s;
                        changed = true;
                    }
                    if let Src::Reg(r) = *src {
                        if let Some(s) = subst(&copy_of, r) {
                            *src = Src::Reg(s);
                            changed = true;
                        }
                    }
                }
                _ => {}
            }
            if changed {
                rewrites += 1;
                *slot = insn;
            }
            // Transfer: kill copies broken by this instruction's defs,
            // then record a new copy if this is a reg-to-reg move.
            let defs = crate::opt::dataflow::insn_defs(slot);
            for r in 0..11u8 {
                if defs & (1 << r) != 0 {
                    copy_of[r as usize] = None;
                    for c in &mut copy_of {
                        if *c == Some(r) {
                            *c = None;
                        }
                    }
                }
            }
            if let Insn::Alu {
                op: AluOp::Mov,
                dst,
                src: Src::Reg(s),
            } = *slot
            {
                if dst != s {
                    // Follow chains: if s is itself a copy of t, dst
                    // equals t as well (and t survived s's def).
                    let root = copy_of[s.index()].unwrap_or(s.0);
                    copy_of[dst.index()] = Some(root);
                }
            }
        }
    }
    rewrites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Cond, Reg, Size, R0, R1, R10, R2, R3, R6};
    use crate::maps::MapRegistry;
    use crate::verifier::verify_with_facts;

    fn mov_imm(dst: Reg, v: i64) -> Insn {
        Insn::Alu {
            op: AluOp::Mov,
            dst,
            src: Src::Imm(v),
        }
    }

    fn facts_for(prog: &[Insn]) -> Vec<PcFacts> {
        let maps = MapRegistry::new();
        let (res, facts) = verify_with_facts(prog, &maps, 0);
        res.expect("test program must verify");
        facts
    }

    #[test]
    fn facts_fold_alu_chains_to_movs() {
        // r6 = 7; r0 = r6; r0 *= 3 → all constant.
        let mut prog = vec![
            mov_imm(R6, 7),
            Insn::Alu {
                op: AluOp::Mov,
                dst: R0,
                src: Src::Reg(R6),
            },
            Insn::Alu {
                op: AluOp::Mul,
                dst: R0,
                src: Src::Imm(3),
            },
            Insn::Exit,
        ];
        let facts = facts_for(&prog);
        let n = facts_constprop(&mut prog, &facts);
        assert!(n >= 2, "expected operand + fold rewrites, got {n}");
        assert_eq!(prog[1], mov_imm(R0, 7));
        assert_eq!(prog[2], mov_imm(R0, 21));
    }

    #[test]
    fn folding_matches_vm_division_semantics() {
        // The verifier rejects statically-known division by zero, so
        // this fold can only trigger through `constprop_insn` on facts
        // from a div whose operand became constant late; exercise the
        // folder directly: r0 = 5; r0 /= 0 → mov r0, 0 (eBPF rule),
        // and r0 %= 0 keeps the dividend.
        let consts = |r: usize| if r == 0 { Some(5u64) } else { None };
        let mut div = Insn::Alu {
            op: AluOp::Div,
            dst: R0,
            src: Src::Imm(0),
        };
        constprop_insn(&mut div, &consts);
        assert_eq!(div, mov_imm(R0, 0));
        let mut rem = Insn::Alu {
            op: AluOp::Mod,
            dst: R0,
            src: Src::Imm(0),
        };
        constprop_insn(&mut rem, &consts);
        assert_eq!(rem, mov_imm(R0, 5));
    }

    #[test]
    fn join_over_paths_blocks_unsound_folding() {
        // r2 is 1 or 2 depending on an unknown branch: no constant fact
        // at the join, so the final add must NOT fold.
        let prog = vec![
            Insn::Call {
                helper: crate::insn::Helper::GetCurrentPidTgid,
            }, // r0 = unknown scalar
            mov_imm(R2, 1),
            Insn::Jump {
                cond: Some((Cond::Eq, R0, Src::Imm(0))),
                off: 1,
            },
            mov_imm(R2, 2),
            Insn::Alu {
                op: AluOp::Add,
                dst: R2,
                src: Src::Imm(10),
            },
            mov_imm(R0, 0),
            Insn::Exit,
        ];
        let mut prog = prog;
        let facts = facts_for(&prog);
        facts_constprop(&mut prog, &facts);
        assert!(
            matches!(prog[4], Insn::Alu { op: AluOp::Add, .. }),
            "add at the join must survive: {:?}",
            prog[4]
        );
    }

    #[test]
    fn rd_forwarding_rewrites_unique_mov_imm_defs() {
        // Straight line: r3 = 9; r0 = 0; r0 += r3 — no verifier needed.
        let mut prog = vec![
            mov_imm(R3, 9),
            mov_imm(R0, 0),
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Reg(R3),
            },
            Insn::Exit,
        ];
        let n = rd_constprop(&mut prog);
        assert!(n >= 1);
        // Operand forwarded AND folded (dst r0 also has unique imm def).
        assert_eq!(prog[2], mov_imm(R0, 9));
    }

    #[test]
    fn rd_forwarding_respects_merges() {
        let mut prog = vec![
            mov_imm(R1, 0),
            mov_imm(R2, 1),
            Insn::Jump {
                cond: Some((Cond::Eq, R1, Src::Imm(0))),
                off: 1,
            },
            mov_imm(R2, 5),
            Insn::Alu {
                op: AluOp::Add,
                dst: R2,
                src: Src::Imm(1),
            },
            Insn::Exit,
        ];
        rd_constprop(&mut prog);
        assert!(
            matches!(prog[4], Insn::Alu { op: AluOp::Add, .. }),
            "two defs reach the add: {:?}",
            prog[4]
        );
    }

    #[test]
    fn copyprop_substitutes_within_block_only() {
        // mov r2, r10; store [r2-8] → store [r10-8].
        let mut prog = vec![
            Insn::Alu {
                op: AluOp::Mov,
                dst: R2,
                src: Src::Reg(R10),
            },
            Insn::Store {
                size: Size::B8,
                base: R2,
                off: -8,
                src: Src::Imm(1),
            },
            mov_imm(R0, 0),
            Insn::Exit,
        ];
        let n = copyprop(&mut prog);
        assert_eq!(n, 1);
        assert!(
            matches!(prog[1], Insn::Store { base: R10, .. }),
            "{:?}",
            prog[1]
        );
    }

    #[test]
    fn copyprop_kills_on_redefinition() {
        // mov r2, r6; mov r6, 0; add r0, r2 — r2 ≠ r6 anymore.
        let mut prog = vec![
            mov_imm(R6, 3),
            mov_imm(R0, 0),
            Insn::Alu {
                op: AluOp::Mov,
                dst: R2,
                src: Src::Reg(R6),
            },
            mov_imm(R6, 0),
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Reg(R2),
            },
            Insn::Exit,
        ];
        copyprop(&mut prog);
        assert_eq!(
            prog[4],
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Reg(R2),
            },
            "copy must die when source is redefined"
        );
    }
}
