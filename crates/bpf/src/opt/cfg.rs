//! Basic-block discovery, CFG construction, dominators, and the shared
//! program-compaction utility every instruction-removing pass uses.
//!
//! Blocks end at jumps and `exit`; conditional jumps are block
//! terminators, which matters for soundness elsewhere: the verifier
//! refines register ranges only on branch *edges*, so any fact a pass
//! derives strictly inside a block cannot be invalidated by refinement.

use crate::insn::Insn;

/// A half-open instruction range `[start, end)` plus its CFG edges
/// (indices into [`Cfg::blocks`]).
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub start: usize,
    pub end: usize,
    pub succs: Vec<usize>,
    pub preds: Vec<usize>,
}

/// Control-flow graph over basic blocks, with immediate dominators.
#[derive(Debug, Clone)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    /// pc → owning block index.
    pub block_of: Vec<usize>,
    /// Immediate dominator per block; `None` for unreachable blocks,
    /// `Some(0)` for the entry (which dominates itself).
    pub idom: Vec<Option<usize>>,
    /// Reverse postorder over reachable blocks.
    pub rpo: Vec<usize>,
}

/// Static successors of the instruction at `pc`:
/// `(fall_through, jump_target)`. `exit` has neither; an unconditional
/// jump has only a target; a conditional jump has both.
pub fn insn_succs(prog: &[Insn], pc: usize) -> (Option<usize>, Option<usize>) {
    match prog[pc] {
        Insn::Exit => (None, None),
        Insn::Jump { cond, off } => {
            let target = pc as i64 + 1 + off as i64;
            let target = if (0..prog.len() as i64).contains(&target) {
                Some(target as usize)
            } else {
                None
            };
            if cond.is_some() {
                (Some(pc + 1).filter(|&p| p < prog.len()), target)
            } else {
                (None, target)
            }
        }
        _ => (Some(pc + 1).filter(|&p| p < prog.len()), None),
    }
}

impl Cfg {
    /// Build blocks, edges, reverse postorder, and dominators.
    pub fn build(prog: &[Insn]) -> Cfg {
        let n = prog.len();
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for pc in 0..n {
            if let Insn::Jump { off, .. } = prog[pc] {
                let target = pc as i64 + 1 + off as i64;
                if (0..n as i64).contains(&target) {
                    leader[target as usize] = true;
                }
            }
            if matches!(prog[pc], Insn::Jump { .. } | Insn::Exit) && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for (pc, is_leader) in leader.iter().enumerate() {
            if pc > start && *is_leader {
                blocks.push(Block {
                    start,
                    end: pc,
                    ..Block::default()
                });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(Block {
                start,
                end: n,
                ..Block::default()
            });
        }
        for (i, b) in blocks.iter().enumerate() {
            block_of[b.start..b.end].fill(i);
        }
        // Edges come from each block's terminator.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (i, b) in blocks.iter().enumerate() {
            let last = b.end - 1;
            let (ft, tgt) = insn_succs(prog, last);
            for succ_pc in [tgt, ft].into_iter().flatten() {
                edges.push((i, block_of[succ_pc]));
            }
        }
        for &(from, to) in &edges {
            blocks[from].succs.push(to);
            blocks[to].preds.push(from);
        }
        let mut cfg = Cfg {
            blocks,
            block_of,
            idom: Vec::new(),
            rpo: Vec::new(),
        };
        cfg.compute_rpo();
        cfg.compute_dominators();
        cfg
    }

    fn compute_rpo(&mut self) {
        let n = self.blocks.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut post = Vec::with_capacity(n);
        if n == 0 {
            return;
        }
        // Iterative DFS with an explicit successor cursor.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
            if *cursor < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[*cursor];
                *cursor += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        self.rpo = post;
    }

    /// Cooper–Harvey–Kennedy iterative dominator computation over RPO.
    fn compute_dominators(&mut self) {
        let n = self.blocks.len();
        self.idom = vec![None; n];
        if n == 0 {
            return;
        }
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in self.rpo.iter().enumerate() {
            rpo_index[b] = i;
        }
        self.idom[0] = Some(0);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in self.rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &self.blocks[b].preds {
                    if self.idom[p].is_none() {
                        continue; // unreachable predecessor
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => self.intersect(cur, p, &rpo_index),
                    });
                }
                if new_idom.is_some() && self.idom[b] != new_idom {
                    self.idom[b] = new_idom;
                    changed = true;
                }
            }
        }
    }

    fn intersect(&self, a: usize, b: usize, rpo_index: &[usize]) -> usize {
        let (mut a, mut b) = (a, b);
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = self.idom[a].expect("reachable block has idom");
            }
            while rpo_index[b] > rpo_index[a] {
                b = self.idom[b].expect("reachable block has idom");
            }
        }
        a
    }

    /// Does block `a` dominate block `b`? (Walks the idom chain.)
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

/// Which pcs can execution reach from pc 0?
pub fn reachable(prog: &[Insn]) -> Vec<bool> {
    let mut seen = vec![false; prog.len()];
    if prog.is_empty() {
        return seen;
    }
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(pc) = stack.pop() {
        let (ft, tgt) = insn_succs(prog, pc);
        for s in [ft, tgt].into_iter().flatten() {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Delete every killed instruction and re-aim surviving jumps. A jump
/// whose target was killed resolves to the next surviving pc — sound
/// because passes only kill instructions that are unreachable or have
/// no effect, so falling "through" them was always a no-op.
///
/// Returns the number of instructions removed.
pub fn compact(prog: &mut Vec<Insn>, kill: &[bool]) -> usize {
    debug_assert_eq!(prog.len(), kill.len());
    let n = prog.len();
    let removed = kill.iter().filter(|&&k| k).count();
    if removed == 0 {
        return 0;
    }
    // new_index[i] = number of survivors strictly before old pc i; for a
    // killed pc this is exactly the new pc of the next survivor.
    let mut new_index = vec![0usize; n + 1];
    let mut count = 0usize;
    for i in 0..n {
        new_index[i] = count;
        if !kill[i] {
            count += 1;
        }
    }
    new_index[n] = count;
    let mut out = Vec::with_capacity(count);
    for pc in 0..n {
        if kill[pc] {
            continue;
        }
        let mut insn = prog[pc];
        if let Insn::Jump { ref mut off, .. } = insn {
            let old_target = (pc as i64 + 1 + *off as i64).clamp(0, n as i64) as usize;
            let new_target = new_index[old_target] as i64;
            *off = (new_target - (new_index[pc] as i64 + 1)) as i32;
        }
        out.push(insn);
    }
    *prog = out;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, Cond, Src, R0, R1};

    fn mov0() -> Insn {
        Insn::Alu {
            op: AluOp::Mov,
            dst: R0,
            src: Src::Imm(0),
        }
    }

    fn ja(off: i32) -> Insn {
        Insn::Jump { cond: None, off }
    }

    fn jcond(off: i32) -> Insn {
        Insn::Jump {
            cond: Some((Cond::Eq, R1, Src::Imm(0))),
            off,
        }
    }

    #[test]
    fn diamond_blocks_edges_and_dominators() {
        // 0: mov        ── B0
        // 1: jeq +2 →4  ── B0 terminator
        // 2: mov        ── B1 (then side)
        // 3: ja +1 →5   ── B1
        // 4: mov        ── B2 (else side)
        // 5: exit       ── B3 (join)
        let prog = vec![mov0(), jcond(2), mov0(), ja(1), mov0(), Insn::Exit];
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.blocks.len(), 4);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        assert_eq!(cfg.block_of[5], 3);
        assert_eq!(cfg.blocks[3].preds.len(), 2);
        // Entry dominates everything; neither arm dominates the join.
        assert!(cfg.dominates(0, 3));
        assert!(!cfg.dominates(1, 3));
        assert!(!cfg.dominates(2, 3));
        assert_eq!(cfg.idom[3], Some(0));
    }

    #[test]
    fn loop_back_edge_and_dominators() {
        // 0: mov            ── B0
        // 1: jeq +2 → 4     ── B1 (header)
        // 2: mov            ── B2 (body)
        // 3: ja -3 → 1      ── B2 back edge
        // 4: exit           ── B3
        let prog = vec![mov0(), jcond(2), mov0(), ja(-3), Insn::Exit];
        let cfg = Cfg::build(&prog);
        assert_eq!(cfg.blocks.len(), 4);
        let header = cfg.block_of[1];
        let body = cfg.block_of[2];
        assert!(cfg.blocks[body].succs.contains(&header));
        assert!(cfg.dominates(header, body));
        assert!(cfg.dominates(header, cfg.block_of[4]));
    }

    #[test]
    fn reachable_skips_jumped_over_code() {
        let prog = vec![ja(1), mov0(), Insn::Exit];
        let r = reachable(&prog);
        assert_eq!(r, vec![true, false, true]);
    }

    #[test]
    fn compact_retargets_jumps_over_killed_range() {
        // 0: ja +2 → 3, 1..2 killed, 3: exit — target shifts to 1.
        let mut prog = vec![ja(2), mov0(), mov0(), Insn::Exit];
        let removed = compact(&mut prog, &[false, true, true, false]);
        assert_eq!(removed, 2);
        assert_eq!(prog, vec![ja(0), Insn::Exit]);
    }

    #[test]
    fn compact_resolves_killed_target_to_next_survivor() {
        // Jump targets a killed no-op: it must land on the survivor after.
        let mut prog = vec![jcond(1), mov0(), mov0(), Insn::Exit];
        // Kill pc2 (the jump target stays pc... target is 0+1+1 = 2 killed).
        let removed = compact(&mut prog, &[false, false, true, false]);
        assert_eq!(removed, 1);
        // New layout: 0 jcond → target must now be pc 2 (exit).
        assert_eq!(prog.len(), 3);
        match prog[0] {
            Insn::Jump { off, .. } => assert_eq!(off, 1), // 0+1+1 = 2 = exit
            _ => panic!(),
        }
        assert_eq!(prog[2], Insn::Exit);
    }

    #[test]
    fn backward_jump_offsets_survive_compaction() {
        // 0 mov, 1 mov(kill), 2 jcond back to 0.
        let mut prog = vec![mov0(), mov0(), jcond(-3), Insn::Exit];
        compact(&mut prog, &[false, true, false, false]);
        match prog[1] {
            Insn::Jump { off, .. } => assert_eq!(off, -2), // 1+1-2 = 0
            _ => panic!(),
        }
    }
}
