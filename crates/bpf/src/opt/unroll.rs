//! Structural loop unrolling for counted loops with verifier-bounded
//! trip counts.
//!
//! The collector programs emitted by codegen use one canonical loop
//! shape (matching the kernel-BPF "bounded loop" idiom):
//!
//! ```text
//!   init:     mov  ctr, c0
//!   top:      jge  ctr, n, -> after     (exit check)
//!   body:     ...                        (straight-line, ctr not written)
//!   step:     add  ctr, s                (last body instruction)
//!   backedge: ja   -> top
//!   after:    ...
//! ```
//!
//! When the trip count is a compile-time constant and small, replacing
//! the region `[top..=backedge]` with `trips` copies of the body is an
//! exact semantic substitution: each copy ends with the `add`, so `ctr`
//! leaves the unrolled region holding `c0 + trips*s` just as the loop
//! form would, and the per-iteration exit check and back-edge jump
//! (2 executed instructions per trip, plus the final exit test) simply
//! disappear. Follow-up constant propagation then freezes `ctr` in each
//! copy, which in turn lets bounds checks inside the body fold away.
//!
//! Guard rails:
//! * operands pinned to `[0, 2^31]` (and step ≥ 1) so signed and
//!   unsigned comparisons agree and no wrapping can occur;
//! * `ctr` must not be written anywhere in the body except the step
//!   (calls clobber R0–R5, which the def-set check covers);
//! * no jump from outside the region may target into it;
//! * the header must dominate the back edge (a genuine natural loop);
//! * `trips` ≤ the verifier's loop bound and the expansion must fit
//!   the instruction budget.

use crate::insn::{AluOp, Cond, Insn, Src};
use crate::opt::cfg::Cfg;
use crate::opt::dataflow::insn_defs;

/// Verifier bound: loops beyond this many trips never verified anyway.
const MAX_TRIPS: u64 = 512;

const IMM_BOUND: i64 = 1 << 31;

#[derive(Debug, Clone, Copy)]
struct Candidate {
    top: usize,
    backedge: usize,
    trips: u64,
}

fn exit_cond(c: Cond) -> bool {
    matches!(c, Cond::Ge | Cond::Gt | Cond::SGe | Cond::SGt)
}

fn trip_count(cond: Cond, c0: i64, n: i64, s: i64) -> Option<u64> {
    let (c0, n, s) = (c0 as u64, n as u64, s as u64);
    let trips = match cond {
        // exit when ctr >= n
        Cond::Ge | Cond::SGe => {
            if c0 >= n {
                0
            } else {
                (n - c0).div_ceil(s)
            }
        }
        // exit when ctr > n
        Cond::Gt | Cond::SGt => {
            if c0 > n {
                0
            } else {
                (n - c0) / s + 1
            }
        }
        _ => return None,
    };
    Some(trips)
}

fn find_candidate(prog: &[Insn], budget: usize) -> Option<Candidate> {
    let n_insns = prog.len();
    let cfg = Cfg::build(prog);
    'tops: for top in 1..n_insns {
        let Insn::Jump {
            cond: Some((cond, ctr, Src::Imm(bound))),
            off,
        } = prog[top]
        else {
            continue;
        };
        if !exit_cond(cond) {
            continue;
        }
        let after = top as i64 + 1 + off as i64;
        // Region shape: body of at least one insn plus the back edge.
        if after < top as i64 + 3 || after > n_insns as i64 {
            continue;
        }
        let backedge = (after - 1) as usize;
        match prog[backedge] {
            Insn::Jump { cond: None, off: b } if backedge as i64 + 1 + b as i64 == top as i64 => {}
            _ => continue,
        }
        // Known initial value immediately before the header.
        let Insn::Alu {
            op: AluOp::Mov,
            dst: init_dst,
            src: Src::Imm(c0),
        } = prog[top - 1]
        else {
            continue;
        };
        if init_dst != ctr {
            continue;
        }
        // Step: the last body instruction increments the counter...
        let Insn::Alu {
            op: AluOp::Add,
            dst: step_dst,
            src: Src::Imm(step),
        } = prog[backedge - 1]
        else {
            continue;
        };
        if step_dst != ctr {
            continue;
        }
        // ...and nothing else in the body writes it, jumps, or exits.
        for insn in &prog[top + 1..backedge - 1] {
            if matches!(insn, Insn::Jump { .. } | Insn::Exit) {
                continue 'tops;
            }
            if insn_defs(insn) & (1 << ctr.index()) != 0 {
                continue 'tops;
            }
        }
        // Value bounds: signed/unsigned agnostic, no wrapping possible.
        if !(0..=IMM_BOUND).contains(&c0)
            || !(0..=IMM_BOUND).contains(&bound)
            || !(1..=IMM_BOUND).contains(&step)
        {
            continue;
        }
        let Some(trips) = trip_count(cond, c0, bound, step) else {
            continue;
        };
        if trips == 0 || trips > MAX_TRIPS {
            // trips == 0 is branch folding's job (dead loop body).
            continue;
        }
        // No jump from outside the region may land inside it.
        for (pc, insn) in prog.iter().enumerate() {
            if (top..=backedge).contains(&pc) {
                continue;
            }
            if let Insn::Jump { off: o, .. } = insn {
                let t = pc as i64 + 1 + *o as i64;
                if (top as i64..=backedge as i64).contains(&t) {
                    continue 'tops;
                }
            }
        }
        // Natural-loop sanity: the header must dominate the back edge.
        let hb = cfg.block_of[top];
        let bb = cfg.block_of[backedge];
        if !cfg.dominates(hb, bb) {
            continue;
        }
        let body_len = backedge - (top + 1);
        let region_len = backedge - top + 1;
        let new_len = n_insns - region_len + trips as usize * body_len;
        if new_len > budget {
            continue;
        }
        return Some(Candidate {
            top,
            backedge,
            trips,
        });
    }
    None
}

fn apply(prog: &mut Vec<Insn>, c: Candidate) {
    let Candidate {
        top,
        backedge,
        trips,
    } = c;
    let body: Vec<Insn> = prog[top + 1..backedge].to_vec();
    let region_len = backedge - top + 1;
    let delta = trips as i64 * body.len() as i64 - region_len as i64;

    let mut out: Vec<Insn> = Vec::with_capacity(prog.len().wrapping_add_signed(delta as isize));
    out.extend_from_slice(&prog[..top]);
    for _ in 0..trips {
        out.extend_from_slice(&body);
    }
    out.extend_from_slice(&prog[backedge + 1..]);

    // Retarget jumps that cross the resized region. Sources before the
    // region keep their pc; sources after shift by `delta`; targets
    // after the region shift by `delta`. (No jump targets inside the
    // region — `find_candidate` guarantees it.)
    let unrolled = top..top + trips as usize * body.len();
    for (pc, insn) in out.iter_mut().enumerate() {
        if unrolled.contains(&pc) {
            continue; // body copies are jump-free
        }
        // Map the new pc back to the old pc of the same instruction.
        let old_pc = if pc < top {
            pc as i64
        } else {
            pc as i64 - delta
        };
        if let Insn::Jump { cond, off } = *insn {
            let old_target = old_pc + 1 + off as i64;
            let new_target = if old_target > backedge as i64 {
                old_target + delta
            } else {
                old_target
            };
            let new_off = new_target - (pc as i64 + 1);
            if new_off != off as i64 {
                *insn = Insn::Jump {
                    cond,
                    off: new_off as i32,
                };
            }
        }
    }
    *prog = out;
}

/// Unroll every matching constant-trip loop, innermost-first (re-scan
/// after each rewrite). Returns the number of loops unrolled.
pub fn unroll(prog: &mut Vec<Insn>, budget: usize) -> u64 {
    let mut count = 0;
    while let Some(c) = find_candidate(prog, budget) {
        apply(prog, c);
        count += 1;
        if count >= 64 {
            break; // defensive cap; real programs have a handful
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Reg, Size, R0, R10, R6, R7};
    use crate::maps::MapRegistry;
    use crate::verifier::verify;
    use crate::vm::{NullWorld, Vm};

    fn mov_imm(dst: Reg, v: i64) -> Insn {
        Insn::Alu {
            op: AluOp::Mov,
            dst,
            src: Src::Imm(v),
        }
    }

    fn add_imm(dst: Reg, v: i64) -> Insn {
        Insn::Alu {
            op: AluOp::Add,
            dst,
            src: Src::Imm(v),
        }
    }

    fn run_r0(prog: &[Insn]) -> u64 {
        let mut maps = MapRegistry::new();
        let mut world = NullWorld::default();
        Vm::run(prog, &[], &mut maps, &mut world)
            .expect("program runs")
            .0
    }

    /// sum += ctr for ctr in c0..n step s, returning the sum.
    fn counted_loop(c0: i64, n: i64, s: i64) -> Vec<Insn> {
        vec![
            mov_imm(R0, 0),
            mov_imm(R6, c0),
            Insn::Jump {
                cond: Some((Cond::Ge, R6, Src::Imm(n))),
                off: 3,
            },
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Reg(R6),
            },
            add_imm(R6, s),
            Insn::Jump {
                cond: None,
                off: -4,
            },
            Insn::Exit,
        ]
    }

    #[test]
    fn unrolls_counted_loop_bit_identically() {
        let orig = counted_loop(0, 5, 1);
        let before = run_r0(&orig);
        let mut prog = orig.clone();
        let n = unroll(&mut prog, 4096);
        assert_eq!(n, 1);
        assert!(
            !prog.iter().any(|i| matches!(i, Insn::Jump { .. })),
            "loop fully flattened: {prog:?}"
        );
        assert_eq!(run_r0(&prog), before);
        assert_eq!(before, 10); // 0+1+2+3+4
                                // The unrolled form still verifies.
        let maps = MapRegistry::new();
        verify(&prog, &maps, 0).expect("unrolled program re-verifies");
    }

    #[test]
    fn non_unit_step_and_gt_exit() {
        // for (ctr = 1; !(ctr > 7); ctr += 3): trips = (7-1)/3 + 1 = 3.
        let mut prog = vec![
            mov_imm(R0, 0),
            mov_imm(R6, 1),
            Insn::Jump {
                cond: Some((Cond::Gt, R6, Src::Imm(7))),
                off: 3,
            },
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Reg(R6),
            },
            add_imm(R6, 3),
            Insn::Jump {
                cond: None,
                off: -4,
            },
            Insn::Exit,
        ];
        let before = run_r0(&prog);
        assert_eq!(before, 1 + 4 + 7);
        assert_eq!(unroll(&mut prog, 4096), 1);
        assert_eq!(run_r0(&prog), before);
    }

    #[test]
    fn jumps_crossing_the_region_are_retargeted() {
        // A guard before the loop jumps over it to the exit path.
        let mut prog = vec![
            mov_imm(R0, 0),
            mov_imm(R7, 0),
            Insn::Jump {
                cond: Some((Cond::Ne, R7, Src::Imm(0))),
                off: 6,
            }, // -> 9 (mov r0, 99)
            mov_imm(R6, 0),
            Insn::Jump {
                cond: Some((Cond::Ge, R6, Src::Imm(3))),
                off: 3,
            }, // -> 8 (exit block)
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Imm(10),
            },
            add_imm(R6, 1),
            Insn::Jump {
                cond: None,
                off: -4,
            }, // -> 4
            Insn::Jump { cond: None, off: 1 }, // -> 10 (exit)
            mov_imm(R0, 99),
            Insn::Exit,
        ];
        let before = run_r0(&prog);
        assert_eq!(before, 30);
        assert_eq!(unroll(&mut prog, 4096), 1);
        assert_eq!(run_r0(&prog), before);
        let maps = MapRegistry::new();
        verify(&prog, &maps, 0).expect("retargeted program verifies");
    }

    #[test]
    fn body_writing_counter_is_rejected() {
        let mut prog = vec![
            mov_imm(R0, 0),
            mov_imm(R6, 0),
            Insn::Jump {
                cond: Some((Cond::Ge, R6, Src::Imm(5))),
                off: 3,
            },
            mov_imm(R6, 1), // resets the counter: not a counted loop
            add_imm(R6, 1),
            Insn::Jump {
                cond: None,
                off: -4,
            },
            Insn::Exit,
        ];
        assert_eq!(unroll(&mut prog, 4096), 0);
    }

    #[test]
    fn call_in_body_rejects_caller_saved_counter() {
        // ctr = r0 is clobbered by the helper call: must not unroll.
        let mut prog = vec![
            mov_imm(R0, 0),
            Insn::Jump {
                cond: Some((Cond::Ge, R0, Src::Imm(3))),
                off: 3,
            },
            Insn::Call {
                helper: crate::insn::Helper::KtimeGetNs,
            },
            add_imm(R0, 1),
            Insn::Jump {
                cond: None,
                off: -4,
            },
            Insn::Exit,
        ];
        assert_eq!(unroll(&mut prog, 4096), 0);
    }

    #[test]
    fn budget_blocks_oversized_expansion() {
        let mut prog = counted_loop(0, 400, 1);
        // 400 copies of a 2-insn body would blow a tiny budget.
        assert_eq!(unroll(&mut prog, 64), 0);
        assert_eq!(unroll(&mut prog, 4096), 1);
    }

    #[test]
    fn unrolled_loop_with_stack_traffic_verifies() {
        // Store ctr to the stack each trip, then read it back after.
        let mut prog = vec![
            mov_imm(R0, 0),
            mov_imm(R6, 0),
            Insn::Jump {
                cond: Some((Cond::Ge, R6, Src::Imm(4))),
                off: 3,
            },
            Insn::Store {
                size: Size::B8,
                base: R10,
                off: -8,
                src: Src::Reg(R6),
            },
            add_imm(R6, 1),
            Insn::Jump {
                cond: None,
                off: -4,
            },
            Insn::Load {
                size: Size::B8,
                dst: R0,
                base: R10,
                off: -8,
            },
            Insn::Exit,
        ];
        let before = run_r0(&prog);
        assert_eq!(before, 3);
        assert_eq!(unroll(&mut prog, 4096), 1);
        assert_eq!(run_r0(&prog), before);
        let maps = MapRegistry::new();
        verify(&prog, &maps, 0).expect("unrolled program verifies");
    }
}
