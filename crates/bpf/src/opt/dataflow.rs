//! Register dataflow: per-instruction use/def sets, per-block liveness
//! (backward may-analysis), and reaching definitions (forward
//! may-analysis). Both lattices are finite — register bitmasks for
//! liveness, bounded def-site sets for reaching defs — so the worklist
//! iterations terminate at a fixed point.

use crate::insn::{Helper, Insn, Src};
use crate::opt::cfg::Cfg;

/// Register set as a bitmask (bit i = Ri).
pub type RegSet = u16;

pub const ALL_REGS: RegSet = (1 << 11) - 1;

fn bit(i: usize) -> RegSet {
    1 << i
}

fn src_bit(src: Src) -> RegSet {
    match src {
        Src::Reg(r) => bit(r.index()),
        Src::Imm(_) => 0,
    }
}

/// Registers the helper reads on entry: `R1..=R{arity}`.
fn helper_uses(h: Helper) -> RegSet {
    let mut m = 0;
    for i in 1..=h.num_args() {
        m |= bit(i);
    }
    m
}

/// Registers read by `insn`.
pub fn insn_uses(insn: &Insn) -> RegSet {
    use crate::insn::AluOp;
    match insn {
        Insn::Alu {
            op: AluOp::Mov,
            src,
            ..
        } => src_bit(*src),
        Insn::Alu {
            op: AluOp::Neg,
            dst,
            ..
        } => bit(dst.index()),
        Insn::Alu { dst, src, .. } => bit(dst.index()) | src_bit(*src),
        Insn::Load { base, .. } => bit(base.index()),
        Insn::Store { base, src, .. } => bit(base.index()) | src_bit(*src),
        Insn::Jump { cond: None, .. } => 0,
        Insn::Jump {
            cond: Some((_, dst, src)),
            ..
        } => bit(dst.index()) | src_bit(*src),
        Insn::Call { helper } => helper_uses(*helper),
        Insn::LoadMap { .. } => 0,
        Insn::Exit => bit(0),
    }
}

/// Registers written by `insn`. Calls define `R0`–`R5` (the VM clobbers
/// the caller-saved argument registers with a poison pattern).
pub fn insn_defs(insn: &Insn) -> RegSet {
    match insn {
        Insn::Alu { dst, .. } | Insn::Load { dst, .. } | Insn::LoadMap { dst, .. } => {
            bit(dst.index())
        }
        Insn::Call { .. } => 0b11_1111, // R0..=R5
        _ => 0,
    }
}

/// Per-block liveness solution: `live_out[b]` is the set of registers
/// that may be read before being written on some path leaving block `b`.
#[derive(Debug, Clone)]
pub struct Liveness {
    pub live_out: Vec<RegSet>,
}

impl Liveness {
    /// Backward worklist iteration to fixed point. A block whose
    /// terminator can fall off the program end is given `ALL_REGS`
    /// out-liveness (unreachable in verified programs, but harmlessly
    /// conservative).
    pub fn solve(prog: &[Insn], cfg: &Cfg) -> Liveness {
        let nb = cfg.blocks.len();
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![0 as RegSet; nb];
        let mut kill = vec![0 as RegSet; nb];
        for (i, b) in cfg.blocks.iter().enumerate() {
            for insn in &prog[b.start..b.end] {
                let u = insn_uses(insn);
                gen[i] |= u & !kill[i];
                kill[i] |= insn_defs(insn);
            }
        }
        let mut live_in = vec![0 as RegSet; nb];
        let mut live_out = vec![0 as RegSet; nb];
        for (i, b) in cfg.blocks.iter().enumerate() {
            let last = b.end - 1;
            let falls_off =
                !matches!(prog[last], Insn::Jump { .. } | Insn::Exit) && b.end == prog.len();
            if falls_off {
                live_out[i] = ALL_REGS;
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..nb).rev() {
                let mut out = live_out[i];
                for &s in &cfg.blocks[i].succs {
                    out |= live_in[s];
                }
                let inn = gen[i] | (out & !kill[i]);
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_out }
    }
}

/// A definition site. `ENTRY_DEF` stands for the implicit program-entry
/// definitions (`R1` = ctx pointer, `R10` = frame pointer).
pub const ENTRY_DEF: u32 = u32::MAX;

/// Reaching definitions, summarized per reg as a bounded set of def
/// pcs. Sets larger than [`MAX_DEFS`] collapse to `Top` (unknown) — the
/// consumer only cares about the unique-def case, so precision beyond a
/// handful of sites buys nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Defs {
    /// No definition reaches (register is uninit on every path here).
    None,
    /// Sorted set of def pcs, at most [`MAX_DEFS`] of them.
    Sites(Vec<u32>),
    /// Too many or unknowable definition sites.
    Top,
}

pub const MAX_DEFS: usize = 8;

impl Defs {
    fn join(&mut self, other: &Defs) -> bool {
        let merged = match (&*self, other) {
            (Defs::Top, _) => return false,
            (_, Defs::Top) => Defs::Top,
            (Defs::None, o) => o.clone(),
            (s, Defs::None) => s.clone(),
            (Defs::Sites(a), Defs::Sites(b)) => {
                let mut v = a.clone();
                for &d in b {
                    if let Err(i) = v.binary_search(&d) {
                        v.insert(i, d);
                    }
                }
                if v.len() > MAX_DEFS {
                    Defs::Top
                } else {
                    Defs::Sites(v)
                }
            }
        };
        if *self != merged {
            *self = merged;
            true
        } else {
            false
        }
    }

    /// The single pc that defines this register, if unique.
    pub fn unique(&self) -> Option<u32> {
        match self {
            Defs::Sites(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }
}

/// Reaching-definitions solution: per-block entry state, one `Defs` per
/// register.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    pub block_in: Vec<[Defs; 11]>,
}

const NONE_DEFS: Defs = Defs::None;

impl ReachingDefs {
    pub fn solve(prog: &[Insn], cfg: &Cfg) -> ReachingDefs {
        let nb = cfg.blocks.len();
        let mut block_in = vec![[NONE_DEFS; 11]; nb];
        let mut block_out = vec![[NONE_DEFS; 11]; nb];
        // Entry state: R1 and R10 are defined at program entry.
        let entry = {
            let mut e = [NONE_DEFS; 11];
            e[1] = Defs::Sites(vec![ENTRY_DEF]);
            e[10] = Defs::Sites(vec![ENTRY_DEF]);
            e
        };
        if nb > 0 {
            block_in[0] = entry;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &bi in &cfg.rpo {
                let b = &cfg.blocks[bi];
                // in = join of preds' out (entry keeps its seed).
                let mut inn = block_in[bi].clone();
                for &p in &b.preds {
                    for r in 0..11 {
                        inn[r].join(&block_out[p][r]);
                    }
                }
                // Transfer: each def replaces the set for its register.
                let mut out = inn.clone();
                for (pc, insn) in prog.iter().enumerate().take(b.end).skip(b.start) {
                    let defs = insn_defs(insn);
                    for (r, d) in out.iter_mut().enumerate() {
                        if defs & (1 << r) != 0 {
                            *d = Defs::Sites(vec![pc as u32]);
                        }
                    }
                }
                if inn != block_in[bi] {
                    block_in[bi] = inn;
                    changed = true;
                }
                if out != block_out[bi] {
                    block_out[bi] = out;
                    changed = true;
                }
            }
        }
        ReachingDefs { block_in }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, Cond, Size, R0, R1, R10, R2, R3, R6};

    fn mov_imm(dst: crate::insn::Reg, v: i64) -> Insn {
        Insn::Alu {
            op: AluOp::Mov,
            dst,
            src: Src::Imm(v),
        }
    }

    #[test]
    fn use_def_sets_per_shape() {
        let add = Insn::Alu {
            op: AluOp::Add,
            dst: R2,
            src: Src::Reg(R3),
        };
        assert_eq!(insn_uses(&add), 0b1100);
        assert_eq!(insn_defs(&add), 0b0100);
        let mov = mov_imm(R6, 1);
        assert_eq!(insn_uses(&mov), 0);
        let call = Insn::Call {
            helper: Helper::MapUpdate,
        };
        assert_eq!(insn_uses(&call), 0b1_1110); // R1..=R4
        assert_eq!(insn_defs(&call), 0b11_1111); // R0..=R5 clobbered
        let st = Insn::Store {
            size: Size::B8,
            base: R10,
            off: -8,
            src: Src::Reg(R0),
        };
        assert_eq!(insn_uses(&st), (1 << 10) | 1);
        assert_eq!(insn_defs(&st), 0);
        assert_eq!(insn_uses(&Insn::Exit), 1);
    }

    #[test]
    fn liveness_sees_loop_carried_registers() {
        // 0: mov r0, 0
        // 1: jeq r1, 0, +2 → 4
        // 2: add r0, 1          (r0 live around the loop)
        // 3: ja -3 → 1
        // 4: exit
        let prog = vec![
            mov_imm(R0, 0),
            Insn::Jump {
                cond: Some((Cond::Eq, R1, Src::Imm(0))),
                off: 2,
            },
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Imm(1),
            },
            Insn::Jump {
                cond: None,
                off: -3,
            },
            Insn::Exit,
        ];
        let cfg = Cfg::build(&prog);
        let lv = Liveness::solve(&prog, &cfg);
        let header = cfg.block_of[1];
        let body = cfg.block_of[2];
        // r0 is live out of the body (read by exit after the loop) and
        // r1 is live out of the entry block (read by the header).
        assert_ne!(lv.live_out[body] & 1, 0, "r0 live around back edge");
        assert_ne!(
            lv.live_out[cfg.block_of[0]] & 0b10,
            0,
            "r1 live into header"
        );
        assert_ne!(lv.live_out[header] & 1, 0);
    }

    #[test]
    fn reaching_defs_unique_and_merged() {
        // 0: mov r0, 1
        // 1: jeq r1, 0, +1 → 3
        // 2: mov r0, 2
        // 3: exit            (r0 has two reaching defs at the join)
        let prog = vec![
            mov_imm(R0, 1),
            Insn::Jump {
                cond: Some((Cond::Eq, R1, Src::Imm(0))),
                off: 1,
            },
            mov_imm(R0, 2),
            Insn::Exit,
        ];
        let cfg = Cfg::build(&prog);
        let rd = ReachingDefs::solve(&prog, &cfg);
        let exit_block = cfg.block_of[3];
        match &rd.block_in[exit_block][0] {
            Defs::Sites(v) => assert_eq!(v, &vec![0, 2]),
            other => panic!("expected two sites, got {other:?}"),
        }
        assert!(rd.block_in[exit_block][0].unique().is_none());
        // R1's def at the exit block is still the entry pseudo-def.
        assert_eq!(rd.block_in[exit_block][1].unique(), Some(ENTRY_DEF));
    }
}
