//! Tristate numbers ("tnums"): the kernel verifier's known-bits domain.
//!
//! A tnum `{value, mask}` represents the set of `u64`s that agree with
//! `value` on every bit where `mask` is 0; bits where `mask` is 1 are
//! unknown. The transfer functions below are the kernel's
//! (`kernel/bpf/tnum.c`, Edward Cree's algebra), rewritten with explicit
//! wrapping arithmetic so adversarial constants cannot overflow-panic a
//! debug build.

/// A tristate number: every concrete value `x` with
/// `x & !mask == value` is a member. `mask & value == 0` always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tnum {
    /// Known bits (only meaningful where `mask` is 0).
    pub value: u64,
    /// Unknown bits.
    pub mask: u64,
}

// `add`/`sub`/`mul` deliberately shadow the operator names: they mirror
// the kernel's `tnum_add`/`tnum_sub`/`tnum_mul` and are abstract-domain
// transfer functions, not the `u64` operators.
#[allow(clippy::should_implement_trait)]
impl Tnum {
    /// The exactly-known constant `v`.
    pub const fn cnst(v: u64) -> Self {
        Tnum { value: v, mask: 0 }
    }

    /// Completely unknown.
    pub const fn unknown() -> Self {
        Tnum {
            value: 0,
            mask: u64::MAX,
        }
    }

    /// The tightest tnum containing every value in `[min, max]`
    /// (kernel `tnum_range`): bits above the highest differing bit are
    /// known, the rest unknown.
    pub fn range(min: u64, max: u64) -> Self {
        let chi = min ^ max;
        let bits = 64 - chi.leading_zeros();
        if bits >= 64 {
            return Tnum::unknown();
        }
        let delta = (1u64 << bits) - 1;
        Tnum {
            value: min & !delta,
            mask: delta,
        }
    }

    pub fn is_const(self) -> bool {
        self.mask == 0
    }

    pub fn const_value(self) -> Option<u64> {
        if self.is_const() {
            Some(self.value)
        } else {
            None
        }
    }

    /// Smallest member.
    pub fn min(self) -> u64 {
        self.value
    }

    /// Largest member.
    pub fn max(self) -> u64 {
        self.value | self.mask
    }

    /// Does `v` satisfy every known bit?
    pub fn contains(self, v: u64) -> bool {
        v & !self.mask == self.value
    }

    /// Does every member of `other` satisfy `self`'s known bits?
    /// (`other ⊆ self` as sets.)
    pub fn subsumes(self, other: Tnum) -> bool {
        (other.mask & !self.mask) == 0 && ((self.value ^ other.value) & !self.mask) == 0
    }

    /// Set intersection; `None` when the known bits contradict.
    pub fn intersect(self, other: Tnum) -> Option<Tnum> {
        if (self.value ^ other.value) & !self.mask & !other.mask != 0 {
            return None;
        }
        let mask = self.mask & other.mask;
        Some(Tnum {
            value: (self.value | other.value) & !mask,
            mask,
        })
    }

    pub fn add(self, other: Tnum) -> Tnum {
        let sm = self.mask.wrapping_add(other.mask);
        let sv = self.value.wrapping_add(other.value);
        let sigma = sm.wrapping_add(sv);
        let chi = sigma ^ sv;
        let mu = chi | self.mask | other.mask;
        Tnum {
            value: sv & !mu,
            mask: mu,
        }
    }

    pub fn sub(self, other: Tnum) -> Tnum {
        let dv = self.value.wrapping_sub(other.value);
        let alpha = dv.wrapping_add(self.mask);
        let beta = dv.wrapping_sub(other.mask);
        let chi = alpha ^ beta;
        let mu = chi | self.mask | other.mask;
        Tnum {
            value: dv & !mu,
            mask: mu,
        }
    }

    pub fn and(self, other: Tnum) -> Tnum {
        let alpha = self.value | self.mask;
        let beta = other.value | other.mask;
        let v = self.value & other.value;
        Tnum {
            value: v,
            mask: alpha & beta & !v,
        }
    }

    pub fn or(self, other: Tnum) -> Tnum {
        let v = self.value | other.value;
        let mu = self.mask | other.mask;
        Tnum {
            value: v,
            mask: mu & !v,
        }
    }

    pub fn xor(self, other: Tnum) -> Tnum {
        let v = self.value ^ other.value;
        let mu = self.mask | other.mask;
        Tnum {
            value: v & !mu,
            mask: mu,
        }
    }

    pub fn lshift(self, shift: u32) -> Tnum {
        let s = shift & 63;
        Tnum {
            value: self.value << s,
            mask: self.mask << s,
        }
    }

    pub fn rshift(self, shift: u32) -> Tnum {
        let s = shift & 63;
        Tnum {
            value: self.value >> s,
            mask: self.mask >> s,
        }
    }

    pub fn arshift(self, shift: u32) -> Tnum {
        let s = shift & 63;
        Tnum {
            value: ((self.value as i64) >> s) as u64,
            mask: ((self.mask as i64) >> s) as u64,
        }
    }

    /// Kernel `tnum_mul`: shift-and-add over the multiplier's bits,
    /// accumulating unknownness where a bit is itself unknown.
    pub fn mul(self, other: Tnum) -> Tnum {
        let mut a = self;
        let mut b = other;
        let acc_v = a.value.wrapping_mul(b.value);
        let mut acc_m = Tnum { value: 0, mask: 0 };
        while a.value != 0 || a.mask != 0 {
            if a.value & 1 != 0 {
                acc_m = acc_m.add(Tnum {
                    value: 0,
                    mask: b.mask,
                });
            } else if a.mask & 1 != 0 {
                acc_m = acc_m.add(Tnum {
                    value: 0,
                    mask: b.value | b.mask,
                });
            }
            a = a.rshift(1);
            b = b.lshift(1);
        }
        Tnum::cnst(acc_v).add(acc_m)
    }
}

impl std::fmt::Display for Tnum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_const() {
            write!(f, "{:#x}", self.value)
        } else if *self == Tnum::unknown() {
            write!(f, "?")
        } else {
            write!(f, "({:#x}; {:#x})", self.value, self.mask)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(t: Tnum) -> Vec<u64> {
        // Enumerate members over the low 8 bits (tests keep masks small).
        (0u64..256).filter(|v| t.contains(*v)).collect()
    }

    #[test]
    fn const_and_unknown_basics() {
        let c = Tnum::cnst(42);
        assert!(c.is_const());
        assert_eq!(c.const_value(), Some(42));
        assert!(c.contains(42) && !c.contains(41));
        let u = Tnum::unknown();
        assert!(u.contains(0) && u.contains(u64::MAX));
        assert!(u.subsumes(c) && !c.subsumes(u));
    }

    #[test]
    fn range_covers_interval() {
        let t = Tnum::range(3, 12);
        for v in 3..=12 {
            assert!(t.contains(v), "{v} missing");
        }
        assert_eq!(t.min(), 0);
        assert!(t.max() >= 12);
        assert_eq!(Tnum::range(7, 7), Tnum::cnst(7));
        // Full-width range degrades to unknown without shifting UB.
        assert_eq!(Tnum::range(0, u64::MAX), Tnum::unknown());
    }

    #[test]
    fn add_is_sound_on_members() {
        let a = Tnum::range(0, 7);
        let b = Tnum::cnst(9);
        let sum = a.add(b);
        for x in members(a) {
            assert!(sum.contains(x.wrapping_add(9)));
        }
        // sub undoes add for constants
        assert_eq!(Tnum::cnst(20).sub(Tnum::cnst(5)), Tnum::cnst(15));
    }

    #[test]
    fn bitwise_ops_sound() {
        let a = Tnum {
            value: 0b1000,
            mask: 0b0110,
        };
        let b = Tnum::cnst(0b1010);
        for x in members(a) {
            assert!(a.and(b).contains(x & 0b1010));
            assert!(a.or(b).contains(x | 0b1010));
            assert!(a.xor(b).contains(x ^ 0b1010));
        }
    }

    #[test]
    fn shifts_track_bits() {
        let a = Tnum {
            value: 0b100,
            mask: 0b010,
        };
        assert_eq!(a.lshift(1).value, 0b1000);
        assert_eq!(a.lshift(1).mask, 0b0100);
        assert_eq!(a.rshift(1).value, 0b10);
        let neg = Tnum::cnst((-16i64) as u64);
        assert_eq!(neg.arshift(2), Tnum::cnst((-4i64) as u64));
    }

    #[test]
    fn mul_sound_on_members() {
        let a = Tnum::range(0, 7);
        let m = a.mul(Tnum::cnst(24));
        for x in members(a) {
            assert!(m.contains(x * 24), "{}", x);
        }
        assert_eq!(Tnum::cnst(6).mul(Tnum::cnst(7)), Tnum::cnst(42));
        // Wrapping, not panicking, on huge constants.
        let big = Tnum::cnst(u64::MAX).mul(Tnum::cnst(u64::MAX));
        assert!(big.is_const());
    }

    #[test]
    fn intersect_detects_contradiction() {
        let a = Tnum::cnst(4);
        let b = Tnum::cnst(5);
        assert_eq!(a.intersect(b), None);
        let r = Tnum::range(0, 15);
        assert_eq!(r.intersect(a), Some(a));
    }

    #[test]
    fn subsumes_is_set_inclusion() {
        let wide = Tnum::range(0, 255);
        let narrow = Tnum::cnst(17);
        assert!(wide.subsumes(narrow));
        assert!(!narrow.subsumes(wide));
        for v in members(narrow) {
            assert!(wide.contains(v));
        }
    }
}
