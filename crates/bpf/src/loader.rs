//! The program loader: load → verify → optimize → run, plus
//! unload/reload.
//!
//! "During this loading step, the BPF subsystem verifies the program's
//! safety, just-in-time compiles the bytecode to machine code, and
//! transfers it into the kernel" (paper §2.3). Our loader verifies and
//! then interprets; unload/reload supports TScout's dynamic feature
//! selection (§5.4: "TS can dynamically unload BPF programs, modify them,
//! and reload them").

use tscout_telemetry::{FrameGuard, Profiler};

use crate::insn::Insn;
use crate::maps::MapRegistry;
use crate::opt::{optimize, OptOptions, OptStats};
use crate::verifier::{verify_with_log, VerifyError, VerifyStats};
use crate::vm::{ExecStats, HelperWorld, Vm, VmError};

/// Identifier of a loaded program. Also used as the attachment token in the
/// simulated kernel's tracepoint registry.
pub type ProgId = u64;

/// Load-time failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The verifier rejected the program; `log` carries the kernel-style
    /// human-readable exploration trace for diagnosis.
    Verify { err: VerifyError, log: String },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Verify { err, log } => {
                write!(
                    f,
                    "verifier rejected program: {err}\n--- verifier log ---\n{log}"
                )
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// A verified, loaded program.
#[derive(Debug, Clone)]
pub struct LoadedProg {
    pub name: String,
    /// The executable instruction stream (post-optimization when the
    /// optimizer is enabled and succeeded).
    pub insns: Vec<Insn>,
    pub ctx_size: usize,
    /// Instruction count as submitted, before any optimization.
    pub insns_unoptimized: usize,
    /// The optimizer's capped human-readable report, when it ran.
    pub opt_report: Option<String>,
}

/// Owns the maps and the loaded programs — the "BPF subsystem".
#[derive(Debug)]
pub struct Loader {
    pub maps: MapRegistry,
    progs: Vec<Option<LoadedProg>>,
    verify_totals: VerifyStats,
    verify_runs: u64,
    /// Run the load-time optimizer on every program (on by default;
    /// the differential suite runs with it off to cross-check).
    optimize: bool,
    opt_options: OptOptions,
    opt_totals: OptStats,
    opt_fallbacks: u64,
    /// Optional sampling profiler for program-entry frames (the loader
    /// stays kernel-agnostic: the handle is injected by whoever owns
    /// both, e.g. TScout at attach time).
    profiler: Option<Profiler>,
}

impl Default for Loader {
    fn default() -> Self {
        Loader {
            maps: MapRegistry::default(),
            progs: Vec::new(),
            verify_totals: VerifyStats::default(),
            verify_runs: 0,
            optimize: true,
            opt_options: OptOptions::default(),
            opt_totals: OptStats::default(),
            opt_fallbacks: 0,
            profiler: None,
        }
    }
}

impl Loader {
    pub fn new() -> Self {
        Self::default()
    }

    /// Toggle the load-time optimizer for subsequent `load` calls.
    pub fn set_optimize(&mut self, on: bool) {
        self.optimize = on;
    }

    /// Override the optimizer's tuning knobs.
    pub fn set_opt_options(&mut self, opts: OptOptions) {
        self.opt_options = opts;
    }

    /// Verify and load a program. The program may only be attached after a
    /// successful load, mirroring the kernel flow.
    pub fn load(
        &mut self,
        name: &str,
        insns: Vec<Insn>,
        ctx_size: usize,
    ) -> Result<ProgId, LoadError> {
        // Run with logging on: the kernel-style trace is what makes a
        // rejection diagnosable, and verification is off the hot path.
        let (result, log) = verify_with_log(&insns, &self.maps, ctx_size);
        let stats = result.map_err(|err| LoadError::Verify { err, log })?;
        self.verify_totals.insns += stats.insns;
        self.verify_totals.insns_visited += stats.insns_visited;
        self.verify_totals.states_explored += stats.states_explored;
        self.verify_totals.states_pruned += stats.states_pruned;
        self.verify_totals.paths_completed += stats.paths_completed;
        self.verify_totals.peak_depth = self.verify_totals.peak_depth.max(stats.peak_depth);
        self.verify_runs += 1;
        // Optimize after verification: the pass pipeline consumes the
        // verifier's facts and must re-verify its output. Failure falls
        // back to the already-verified original — optimization is an
        // upgrade, never a gate.
        let insns_unoptimized = insns.len();
        let (insns, opt_report) = if self.optimize {
            match optimize(&insns, &self.maps, ctx_size, &self.opt_options) {
                Ok(o) => {
                    self.opt_totals.absorb(&o.stats);
                    (o.insns, Some(o.report))
                }
                Err(e) => {
                    self.opt_fallbacks += 1;
                    (insns, Some(format!("optimizer fell back: {e}")))
                }
            }
        } else {
            (insns, None)
        };
        let id = self.progs.len() as ProgId;
        self.progs.push(Some(LoadedProg {
            name: name.into(),
            insns,
            ctx_size,
            insns_unoptimized,
            opt_report,
        }));
        Ok(id)
    }

    /// Cumulative optimizer statistics across every load (per-pass
    /// removal counts, fixed-point iterations, before/after sizes).
    pub fn opt_totals(&self) -> OptStats {
        self.opt_totals
    }

    /// Number of loads where the optimizer errored and the verified
    /// original was used instead. Non-zero values indicate optimizer
    /// bugs worth reporting — correctness is never at risk.
    pub fn opt_fallbacks(&self) -> u64 {
        self.opt_fallbacks
    }

    /// Cumulative verifier work across every successful `load`
    /// (instructions checked and visited, abstract states explored and
    /// pruned, execution paths walked to `exit`; `peak_depth` is the max
    /// across runs, not a sum).
    pub fn verify_totals(&self) -> VerifyStats {
        self.verify_totals
    }

    /// Number of successful verifier passes (one per loaded program).
    pub fn verify_runs(&self) -> u64 {
        self.verify_runs
    }

    /// Unload a program (dynamic reload support). Unknown/already-unloaded
    /// ids are ignored, like closing an already-closed fd.
    pub fn unload(&mut self, id: ProgId) {
        if let Some(slot) = self.progs.get_mut(id as usize) {
            *slot = None;
        }
    }

    pub fn get(&self, id: ProgId) -> Option<&LoadedProg> {
        self.progs.get(id as usize).and_then(|p| p.as_ref())
    }

    /// Number of currently loaded programs.
    pub fn loaded_count(&self) -> usize {
        self.progs.iter().filter(|p| p.is_some()).count()
    }

    /// Inject a sampling profiler so program executions can be
    /// attributed in folded stacks (see [`Loader::profile_scope`]).
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// Push a `bpf:prog:<name>` frame for `task` onto the injected
    /// profiler, returning its pop-on-drop guard. `None` when no
    /// profiler is injected or the program is not loaded; callers hold
    /// the guard across the program's execution *and* the charge for it
    /// (the VM itself runs in zero virtual time — its instruction cost
    /// is charged by the caller afterwards).
    pub fn profile_scope(&self, task: usize, id: ProgId) -> Option<FrameGuard> {
        let profiler = self.profiler.as_ref()?;
        let prog = self.get(id)?;
        Some(profiler.push_frame_lazy(task, false, || format!("bpf:prog:{}", prog.name)))
    }

    /// Execute a loaded program against a context payload.
    pub fn run(
        &mut self,
        id: ProgId,
        ctx: &[u8],
        world: &mut dyn HelperWorld,
    ) -> Result<(u64, ExecStats), VmError> {
        let prog = self
            .progs
            .get(id as usize)
            .and_then(|p| p.as_ref())
            .ok_or(VmError::PcOutOfBounds { pc: usize::MAX })?;
        // Context is truncated/zero-padded to the declared size so variable
        // payloads (e.g. feature vectors) stay within verified bounds.
        // (`progs` and `maps` are disjoint fields, so the program can be
        // interpreted in place — no per-call instruction clone.)
        if ctx.len() >= prog.ctx_size {
            Vm::run(&prog.insns, &ctx[..prog.ctx_size], &mut self.maps, world)
        } else {
            let mut padded = vec![0u8; prog.ctx_size];
            padded[..ctx.len()].copy_from_slice(ctx);
            Vm::run(&prog.insns, &padded, &mut self.maps, world)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::ProgramBuilder;
    use crate::insn::{Size, R0, R1};
    use crate::vm::NullWorld;

    fn trivial() -> Vec<Insn> {
        let mut b = ProgramBuilder::new();
        b.mov_imm(R0, 7).exit();
        b.resolve().unwrap()
    }

    #[test]
    fn load_and_run() {
        let mut l = Loader::new();
        let id = l.load("t", trivial(), 0).unwrap();
        let mut w = NullWorld::default();
        let (r0, _) = l.run(id, &[], &mut w).unwrap();
        assert_eq!(r0, 7);
        assert_eq!(l.get(id).unwrap().name, "t");
        assert_eq!(l.verify_runs(), 1);
        assert_eq!(l.verify_totals().insns, 2);
        assert_eq!(l.verify_totals().paths_completed, 1);
    }

    #[test]
    fn load_rejects_bad_programs() {
        let mut l = Loader::new();
        let err = l.load("bad", vec![Insn::Exit], 0).unwrap_err();
        let LoadError::Verify { err, log } = err;
        assert!(matches!(err, VerifyError::ExitWithoutScalarR0 { .. }));
        assert!(log.contains("rejected:"), "log was: {log}");
        assert!(format!("{}", LoadError::Verify { err, log }).contains("verifier log"));
        assert_eq!(l.loaded_count(), 0);
    }

    #[test]
    fn unload_then_run_fails() {
        let mut l = Loader::new();
        let id = l.load("t", trivial(), 0).unwrap();
        l.unload(id);
        assert!(l.get(id).is_none());
        let mut w = NullWorld::default();
        assert!(l.run(id, &[], &mut w).is_err());
        // Reload gets a fresh id.
        let id2 = l.load("t2", trivial(), 0).unwrap();
        assert_ne!(id, id2);
        assert_eq!(l.loaded_count(), 1);
    }

    #[test]
    fn profile_scope_attributes_program_executions() {
        let mut l = Loader::new();
        let id = l.load("begin_ee", trivial(), 0).unwrap();
        // No profiler injected yet.
        assert!(l.profile_scope(0, id).is_none());
        let p = Profiler::new();
        p.set_period_ns(10.0);
        l.set_profiler(p.clone());
        assert!(l.profile_scope(0, id + 99).is_none()); // unknown prog
        {
            let _frame = l.profile_scope(0, id).unwrap();
            let mut w = NullWorld::default();
            l.run(id, &[], &mut w).unwrap();
            p.on_charge(0, 25.0); // the caller charging the VM's cost
        }
        let folded = p.folded();
        assert_eq!(folded.len(), 1);
        assert_eq!(folded[0].0, "bpf:prog:begin_ee");
        assert_eq!(folded[0].1.samples, 2);
    }

    #[test]
    fn optimizer_shrinks_loaded_programs_and_reports() {
        use crate::insn::{AluOp, Cond, Src, R6};
        // A counted loop the optimizer collapses to a constant.
        let prog = vec![
            Insn::Alu {
                op: AluOp::Mov,
                dst: R0,
                src: Src::Imm(0),
            },
            Insn::Alu {
                op: AluOp::Mov,
                dst: R6,
                src: Src::Imm(0),
            },
            Insn::Jump {
                cond: Some((Cond::Ge, R6, Src::Imm(4))),
                off: 3,
            },
            Insn::Alu {
                op: AluOp::Add,
                dst: R0,
                src: Src::Reg(R6),
            },
            Insn::Alu {
                op: AluOp::Add,
                dst: R6,
                src: Src::Imm(1),
            },
            Insn::Jump {
                cond: None,
                off: -4,
            },
            Insn::Exit,
        ];
        let mut l = Loader::new();
        let id = l.load("loopy", prog.clone(), 0).unwrap();
        let loaded = l.get(id).unwrap();
        assert_eq!(loaded.insns_unoptimized, 7);
        assert!(loaded.insns.len() < 7, "got {:?}", loaded.insns);
        assert!(loaded.opt_report.as_ref().unwrap().contains("insns out"));
        assert!(l.opt_totals().removed_total() > 0);
        assert_eq!(l.opt_fallbacks(), 0);
        let mut w = NullWorld::default();
        let (r0, _) = l.run(id, &[], &mut w).unwrap();
        assert_eq!(r0, 6); // 0+1+2+3, same as unoptimized

        // With the optimizer off, the program loads byte-for-byte as-is.
        let mut l2 = Loader::new();
        l2.set_optimize(false);
        let id2 = l2.load("loopy", prog.clone(), 0).unwrap();
        assert_eq!(l2.get(id2).unwrap().insns, prog);
        assert!(l2.get(id2).unwrap().opt_report.is_none());
        let (r0, _) = l2.run(id2, &[], &mut w).unwrap();
        assert_eq!(r0, 6);
    }

    #[test]
    fn ctx_is_padded_to_declared_size() {
        let mut l = Loader::new();
        let mut b = ProgramBuilder::new();
        b.load(Size::B8, R0, R1, 8); // read past a 4-byte payload
        b.exit();
        let id = l.load("pad", b.resolve().unwrap(), 16).unwrap();
        let mut w = NullWorld::default();
        let (r0, _) = l.run(id, &[0xFF, 0xFF, 0xFF, 0xFF], &mut w).unwrap();
        assert_eq!(r0, 0); // padded region reads as zero
    }

    #[test]
    fn oversized_ctx_is_truncated() {
        let mut l = Loader::new();
        let mut b = ProgramBuilder::new();
        b.load(Size::B8, R0, R1, 0);
        b.exit();
        let id = l.load("trunc", b.resolve().unwrap(), 8).unwrap();
        let mut w = NullWorld::default();
        let mut ctx = vec![0u8; 32];
        ctx[..8].copy_from_slice(&123u64.to_le_bytes());
        let (r0, _) = l.run(id, &ctx, &mut w).unwrap();
        assert_eq!(r0, 123);
    }
}
