//! Hardware profiles: the simulated machines the DBMS runs on.
//!
//! The paper evaluates on two machines:
//!
//! * "Larger HW": 2×20-core Intel Xeon Gold 5218R (2.1 GHz, 27.5 MB L3),
//!   196 GB DRAM, Samsung PM983 SSD.
//! * "Smaller HW": 6-core Intel Core i7-10710U (1.1 GHz base, 12 MB L3),
//!   64 GB DRAM, Samsung 970 EVO+ SSD.
//!
//! A [`HardwareProfile`] is the *environment* input to the cost model. The
//! behaviour models in `tscout-models` only see the clock frequency as a
//! hardware-context feature (as in the paper, §6.4), which is what makes the
//! execution-engine model fail to generalize across machines with different
//! cache hierarchies — a result Fig. 7a reproduces.

/// A simulated block-storage device.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageDevice {
    /// Marketing name, for documentation/debugging only.
    pub name: &'static str,
    /// Sequential write throughput in bytes per second.
    pub write_bytes_per_sec: f64,
    /// Fixed latency per I/O request in nanoseconds (queueing + device).
    pub io_latency_ns: f64,
}

impl StorageDevice {
    /// Samsung PM983 enterprise NVMe (the paper's server SSD).
    pub fn pm983() -> Self {
        StorageDevice {
            name: "Samsung PM983",
            write_bytes_per_sec: 1.4e9,
            io_latency_ns: 28_000.0,
        }
    }

    /// Samsung 970 EVO Plus consumer NVMe (the paper's laptop SSD).
    pub fn evo970plus() -> Self {
        StorageDevice {
            name: "Samsung 970 EVO Plus",
            write_bytes_per_sec: 0.9e9,
            io_latency_ns: 45_000.0,
        }
    }

    /// Virtual time to complete one write of `bytes` bytes.
    pub fn write_time_ns(&self, bytes: u64) -> f64 {
        self.io_latency_ns + bytes as f64 / self.write_bytes_per_sec * 1e9
    }
}

/// A simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Total hardware threads available to the DBMS.
    pub cores: u32,
    /// Core clock in GHz. The *only* hardware feature exposed to behaviour
    /// models (paper §6.4).
    pub clock_ghz: f64,
    /// Last-level cache size in bytes. Affects the effective cache-miss
    /// rate of scans — a hardware effect the models cannot see.
    pub l3_bytes: u64,
    /// DRAM access penalty for a last-level miss, in nanoseconds.
    pub dram_latency_ns: f64,
    /// Storage device backing the write-ahead log.
    pub storage: StorageDevice,
    /// Network round-trip cost per kilobyte in nanoseconds (loopback-ish).
    pub net_ns_per_kb: f64,
    /// Number of programmable PMU counter slots. Intel server parts expose
    /// 4 programmable counters per hyperthread; enabling more events than
    /// this engages multiplexing.
    pub pmu_slots: usize,
}

impl HardwareProfile {
    /// The paper's "Larger HW": dual-socket 2×20-core Xeon Gold 5218R.
    pub fn server_2x20() -> Self {
        HardwareProfile {
            name: "server-2x20 (Xeon Gold 5218R)",
            cores: 40,
            clock_ghz: 2.1,
            l3_bytes: 27_500_000 * 2,
            dram_latency_ns: 84.0,
            storage: StorageDevice::pm983(),
            net_ns_per_kb: 620.0,
            pmu_slots: 4,
        }
    }

    /// The paper's "Smaller HW": 6-core i7-10710U laptop-class machine.
    pub fn laptop_6core() -> Self {
        HardwareProfile {
            name: "laptop-6core (i7-10710U)",
            cores: 6,
            clock_ghz: 1.1,
            l3_bytes: 12_000_000,
            dram_latency_ns: 96.0,
            storage: StorageDevice::evo970plus(),
            net_ns_per_kb: 840.0,
            pmu_slots: 4,
        }
    }

    /// Nanoseconds for `cycles` CPU cycles on this machine.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.clock_ghz
    }

    /// Cycles executed in `ns` nanoseconds.
    pub fn ns_to_cycles(&self, ns: f64) -> f64 {
        ns * self.clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_ns_round_trip() {
        let hw = HardwareProfile::server_2x20();
        let ns = hw.cycles_to_ns(2100.0);
        assert!((ns - 1000.0).abs() < 1e-9);
        assert!((hw.ns_to_cycles(ns) - 2100.0).abs() < 1e-9);
    }

    #[test]
    fn profiles_differ_in_ways_models_cannot_see() {
        let big = HardwareProfile::server_2x20();
        let small = HardwareProfile::laptop_6core();
        // Clock differs (visible to models)...
        assert!(big.clock_ghz > small.clock_ghz);
        // ...but so do L3 and the storage device (invisible to models).
        assert!(big.l3_bytes > 2 * small.l3_bytes);
        assert!(big.storage.write_bytes_per_sec > small.storage.write_bytes_per_sec);
    }

    #[test]
    fn storage_write_time_scales_with_bytes() {
        let dev = StorageDevice::pm983();
        let t1 = dev.write_time_ns(4096);
        let t2 = dev.write_time_ns(4096 * 64);
        assert!(t2 > t1);
        // Fixed latency dominates small writes.
        assert!(t1 < 2.0 * dev.io_latency_ns);
    }
}
