//! The cost model: every tunable constant of the simulation in one place.
//!
//! All figure calibration happens here. The *absolute* values are rough
//! (the paper's testbed is real silicon; ours is a simulator) but the
//! *relationships* between them encode the mechanisms the paper measures:
//!
//! * a user→kernel mode switch is expensive; a syscall is a mode switch
//!   plus kernel work; toggling perf counters reprograms the PMU and is the
//!   most expensive of all (paper §2.3, Figs. 1/5);
//! * leaving counters enabled continuously makes every context switch pay a
//!   PMU save/restore (paper §6.2, the 2–8% User-Continuous floor);
//! * a BPF program execution costs one mode switch plus its instruction
//!   count — far cheaper than three toggling syscalls (Fig. 1);
//! * CPU work suffers contention when runnable tasks exceed cores and when
//!   the working set outgrows L3 (Figs. 7/11/12 generalization gaps).

use crate::hw::HardwareProfile;

/// Cost constants, independent of the hardware profile (expressed in cycles
/// or nanoseconds as noted). Scaled by the profile's clock where relevant.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// One user↔kernel mode switch, ns.
    pub mode_switch_ns: f64,
    /// Kernel-side overhead of a generic syscall beyond the mode switch, ns.
    pub syscall_body_ns: f64,
    /// Reprogramming PMU control registers on enable/disable, ns.
    pub pmu_toggle_ns: f64,
    /// Reading one perf counter from user space (rdpmc-less path), ns.
    pub pmu_read_user_ns: f64,
    /// Reading one perf counter from inside the kernel (BPF helper), ns.
    pub pmu_read_kernel_ns: f64,
    /// Extra context-switch cost when counters are continuously enabled
    /// (PMU state save/restore), ns per switch.
    pub cs_pmu_save_ns: f64,
    /// Base context switch cost, ns.
    pub context_switch_ns: f64,
    /// Cost per interpreted BPF instruction, ns.
    pub bpf_insn_ns: f64,
    /// Publishing one record into the perf ring buffer from BPF, ns
    /// (per-CPU buffer, no locks — the RCU advantage of §6.2).
    pub ringbuf_publish_ns: f64,
    /// User-space emission of one sample through the shared, locked
    /// collection buffer, ns of *lock hold time* (serialized across all
    /// DBMS threads — the bottleneck that caps user-space data rates).
    pub user_emit_lock_ns: f64,
    /// Processor cost to transform + archive one drained sample, ns.
    pub processor_per_sample_ns: f64,
    /// Additional Processor cost to columnar-encode one sample into the
    /// persistent training-data archive (memtable append amortizing the
    /// per-block delta/bit-pack encode + CRC), ns.
    pub archive_per_sample_ns: f64,
    /// Model-lifecycle cost to fit on one training point during a
    /// periodic retrain (background, off the transaction path), ns.
    pub retrain_per_point_ns: f64,
    /// Sampling-decision cost paid at every candidate event even when
    /// collection is off (one bit test + offset bump), ns.
    pub sampling_check_ns: f64,
    /// Processor cost to fold one decoded sample into its OU's drift
    /// sketches (two bucket updates + moment sums), ns.
    pub sketch_per_sample_ns: f64,
    /// Per-OU cost of one drift evaluation pass (PSI + KS over the
    /// aligned bucket arrays, both channels), ns.
    pub drift_eval_per_ou_ns: f64,
    /// Cost of evaluating one health rule against its resolved signal
    /// (selector lookup + hysteresis update), ns.
    pub health_rule_eval_ns: f64,
    /// Cost of assigning a lineage `TraceId` at marker fire time
    /// (counter bump + side-table insert). Charged on the Processor's
    /// clock (like the sketch costs) so traced samples stay bit-identical.
    pub trace_begin_ns: f64,
    /// Cost of recording one pipeline-stage enter/exit pair for a traced
    /// sample (timestamp pair + queue-depth read + ring append), ns.
    pub trace_stage_record_ns: f64,
    /// Cost of fingerprinting one SQL statement for the statement-stats
    /// registry (AST walk rendering a literal-normalized template), ns.
    /// Charged on the Processor's clock at pump cadence (like the sketch
    /// costs) so collected samples stay bit-identical stats on/off.
    pub stmt_fingerprint_ns: f64,
    /// Cost of folding one executed statement into its fingerprint's
    /// stats entry (map lookup + accumulator updates + LRU touch), ns.
    /// Charged on the Processor's clock alongside the fingerprint cost.
    pub stmt_record_ns: f64,
    /// Per-policy cost of one action-engine planning pass (signal
    /// reads, guardrail checks, prediction construction), ns. Charged
    /// on the Processor's clock at pump cadence so collected samples
    /// stay bit-identical with the engine on or off.
    pub action_plan_ns: f64,
    /// Cost of closing one action follow-up (metric re-read, error and
    /// regression computation, log update), ns. Charged on the
    /// Processor's clock alongside the planning cost.
    pub action_followup_ns: f64,
    /// Per-plan-node bookkeeping cost of an `EXPLAIN ANALYZE` run
    /// (clock reads + per-OU actuals capture + model prediction).
    /// Charged on the issuing session's clock — the statement is
    /// user-visible and executes for real, so its observation cost is
    /// part of the query, not of the collection pipeline.
    pub explain_analyze_node_ns: f64,
    /// Instructions-per-cycle the simulated pipeline sustains on ALU work.
    pub ipc: f64,
    /// Contention coefficient: CPU work inflates by
    /// `1 + alpha * max(0, (runnable - cores) / cores)` plus a shared-lock
    /// term that grows with runnable tasks.
    pub contention_alpha: f64,
    /// Shared-structure (latch/lock) interference per extra runnable task.
    pub contention_lock_per_task: f64,
    /// Fraction of data accesses that miss LLC once the per-query working
    /// set exceeds the L3 share available to a task.
    pub llc_pressure_miss_rate: f64,
    /// Baseline LLC miss rate when the working set fits.
    pub base_miss_rate: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mode_switch_ns: 220.0,
            syscall_body_ns: 180.0,
            pmu_toggle_ns: 1_900.0,
            pmu_read_user_ns: 95.0,
            pmu_read_kernel_ns: 62.0,
            cs_pmu_save_ns: 1_250.0,
            context_switch_ns: 1_400.0,
            bpf_insn_ns: 4.2,
            ringbuf_publish_ns: 420.0,
            user_emit_lock_ns: 68_000.0,
            processor_per_sample_ns: 21_000.0,
            archive_per_sample_ns: 2_400.0,
            retrain_per_point_ns: 900.0,
            sampling_check_ns: 4.0,
            sketch_per_sample_ns: 140.0,
            drift_eval_per_ou_ns: 5_200.0,
            health_rule_eval_ns: 750.0,
            trace_begin_ns: 180.0,
            trace_stage_record_ns: 90.0,
            stmt_fingerprint_ns: 650.0,
            stmt_record_ns: 380.0,
            action_plan_ns: 1_100.0,
            action_followup_ns: 600.0,
            explain_analyze_node_ns: 900.0,
            ipc: 1.6,
            contention_alpha: 0.9,
            contention_lock_per_task: 0.06,
            llc_pressure_miss_rate: 0.42,
            base_miss_rate: 0.04,
        }
    }
}

impl CostModel {
    /// Full syscall cost: two mode switches (enter + exit) plus kernel body.
    pub fn syscall_ns(&self) -> f64 {
        2.0 * self.mode_switch_ns + self.syscall_body_ns
    }

    /// Cost of toggling (enable or disable) perf counters via ioctl.
    pub fn perf_toggle_syscall_ns(&self) -> f64 {
        self.syscall_ns() + self.pmu_toggle_ns
    }

    /// Cost of reading `n` perf counters via a read() syscall group —
    /// one syscall, then per-counter copy-out.
    pub fn perf_read_syscall_ns(&self, n: usize) -> f64 {
        self.syscall_ns() + n as f64 * self.pmu_read_user_ns
    }

    /// CPU-work inflation factor under concurrency.
    ///
    /// `runnable` is the number of tasks actively executing DBMS work;
    /// contention has two components: core oversubscription and shared
    /// data-structure interference (latches, allocator, MVCC tables). The
    /// latter grows even below core saturation — this is what the paper's
    /// offline runners (single-threaded) fail to capture (Fig. 11).
    pub fn contention_factor(&self, hw: &HardwareProfile, runnable: u32) -> f64 {
        let r = runnable.max(1) as f64;
        let cores = hw.cores as f64;
        let oversub = ((r - cores) / cores).max(0.0);
        1.0 + self.contention_alpha * oversub + self.contention_lock_per_task * (r - 1.0)
    }

    /// Effective LLC miss rate for a working set of `ws_bytes` shared by
    /// `runnable` tasks on `hw`.
    pub fn miss_rate(&self, hw: &HardwareProfile, ws_bytes: u64, runnable: u32) -> f64 {
        let share = hw.l3_bytes as f64 / runnable.max(1) as f64;
        if (ws_bytes as f64) <= share {
            self.base_miss_rate
        } else {
            // Smooth ramp between fitting and thrashing.
            let over = (ws_bytes as f64 / share).min(8.0);
            let t = ((over - 1.0) / 7.0).clamp(0.0, 1.0);
            self.base_miss_rate + t * (self.llc_pressure_miss_rate - self.base_miss_rate)
        }
    }

    /// Nanoseconds for a block of CPU work: `instructions` at the model IPC
    /// plus `misses` LLC misses paying DRAM latency.
    pub fn cpu_ns(&self, hw: &HardwareProfile, instructions: f64, misses: f64) -> f64 {
        let cycles = instructions / self.ipc;
        hw.cycles_to_ns(cycles) + misses * hw.dram_latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_costs_more_than_kernel_read() {
        let c = CostModel::default();
        // Three toggling syscalls (enable, disable, read) must exceed one
        // tracepoint mode switch + in-kernel reads — the Fig. 1 mechanism.
        let user_toggle = 2.0 * c.perf_toggle_syscall_ns() + c.perf_read_syscall_ns(7);
        let kernel = c.mode_switch_ns + 7.0 * c.pmu_read_kernel_ns + 200.0 * c.bpf_insn_ns;
        assert!(
            user_toggle > 2.0 * kernel,
            "user toggle {user_toggle} kernel {kernel}"
        );
    }

    #[test]
    fn contention_grows_with_runnable_tasks() {
        let c = CostModel::default();
        let hw = HardwareProfile::laptop_6core();
        let f1 = c.contention_factor(&hw, 1);
        let f6 = c.contention_factor(&hw, 6);
        let f20 = c.contention_factor(&hw, 20);
        assert_eq!(f1, 1.0);
        assert!(f6 > f1);
        assert!(f20 > f6);
        // Oversubscription kicks in past the core count.
        assert!(f20 - f6 > (f6 - f1));
    }

    #[test]
    fn miss_rate_ramps_with_working_set() {
        let c = CostModel::default();
        let hw = HardwareProfile::server_2x20();
        let fits = c.miss_rate(&hw, 1 << 20, 1);
        let thrash = c.miss_rate(&hw, 64 * hw.l3_bytes, 1);
        assert_eq!(fits, c.base_miss_rate);
        assert!(thrash > 5.0 * fits);
        assert!(thrash <= c.llc_pressure_miss_rate + 1e-12);
    }

    #[test]
    fn smaller_l3_misses_more_at_same_working_set() {
        let c = CostModel::default();
        let big = HardwareProfile::server_2x20();
        let small = HardwareProfile::laptop_6core();
        let ws = 20_000_000; // 20 MB: fits in the server's share, not the laptop's
        assert!(c.miss_rate(&small, ws, 1) > c.miss_rate(&big, ws, 1));
    }

    #[test]
    fn cpu_ns_accounts_for_dram_stalls() {
        let c = CostModel::default();
        let hw = HardwareProfile::server_2x20();
        let no_miss = c.cpu_ns(&hw, 10_000.0, 0.0);
        let with_miss = c.cpu_ns(&hw, 10_000.0, 100.0);
        assert!((with_miss - no_miss - 100.0 * hw.dram_latency_ns).abs() < 1e-6);
    }
}
