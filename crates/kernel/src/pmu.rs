//! Simulated performance-monitoring unit (PMU).
//!
//! Real CPUs expose a small number of programmable counter slots (four per
//! hyperthread on the paper's Xeons). When software enables more events than
//! slots, the kernel time-multiplexes the events across the slots: each event
//! only counts while it is scheduled on a slot, and `perf_event` reads return
//! `(raw_value, time_enabled, time_running)` so the reader can scale the raw
//! value by `enabled / running` to estimate the true count.
//!
//! TScout's CPU probe performs exactly that normalization (paper §4.1), so
//! the simulation must reproduce the mechanism: with `n` enabled events and
//! `s` slots, each event accumulates only `s/n` of the work charged while
//! multiplexed, and accumulates `time_running = time_enabled * s/n`.

/// Hardware event kinds supported by the simulated PMU.
///
/// These are the pipeline and cache events TScout's CPU probe collects
/// (paper §4.1: cycles, instructions, reference cycles, cache references,
/// cache misses; we also expose branch events as the Linux perf API does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterKind {
    Cycles,
    Instructions,
    RefCycles,
    CacheReferences,
    CacheMisses,
    Branches,
    BranchMisses,
}

/// All counters, in the canonical order used by generated BPF programs.
pub const ALL_COUNTERS: [CounterKind; 7] = [
    CounterKind::Cycles,
    CounterKind::Instructions,
    CounterKind::RefCycles,
    CounterKind::CacheReferences,
    CounterKind::CacheMisses,
    CounterKind::Branches,
    CounterKind::BranchMisses,
];

impl CounterKind {
    /// Index into per-event arrays.
    pub fn index(self) -> usize {
        match self {
            CounterKind::Cycles => 0,
            CounterKind::Instructions => 1,
            CounterKind::RefCycles => 2,
            CounterKind::CacheReferences => 3,
            CounterKind::CacheMisses => 4,
            CounterKind::Branches => 5,
            CounterKind::BranchMisses => 6,
        }
    }

    pub fn from_index(i: usize) -> Option<Self> {
        ALL_COUNTERS.get(i).copied()
    }

    pub fn name(self) -> &'static str {
        match self {
            CounterKind::Cycles => "cpu_cycles",
            CounterKind::Instructions => "instructions",
            CounterKind::RefCycles => "ref_cycles",
            CounterKind::CacheReferences => "cache_references",
            CounterKind::CacheMisses => "cache_misses",
            CounterKind::Branches => "branches",
            CounterKind::BranchMisses => "branch_misses",
        }
    }
}

/// A `perf_event` style reading: raw value plus multiplexing bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmuReading {
    /// Raw accumulated count (already scaled down by multiplexing).
    pub value: u64,
    /// Nanoseconds the event has been enabled.
    pub time_enabled: u64,
    /// Nanoseconds the event was actually scheduled on a hardware slot.
    pub time_running: u64,
}

impl PmuReading {
    /// Scale the raw value by `enabled / running` — the normalization
    /// TScout's CPU probe performs transparently (paper §4.1).
    pub fn normalized(&self) -> f64 {
        if self.time_running == 0 {
            0.0
        } else {
            self.value as f64 * self.time_enabled as f64 / self.time_running as f64
        }
    }
}

#[derive(Debug, Clone)]
struct EventState {
    enabled: bool,
    raw: f64,
    time_enabled: f64,
    time_running: f64,
}

impl Default for EventState {
    fn default() -> Self {
        EventState {
            enabled: false,
            raw: 0.0,
            time_enabled: 0.0,
            time_running: 0.0,
        }
    }
}

/// Per-task simulated PMU.
#[derive(Debug, Clone)]
pub struct Pmu {
    slots: usize,
    events: [EventState; 7],
}

/// True counts accrued by one charge, before multiplexing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CounterDelta {
    pub cycles: f64,
    pub instructions: f64,
    pub ref_cycles: f64,
    pub cache_references: f64,
    pub cache_misses: f64,
    pub branches: f64,
    pub branch_misses: f64,
}

impl CounterDelta {
    fn get(&self, kind: CounterKind) -> f64 {
        match kind {
            CounterKind::Cycles => self.cycles,
            CounterKind::Instructions => self.instructions,
            CounterKind::RefCycles => self.ref_cycles,
            CounterKind::CacheReferences => self.cache_references,
            CounterKind::CacheMisses => self.cache_misses,
            CounterKind::Branches => self.branches,
            CounterKind::BranchMisses => self.branch_misses,
        }
    }
}

impl Pmu {
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "a PMU needs at least one counter slot");
        Pmu {
            slots,
            events: Default::default(),
        }
    }

    fn enabled_count(&self) -> usize {
        self.events.iter().filter(|e| e.enabled).count()
    }

    /// Fraction of the time a given enabled event holds a hardware slot.
    pub fn running_fraction(&self) -> f64 {
        let n = self.enabled_count();
        if n == 0 {
            0.0
        } else {
            (self.slots as f64 / n as f64).min(1.0)
        }
    }

    /// Enable an event (idempotent). Mirrors `ioctl(PERF_EVENT_IOC_ENABLE)`.
    pub fn enable(&mut self, kind: CounterKind) {
        self.events[kind.index()].enabled = true;
    }

    /// Disable an event (idempotent). Accumulated values are retained, as
    /// with real perf fds.
    pub fn disable(&mut self, kind: CounterKind) {
        self.events[kind.index()].enabled = false;
    }

    pub fn is_enabled(&self, kind: CounterKind) -> bool {
        self.events[kind.index()].enabled
    }

    /// Charge work to the PMU: `delta` holds *true* counts over `elapsed_ns`
    /// of task time. Each enabled event accrues only its multiplexed share.
    pub fn charge(&mut self, delta: &CounterDelta, elapsed_ns: f64) {
        let frac = self.running_fraction();
        for kind in ALL_COUNTERS {
            let ev = &mut self.events[kind.index()];
            if ev.enabled {
                ev.raw += delta.get(kind) * frac;
                ev.time_enabled += elapsed_ns;
                ev.time_running += elapsed_ns * frac;
            }
        }
    }

    /// Read an event, `perf_event` style. Reading a disabled (never enabled)
    /// event returns zeros, as a freshly opened fd would.
    pub fn read(&self, kind: CounterKind) -> PmuReading {
        let ev = &self.events[kind.index()];
        PmuReading {
            value: ev.raw as u64,
            time_enabled: ev.time_enabled as u64,
            time_running: ev.time_running as u64,
        }
    }

    /// Reset all counters (used by toggled user-space collection between
    /// operating units).
    pub fn reset(&mut self) {
        for ev in &mut self.events {
            ev.raw = 0.0;
            ev.time_enabled = 0.0;
            ev.time_running = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(cycles: f64) -> CounterDelta {
        CounterDelta {
            cycles,
            instructions: cycles * 1.5,
            ..Default::default()
        }
    }

    #[test]
    fn no_multiplexing_within_slot_budget() {
        let mut pmu = Pmu::new(4);
        pmu.enable(CounterKind::Cycles);
        pmu.enable(CounterKind::Instructions);
        pmu.charge(&delta(1000.0), 500.0);
        let r = pmu.read(CounterKind::Cycles);
        assert_eq!(r.value, 1000);
        assert_eq!(r.time_enabled, r.time_running);
        assert!((r.normalized() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn multiplexing_scales_raw_but_normalization_recovers() {
        let mut pmu = Pmu::new(4);
        for kind in ALL_COUNTERS {
            pmu.enable(kind);
        }
        // 7 events on 4 slots: running fraction 4/7.
        assert!((pmu.running_fraction() - 4.0 / 7.0).abs() < 1e-12);
        pmu.charge(&delta(7000.0), 700.0);
        let r = pmu.read(CounterKind::Cycles);
        assert_eq!(r.value, 4000); // 7000 * 4/7
        assert_eq!(r.time_enabled, 700);
        assert_eq!(r.time_running, 400);
        assert!((r.normalized() - 7000.0).abs() < 1.0);
    }

    #[test]
    fn disabled_events_do_not_accumulate() {
        let mut pmu = Pmu::new(4);
        pmu.enable(CounterKind::Cycles);
        pmu.charge(&delta(100.0), 10.0);
        pmu.disable(CounterKind::Cycles);
        pmu.charge(&delta(100.0), 10.0);
        assert_eq!(pmu.read(CounterKind::Cycles).value, 100);
        assert_eq!(pmu.read(CounterKind::Instructions).value, 0);
    }

    #[test]
    fn reset_clears_values() {
        let mut pmu = Pmu::new(4);
        pmu.enable(CounterKind::Cycles);
        pmu.charge(&delta(100.0), 10.0);
        pmu.reset();
        let r = pmu.read(CounterKind::Cycles);
        assert_eq!(r.value, 0);
        assert_eq!(r.time_enabled, 0);
        assert!(pmu.is_enabled(CounterKind::Cycles));
    }

    #[test]
    fn never_enabled_reads_zero() {
        let pmu = Pmu::new(4);
        let r = pmu.read(CounterKind::CacheMisses);
        assert_eq!(
            r,
            PmuReading {
                value: 0,
                time_enabled: 0,
                time_running: 0
            }
        );
        assert_eq!(r.normalized(), 0.0);
    }

    #[test]
    fn counter_kind_index_round_trip() {
        for (i, k) in ALL_COUNTERS.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(CounterKind::from_index(i), Some(*k));
        }
        assert_eq!(CounterKind::from_index(7), None);
    }
}
