//! Statically-defined tracepoints (USDT-style markers).
//!
//! TScout's markers compile to NOP instructions plus metadata; when the
//! program starts, the OS patches the NOPs so that hitting an *enabled*
//! marker traps into the kernel and runs the attached BPF programs (paper
//! §3.1). We model the registry, enable/disable patching, and attachment
//! lists. Actually executing the attached programs is the responsibility of
//! the caller (the `tscout` crate owns the BPF VM), which keeps this crate
//! free of a dependency cycle — the kernel only reports *which* programs to
//! run and charges the mode-switch cost.

use std::collections::HashMap;

/// Identifier of a registered tracepoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TracepointId(pub u32);

/// Identifier of a loaded BPF program, assigned by the loader in `tscout-bpf`.
pub type AttachedProgId = u64;

/// Arguments passed from the marker site into attached programs.
///
/// TScout markers support passing qualifiers for an OU (paper §3.2), e.g.
/// which file descriptor or socket to monitor, the OU id, and a pointer to
/// the user-space feature buffer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TracepointArgs {
    /// Up to six scalar arguments, like real tracepoint/probe ABIs.
    pub regs: [u64; 6],
    /// Optional user-space buffer captured at the marker (feature payloads).
    pub user_buf: Vec<u64>,
}

/// A registered static tracepoint.
#[derive(Debug, Clone)]
pub struct Tracepoint {
    pub id: TracepointId,
    /// Provider/name pair, e.g. `("noisetap", "seqscan_begin")`.
    pub provider: String,
    pub name: String,
    /// Whether the site has been patched live. Disabled tracepoints are NOPs
    /// and cost (almost) nothing to pass over.
    pub enabled: bool,
    /// Programs to run when the tracepoint fires, in attach order.
    pub attached: Vec<AttachedProgId>,
}

/// The kernel's tracepoint table.
#[derive(Debug, Default)]
pub struct TracepointRegistry {
    by_id: Vec<Tracepoint>,
    by_name: HashMap<(String, String), TracepointId>,
}

impl TracepointRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new tracepoint site (compile-time marker metadata).
    /// Registering the same provider/name twice returns the existing id.
    pub fn register(&mut self, provider: &str, name: &str) -> TracepointId {
        let key = (provider.to_string(), name.to_string());
        if let Some(id) = self.by_name.get(&key) {
            return *id;
        }
        let id = TracepointId(self.by_id.len() as u32);
        self.by_id.push(Tracepoint {
            id,
            provider: provider.to_string(),
            name: name.to_string(),
            enabled: false,
            attached: Vec::new(),
        });
        self.by_name.insert(key, id);
        id
    }

    pub fn lookup(&self, provider: &str, name: &str) -> Option<TracepointId> {
        self.by_name
            .get(&(provider.to_string(), name.to_string()))
            .copied()
    }

    pub fn get(&self, id: TracepointId) -> Option<&Tracepoint> {
        self.by_id.get(id.0 as usize)
    }

    fn get_mut(&mut self, id: TracepointId) -> &mut Tracepoint {
        &mut self.by_id[id.0 as usize]
    }

    /// Attach a program; enables the site (patches the NOP) if it was off.
    pub fn attach(&mut self, id: TracepointId, prog: AttachedProgId) {
        let tp = self.get_mut(id);
        if !tp.attached.contains(&prog) {
            tp.attached.push(prog);
        }
        tp.enabled = true;
    }

    /// Detach a program; disables the site when no programs remain.
    pub fn detach(&mut self, id: TracepointId, prog: AttachedProgId) {
        let tp = self.get_mut(id);
        tp.attached.retain(|p| *p != prog);
        if tp.attached.is_empty() {
            tp.enabled = false;
        }
    }

    /// Detach a program from every tracepoint (unloading, §5.4).
    pub fn detach_everywhere(&mut self, prog: AttachedProgId) {
        let ids: Vec<TracepointId> = self.by_id.iter().map(|t| t.id).collect();
        for id in ids {
            self.detach(id, prog);
        }
    }

    /// Programs attached to an enabled tracepoint, or empty if disabled.
    pub fn attached_programs(&self, id: TracepointId) -> &[AttachedProgId] {
        match self.get(id) {
            Some(tp) if tp.enabled => &tp.attached,
            _ => &[],
        }
    }

    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut reg = TracepointRegistry::new();
        let a = reg.register("noisetap", "seqscan_begin");
        let b = reg.register("noisetap", "seqscan_begin");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.lookup("noisetap", "seqscan_begin"), Some(a));
        assert_eq!(reg.lookup("noisetap", "nope"), None);
    }

    #[test]
    fn attach_enables_detach_disables() {
        let mut reg = TracepointRegistry::new();
        let tp = reg.register("noisetap", "ou_begin");
        assert!(!reg.get(tp).unwrap().enabled);
        assert!(reg.attached_programs(tp).is_empty());

        reg.attach(tp, 10);
        reg.attach(tp, 11);
        reg.attach(tp, 10); // duplicate ignored
        assert!(reg.get(tp).unwrap().enabled);
        assert_eq!(reg.attached_programs(tp), &[10, 11]);

        reg.detach(tp, 10);
        assert_eq!(reg.attached_programs(tp), &[11]);
        assert!(reg.get(tp).unwrap().enabled);

        reg.detach(tp, 11);
        assert!(!reg.get(tp).unwrap().enabled);
        assert!(reg.attached_programs(tp).is_empty());
    }

    #[test]
    fn detach_everywhere_removes_program_from_all_sites() {
        let mut reg = TracepointRegistry::new();
        let a = reg.register("p", "a");
        let b = reg.register("p", "b");
        reg.attach(a, 1);
        reg.attach(b, 1);
        reg.attach(b, 2);
        reg.detach_everywhere(1);
        assert!(reg.attached_programs(a).is_empty());
        assert_eq!(reg.attached_programs(b), &[2]);
    }

    #[test]
    fn disabled_tracepoint_reports_no_programs() {
        let mut reg = TracepointRegistry::new();
        let tp = reg.register("p", "x");
        reg.attach(tp, 1);
        reg.detach(tp, 1);
        // Program list may be empty AND the site disabled — NOP again.
        assert!(reg.attached_programs(tp).is_empty());
    }
}
