//! # tscout-kernel — simulated operating-system substrate
//!
//! The TScout paper (Butrovich et al., SIGMOD 2022) collects DBMS training
//! data through Linux kernel facilities: statically-defined tracepoints,
//! `perf_event` hardware counters, per-task I/O accounting (`task_struct`
//! / `ioac`), socket statistics (`tcp_sock`), and BPF programs running in
//! kernel mode. None of those facilities are portably available to a pure
//! Rust library, so this crate provides a *deterministic simulation* of the
//! kernel surface the paper depends on:
//!
//! * [`HardwareProfile`] — the machine: cores, clock, caches, storage, NIC.
//!   Presets mirror the paper's two testbeds (a 2×20-core Xeon server and a
//!   6-core laptop-class machine).
//! * [`Kernel`] — the kernel proper: task table, per-task virtual clocks,
//!   PMU state, tracepoint registry, and the syscall layer. Every unit of
//!   DBMS work is *charged* to a task, advancing its virtual clock and its
//!   hardware counters according to the [`CostModel`].
//! * [`Pmu`] — per-task performance counters with a limited number of
//!   hardware slots. Enabling more events than slots engages multiplexing,
//!   and reads return `(value, time_enabled, time_running)` so callers must
//!   normalize — exactly the normalization TScout's CPU probe performs.
//! * [`Tracepoint`]s — USDT-style markers. Firing an *enabled* tracepoint
//!   costs one user→kernel mode switch and hands control to whatever BPF
//!   programs are attached (program execution itself is mediated by the
//!   `tscout` crate, which owns the BPF VM).
//!
//! All timing in the simulation is **virtual**: each task owns a nanosecond
//! ledger advanced by the cost model. This makes every experiment in the
//! reproduction deterministic and host-independent while preserving the
//! *relative* costs the paper's evaluation hinges on (one mode switch for a
//! kernel-space probe vs. three syscalls for toggled user-space collection,
//! PMU save/restore on context switches, group-commit I/O batching, ...).
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod cost;
pub mod hw;
pub mod kernel;
pub mod pmu;
pub mod task;
pub mod tracepoint;

pub use cost::CostModel;
pub use hw::{HardwareProfile, StorageDevice};
pub use kernel::{Kernel, SyscallKind};
// Re-export the profiler surface so instrumented crates can name frame
// guards and read folded profiles without a direct telemetry dep.
pub use pmu::{CounterKind, Pmu, PmuReading, ALL_COUNTERS};
pub use task::{Ioac, TaskId, TaskStruct, TcpSock};
pub use tracepoint::{Tracepoint, TracepointArgs, TracepointId};
pub use tscout_telemetry::{Attribution, FrameGuard, Profiler, DEFAULT_PROFILE_PERIOD_NS};
