//! Per-task kernel state: `task_struct` in miniature.
//!
//! TScout's kernel-level disk probe reads the task's I/O accounting struct
//! (`ioac`, paper §4.4) and its network probe reads `tcp_sock` statistics
//! (paper §4.3). Both live here, together with the task's virtual clock and
//! its PMU.

use crate::pmu::Pmu;

/// Opaque task identifier (a simulated TID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    pub fn as_u64(self) -> u64 {
        self.0 as u64
    }
}

/// Linux-style per-task I/O accounting (`struct task_io_accounting`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ioac {
    /// Bytes the task has caused to be read from storage.
    pub read_bytes: u64,
    /// Bytes the task has caused to be written to storage.
    pub write_bytes: u64,
    /// Number of read syscalls issued.
    pub read_syscalls: u64,
    /// Number of write syscalls issued.
    pub write_syscalls: u64,
}

/// Socket statistics mirroring the fields TScout reads out of `tcp_sock`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpSock {
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub segs_out: u64,
    pub segs_in: u64,
}

/// The simulated `task_struct`.
#[derive(Debug, Clone)]
pub struct TaskStruct {
    pub id: TaskId,
    /// Virtual monotonic clock for this task, in nanoseconds.
    pub clock_ns: f64,
    /// Per-task performance counters.
    pub pmu: Pmu,
    /// I/O accounting (read by the disk probe).
    pub ioac: Ioac,
    /// Socket statistics (read by the network probe).
    pub tcp: TcpSock,
    /// Number of context switches this task has experienced.
    pub context_switches: u64,
    /// Total syscalls issued (all kinds).
    pub syscalls: u64,
}

impl TaskStruct {
    pub fn new(id: TaskId, pmu_slots: usize) -> Self {
        TaskStruct {
            id,
            clock_ns: 0.0,
            pmu: Pmu::new(pmu_slots),
            ioac: Ioac::default(),
            tcp: TcpSock::default(),
            context_switches: 0,
            syscalls: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_task_is_zeroed() {
        let t = TaskStruct::new(TaskId(7), 4);
        assert_eq!(t.id, TaskId(7));
        assert_eq!(t.clock_ns, 0.0);
        assert_eq!(t.ioac, Ioac::default());
        assert_eq!(t.tcp, TcpSock::default());
        assert_eq!(t.context_switches, 0);
    }

    #[test]
    fn task_id_as_u64() {
        assert_eq!(TaskId(42).as_u64(), 42);
    }
}
