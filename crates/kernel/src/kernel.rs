//! The simulated kernel: task table, charging APIs, syscalls, tracepoints.
//!
//! Everything the DBMS and TScout do is expressed as *charges* against a
//! task: CPU work, I/O, network traffic, syscalls, mode switches. A charge
//! advances the task's virtual clock and updates whatever kernel-visible
//! state the work touches (PMU counters, `ioac`, `tcp_sock`). Benchmarks
//! then derive throughput and latency from the virtual clocks, which makes
//! every experiment deterministic for a fixed seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tscout_telemetry::{FrameGuard, Profiler, Telemetry};

use crate::cost::CostModel;
use crate::hw::HardwareProfile;
use crate::pmu::{CounterDelta, PmuReading, ALL_COUNTERS};
use crate::task::{TaskId, TaskStruct};
use crate::tracepoint::{AttachedProgId, TracepointId, TracepointRegistry};

/// Classification of syscalls for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallKind {
    /// A generic syscall (e.g. `getrusage`).
    Generic,
    /// `ioctl(PERF_EVENT_IOC_{ENABLE,DISABLE})` — reprograms the PMU.
    PerfToggle,
    /// `read()` on a perf fd group covering `n` counters.
    PerfRead(usize),
    /// Storage read/write of a given size.
    Io,
    /// Socket send/recv.
    Net,
}

/// A resource that serializes callers (models a contended lock / pipe).
///
/// `acquire` advances the caller to the moment the resource frees up, holds
/// it for `hold_ns`, and returns the caller's new clock. This is how the
/// user-space sample-emission path bottlenecks (§6.2): all DBMS threads
/// funnel through one lock, so aggregate emission rate is capped at
/// `1 / hold_ns` regardless of thread count.
#[derive(Debug, Clone, Default)]
pub struct SerializedResource {
    free_at_ns: f64,
}

impl SerializedResource {
    pub fn acquire(&mut self, now_ns: f64, hold_ns: f64) -> f64 {
        let start = now_ns.max(self.free_at_ns);
        self.free_at_ns = start + hold_ns;
        self.free_at_ns
    }

    pub fn free_at(&self) -> f64 {
        self.free_at_ns
    }

    pub fn reset(&mut self) {
        self.free_at_ns = 0.0;
    }
}

/// The simulated kernel.
#[derive(Debug)]
pub struct Kernel {
    pub hw: HardwareProfile,
    pub cost: CostModel,
    tasks: Vec<TaskStruct>,
    pub tracepoints: TracepointRegistry,
    /// Serialized user-space sample-emission path (shared buffer + lock).
    pub user_emit_path: SerializedResource,
    /// Serialized WAL device: one flush at a time.
    pub wal_device: SerializedResource,
    rng: StdRng,
    /// Multiplicative noise applied to CPU charges (0 disables).
    pub noise_frac: f64,
    /// Number of tasks currently runnable (set by the workload driver; feeds
    /// the contention model).
    runnable: u32,
    /// The simulation-wide metrics registry. The kernel owns the canonical
    /// handle; TScout, the Processor, and the DBMS clone it at construction
    /// so one snapshot covers the whole simulated world.
    pub telemetry: Telemetry,
    /// Virtual-clock sampling profiler (see [`Profiler`]). Disabled by
    /// default (zero period); the bench harness enables it via
    /// [`Kernel::set_profile_period_ns`]. Every charge feeds it, so when
    /// enabled, folded samples account for all charged virtual time.
    pub profiler: Profiler,
}

impl Kernel {
    pub fn new(hw: HardwareProfile) -> Self {
        Self::with_seed(hw, 0xC0FFEE)
    }

    pub fn with_seed(hw: HardwareProfile, seed: u64) -> Self {
        Kernel {
            hw,
            cost: CostModel::default(),
            tasks: Vec::new(),
            tracepoints: TracepointRegistry::new(),
            user_emit_path: SerializedResource::default(),
            wal_device: SerializedResource::default(),
            rng: StdRng::seed_from_u64(seed),
            noise_frac: 0.03,
            runnable: 1,
            telemetry: Telemetry::default(),
            profiler: Profiler::default(),
        }
    }

    /// Enable the sampling profiler with one interrupt per `period_ns`
    /// of charged virtual time (`<= 0` disables it).
    pub fn set_profile_period_ns(&mut self, period_ns: f64) {
        self.profiler.set_period_ns(period_ns);
    }

    /// Push a profiler frame for `id`'s execution context; the frame
    /// pops when the returned guard drops. `root` re-bases attribution
    /// at this frame (collection-side work pushes a `tscout` root so its
    /// overhead never folds under the DBMS stack it interrupted).
    pub fn profile_frame(&self, id: TaskId, name: &str, root: bool) -> FrameGuard {
        self.profiler.push_frame(id.0 as usize, name, root)
    }

    /// [`Kernel::profile_frame`] with a lazily-built name — use on hot
    /// paths where the name is a `format!`.
    pub fn profile_frame_lazy(
        &self,
        id: TaskId,
        root: bool,
        name: impl FnOnce() -> String,
    ) -> FrameGuard {
        self.profiler.push_frame_lazy(id.0 as usize, root, name)
    }

    // ------------------------------------------------------------------
    // Tasks
    // ------------------------------------------------------------------

    pub fn create_task(&mut self) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(TaskStruct::new(id, self.hw.pmu_slots));
        id
    }

    pub fn task(&self, id: TaskId) -> &TaskStruct {
        &self.tasks[id.0 as usize]
    }

    pub fn task_mut(&mut self, id: TaskId) -> &mut TaskStruct {
        &mut self.tasks[id.0 as usize]
    }

    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Current virtual time of a task, ns.
    pub fn now(&self, id: TaskId) -> f64 {
        self.task(id).clock_ns
    }

    /// Advance a task's clock without doing accountable work (sleep/wait).
    pub fn advance(&mut self, id: TaskId, ns: f64) {
        self.task_mut(id).clock_ns += ns;
    }

    /// Jump a task's clock forward to `ns` if it is behind (waiting on an
    /// event that completes at `ns`).
    pub fn advance_to(&mut self, id: TaskId, ns: f64) {
        let t = self.task_mut(id);
        if t.clock_ns < ns {
            t.clock_ns = ns;
        }
    }

    /// Tell the contention model how many tasks are actively executing.
    pub fn set_runnable(&mut self, n: u32) {
        self.runnable = n.max(1);
    }

    pub fn runnable(&self) -> u32 {
        self.runnable
    }

    // ------------------------------------------------------------------
    // Charging
    // ------------------------------------------------------------------

    fn noise(&mut self) -> f64 {
        if self.noise_frac == 0.0 {
            1.0
        } else {
            1.0 + self.noise_frac * (2.0 * self.rng.random::<f64>() - 1.0)
        }
    }

    /// Deterministic RNG for callers that need reproducible randomness tied
    /// to the kernel seed.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Charge a block of CPU work to a task.
    ///
    /// * `instructions` — dynamic instruction count of the work.
    /// * `ws_bytes` — working-set size driving LLC pressure.
    ///
    /// Returns the elapsed virtual nanoseconds.
    pub fn charge_cpu(&mut self, id: TaskId, instructions: f64, ws_bytes: u64) -> f64 {
        let noise = self.noise();
        let instructions = instructions * noise;
        let contention = self.cost.contention_factor(&self.hw, self.runnable);
        let miss_rate = self.cost.miss_rate(&self.hw, ws_bytes, self.runnable);
        let mem_refs = instructions * 0.35;
        let cache_refs = mem_refs * 0.18; // refs that reach LLC
        let misses = cache_refs * miss_rate;
        let ns = self.cost.cpu_ns(&self.hw, instructions, misses) * contention;
        let cycles = self.hw.ns_to_cycles(ns);
        let delta = CounterDelta {
            cycles,
            instructions,
            ref_cycles: cycles,
            cache_references: cache_refs,
            cache_misses: misses,
            branches: instructions * 0.2,
            branch_misses: instructions * 0.2 * 0.03,
        };
        let t = self.task_mut(id);
        t.pmu.charge(&delta, ns);
        t.clock_ns += ns;
        // The profiling interrupt source: observes the charge, never
        // alters it. Idle waits (`advance`/`advance_to`) are not work
        // and are deliberately not sampled.
        self.profiler.on_charge(id.0 as usize, ns);
        ns
    }

    /// Charge fixed-duration kernel-side overhead (mode switches, BPF
    /// execution, ...). Counts toward cycles but not data-work counters.
    pub fn charge_overhead(&mut self, id: TaskId, ns: f64) -> f64 {
        let cycles = self.hw.ns_to_cycles(ns);
        let delta = CounterDelta {
            cycles,
            instructions: cycles * self.cost.ipc * 0.6,
            ref_cycles: cycles,
            ..Default::default()
        };
        let t = self.task_mut(id);
        t.pmu.charge(&delta, ns);
        t.clock_ns += ns;
        self.profiler.on_charge(id.0 as usize, ns);
        ns
    }

    /// One user↔kernel mode switch.
    pub fn mode_switch(&mut self, id: TaskId) -> f64 {
        let ns = self.cost.mode_switch_ns;
        self.telemetry
            .counter_inc("kernel_mode_switches_total", &[]);
        self.charge_overhead(id, ns)
    }

    /// Issue a syscall of the given kind, charging its full cost.
    pub fn syscall(&mut self, id: TaskId, kind: SyscallKind) -> f64 {
        let (ns, kind_label) = match kind {
            SyscallKind::Generic => (self.cost.syscall_ns(), "generic"),
            SyscallKind::PerfToggle => (self.cost.perf_toggle_syscall_ns(), "perf_toggle"),
            SyscallKind::PerfRead(n) => (self.cost.perf_read_syscall_ns(n), "perf_read"),
            SyscallKind::Io => (self.cost.syscall_ns(), "io"),
            SyscallKind::Net => (self.cost.syscall_ns(), "net"),
        };
        self.task_mut(id).syscalls += 1;
        self.telemetry
            .counter_inc("kernel_syscalls_total", &[("kind", kind_label)]);
        self.charge_overhead(id, ns)
    }

    /// A context switch; if perf counters are continuously enabled the
    /// kernel additionally saves/restores PMU state (the User-Continuous
    /// floor cost of §6.2).
    pub fn context_switch(&mut self, id: TaskId, pmu_enabled: bool) -> f64 {
        let mut ns = self.cost.context_switch_ns;
        if pmu_enabled {
            ns += self.cost.cs_pmu_save_ns;
        }
        self.task_mut(id).context_switches += 1;
        self.telemetry.counter_inc(
            "kernel_context_switches_total",
            &[("pmu", if pmu_enabled { "on" } else { "off" })],
        );
        self.charge_overhead(id, ns)
    }

    // ------------------------------------------------------------------
    // Perf event syscalls (user-space collection paths)
    // ------------------------------------------------------------------

    /// Enable all counters via one ioctl on the group fd.
    pub fn perf_enable_all(&mut self, id: TaskId) {
        self.syscall(id, SyscallKind::PerfToggle);
        for k in ALL_COUNTERS {
            self.task_mut(id).pmu.enable(k);
        }
    }

    /// Disable all counters via one ioctl on the group fd.
    pub fn perf_disable_all(&mut self, id: TaskId) {
        self.syscall(id, SyscallKind::PerfToggle);
        for k in ALL_COUNTERS {
            self.task_mut(id).pmu.disable(k);
        }
    }

    /// Enable counters without charging a syscall — used at DBMS start-up
    /// for the continuous collection modes (setup cost is off the hot path).
    pub fn perf_enable_all_free(&mut self, id: TaskId) {
        for k in ALL_COUNTERS {
            self.task_mut(id).pmu.enable(k);
        }
    }

    /// Read all counters from user space: one group-read syscall.
    pub fn perf_read_user(&mut self, id: TaskId) -> [PmuReading; 7] {
        self.syscall(id, SyscallKind::PerfRead(ALL_COUNTERS.len()));
        let t = self.task(id);
        let mut out = [PmuReading {
            value: 0,
            time_enabled: 0,
            time_running: 0,
        }; 7];
        for k in ALL_COUNTERS {
            out[k.index()] = t.pmu.read(k);
        }
        out
    }

    /// Read all counters from kernel space (BPF helper path): no syscall,
    /// just the per-counter MSR read cost. The mode switch was already paid
    /// by the tracepoint.
    pub fn perf_read_kernel(&mut self, id: TaskId) -> [PmuReading; 7] {
        let ns = ALL_COUNTERS.len() as f64 * self.cost.pmu_read_kernel_ns;
        self.charge_overhead(id, ns);
        let t = self.task(id);
        let mut out = [PmuReading {
            value: 0,
            time_enabled: 0,
            time_running: 0,
        }; 7];
        for k in ALL_COUNTERS {
            out[k.index()] = t.pmu.read(k);
        }
        out
    }

    // ------------------------------------------------------------------
    // I/O and network
    // ------------------------------------------------------------------

    /// Write `bytes` to the WAL device. Charges the syscall to the caller,
    /// updates `ioac`, serializes on the device, and returns the completion
    /// time (the caller's clock is advanced to it).
    pub fn io_write(&mut self, id: TaskId, bytes: u64) -> f64 {
        self.syscall(id, SyscallKind::Io);
        let t = self.task_mut(id);
        t.ioac.write_bytes += bytes;
        t.ioac.write_syscalls += 1;
        let now = t.clock_ns;
        let dev_ns = self.hw.storage.write_time_ns(bytes);
        let done = self.wal_device.acquire(now, dev_ns);
        // Observed latency includes queueing behind earlier flushes, which
        // is what a caller blocked on fsync actually experiences.
        self.telemetry
            .hist_record("kernel_wal_write_ns", &[], done - now);
        self.telemetry
            .counter_add("kernel_wal_bytes_total", &[], bytes);
        self.advance_to(id, done);
        done
    }

    /// Send `bytes` on a socket: syscall + wire time, updates `tcp_sock`.
    pub fn net_send(&mut self, id: TaskId, bytes: u64) -> f64 {
        self.syscall(id, SyscallKind::Net);
        let wire = bytes as f64 / 1024.0 * self.hw.net_ns_per_kb;
        self.charge_overhead(id, wire);
        let t = self.task_mut(id);
        t.tcp.bytes_sent += bytes;
        t.tcp.segs_out += bytes.div_ceil(1448).max(1);
        t.clock_ns
    }

    /// Receive `bytes` from a socket.
    pub fn net_recv(&mut self, id: TaskId, bytes: u64) -> f64 {
        self.syscall(id, SyscallKind::Net);
        let wire = bytes as f64 / 1024.0 * self.hw.net_ns_per_kb;
        self.charge_overhead(id, wire);
        let t = self.task_mut(id);
        t.tcp.bytes_received += bytes;
        t.tcp.segs_in += bytes.div_ceil(1448).max(1);
        t.clock_ns
    }

    // ------------------------------------------------------------------
    // Tracepoints
    // ------------------------------------------------------------------

    /// Fire a tracepoint from `task`. If the site is enabled, the task pays
    /// one mode switch and the kernel returns the attached program ids for
    /// the caller (the BPF runtime in `tscout`) to execute. Disabled sites
    /// are NOPs and cost nothing here.
    pub fn fire_tracepoint(&mut self, id: TaskId, tp: TracepointId) -> Vec<AttachedProgId> {
        let progs: Vec<AttachedProgId> = self.tracepoints.attached_programs(tp).to_vec();
        if !progs.is_empty() {
            self.telemetry
                .counter_inc("kernel_tracepoint_hits_total", &[]);
            self.mode_switch(id);
        }
        progs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmu::CounterKind;

    fn kernel() -> Kernel {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 7);
        k.noise_frac = 0.0;
        k
    }

    #[test]
    fn charge_cpu_advances_clock_and_counters() {
        let mut k = kernel();
        let t = k.create_task();
        k.perf_enable_all_free(t);
        let ns = k.charge_cpu(t, 100_000.0, 1 << 16);
        assert!(ns > 0.0);
        assert_eq!(k.now(t), ns);
        let cycles = k.task(t).pmu.read(CounterKind::Cycles);
        assert!(cycles.value > 0);
        let instr = k.task(t).pmu.read(CounterKind::Instructions);
        // 7 events on 4 slots: raw is scaled by 4/7 but normalization recovers.
        assert!((instr.normalized() - 100_000.0).abs() / 100_000.0 < 0.01);
    }

    #[test]
    fn user_toggle_is_costlier_than_tracepoint_fire() {
        let mut k = kernel();
        let t1 = k.create_task();
        let t2 = k.create_task();

        // User-toggle pattern: enable, disable, read.
        k.perf_enable_all(t1);
        k.perf_disable_all(t1);
        k.perf_read_user(t1);
        let user_cost = k.now(t1);

        // Kernel pattern: tracepoint fire + in-kernel reads (twice: begin+end).
        let tp = k.tracepoints.register("x", "y");
        k.tracepoints.attach(tp, 1);
        k.fire_tracepoint(t2, tp);
        k.perf_read_kernel(t2);
        k.fire_tracepoint(t2, tp);
        k.perf_read_kernel(t2);
        let kernel_cost = k.now(t2);

        assert!(
            user_cost > 2.0 * kernel_cost,
            "user {user_cost} kernel {kernel_cost}"
        );
    }

    #[test]
    fn disabled_tracepoint_costs_nothing() {
        let mut k = kernel();
        let t = k.create_task();
        let tp = k.tracepoints.register("x", "y");
        let progs = k.fire_tracepoint(t, tp);
        assert!(progs.is_empty());
        assert_eq!(k.now(t), 0.0);
    }

    #[test]
    fn io_write_serializes_on_device() {
        let mut k = kernel();
        let a = k.create_task();
        let b = k.create_task();
        let done_a = k.io_write(a, 1 << 20);
        let done_b = k.io_write(b, 1 << 20);
        // Task b started at time ~0 but the device was busy until done_a.
        assert!(done_b > done_a);
        assert_eq!(k.task(a).ioac.write_bytes, 1 << 20);
        assert_eq!(k.task(b).ioac.write_syscalls, 1);
    }

    #[test]
    fn net_updates_tcp_sock() {
        let mut k = kernel();
        let t = k.create_task();
        k.net_send(t, 3000);
        k.net_recv(t, 100);
        let tcp = k.task(t).tcp;
        assert_eq!(tcp.bytes_sent, 3000);
        assert_eq!(tcp.bytes_received, 100);
        assert_eq!(tcp.segs_out, 3); // ceil(3000/1448)
        assert_eq!(tcp.segs_in, 1);
    }

    #[test]
    fn context_switch_pmu_tax() {
        let mut k = kernel();
        let a = k.create_task();
        let b = k.create_task();
        let plain = k.context_switch(a, false);
        let taxed = k.context_switch(b, true);
        assert!((taxed - plain - k.cost.cs_pmu_save_ns).abs() < 1e-9);
    }

    #[test]
    fn serialized_resource_queues() {
        let mut r = SerializedResource::default();
        assert_eq!(r.acquire(0.0, 10.0), 10.0);
        assert_eq!(r.acquire(0.0, 10.0), 20.0); // queued behind first
        assert_eq!(r.acquire(100.0, 10.0), 110.0); // idle gap
    }

    #[test]
    fn contention_scales_cpu_charge() {
        let mut k = kernel();
        let a = k.create_task();
        let ns1 = k.charge_cpu(a, 1_000_000.0, 1 << 10);
        k.set_runnable(80); // 2x oversubscribed on 40 cores
        let b = k.create_task();
        k.set_runnable(80);
        let ns2 = {
            let before = k.now(b);
            k.charge_cpu(b, 1_000_000.0, 1 << 10);
            k.now(b) - before
        };
        assert!(ns2 > 1.5 * ns1, "contended {ns2} uncontended {ns1}");
    }

    #[test]
    fn telemetry_tracks_charging_paths() {
        let mut k = kernel();
        let t = k.create_task();
        k.syscall(t, SyscallKind::Generic);
        k.syscall(t, SyscallKind::PerfToggle);
        k.context_switch(t, true);
        k.io_write(t, 4096);
        assert_eq!(
            k.telemetry
                .counter_value("kernel_syscalls_total", &[("kind", "generic")]),
            1
        );
        assert_eq!(
            k.telemetry
                .counter_value("kernel_syscalls_total", &[("kind", "perf_toggle")]),
            1
        );
        // io_write issues an "io" syscall internally.
        assert_eq!(k.telemetry.counter_total("kernel_syscalls_total"), 3);
        assert_eq!(
            k.telemetry
                .counter_value("kernel_context_switches_total", &[("pmu", "on")]),
            1
        );
        assert_eq!(
            k.telemetry.counter_value("kernel_wal_bytes_total", &[]),
            4096
        );
        let wal = k
            .telemetry
            .hist_snapshot("kernel_wal_write_ns", &[])
            .unwrap();
        assert_eq!(wal.count, 1);
        assert!(wal.max > 0.0);
    }

    #[test]
    fn profiler_samples_charges_without_altering_them() {
        let mut with = kernel();
        let mut without = kernel();
        with.set_profile_period_ns(50.0);
        let a = with.create_task();
        let b = without.create_task();
        let guard = with.profile_frame(a, "dbms", true);
        let ns_with = with.charge_cpu(a, 100_000.0, 1 << 16) + with.charge_overhead(a, 777.0);
        drop(guard);
        let ns_without =
            without.charge_cpu(b, 100_000.0, 1 << 16) + without.charge_overhead(b, 777.0);
        // Identical charges whether or not the profiler observes them.
        assert_eq!(ns_with, ns_without);
        let fired = with.profiler.interrupts_fired();
        assert_eq!(fired, (ns_with / 50.0).floor() as u64);
        let folded = with.profiler.folded();
        assert_eq!(folded.len(), 1);
        assert_eq!(folded[0].0, "dbms");
        assert_eq!(folded[0].1.samples, fired);
        assert_eq!(without.profiler.interrupts_fired(), 0);
    }

    #[test]
    fn idle_waits_are_not_sampled() {
        let mut k = kernel();
        k.set_profile_period_ns(10.0);
        let t = k.create_task();
        k.advance(t, 1_000.0);
        k.advance_to(t, 5_000.0);
        assert_eq!(k.profiler.interrupts_fired(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = || {
            let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 99);
            let t = k.create_task();
            let mut total = 0.0;
            for i in 0..100 {
                total += k.charge_cpu(t, 1000.0 + i as f64, 4096);
            }
            total
        };
        assert_eq!(run(), run());
    }
}
