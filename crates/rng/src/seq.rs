//! Sequence helpers, mirroring `rand::seq`.

use crate::{RngCore, RngExt};

/// In-place Fisher–Yates shuffle, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b: Vec<u32> = (0..32).collect();
        a.shuffle(&mut StdRng::seed_from_u64(8));
        b.shuffle(&mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
