//! Deterministic pseudo-random numbers for the whole workspace, with no
//! external dependencies.
//!
//! The suite previously pulled in the `rand` crate for a tiny API
//! surface: `StdRng::seed_from_u64`, `random_range`, `random::<f64>()`,
//! and slice shuffling. Builds must succeed on machines with no crates.io
//! access, so this crate re-implements exactly that surface and the
//! workspace aliases it as `rand` (`rand = { package = "tscout-rng" }`),
//! leaving every `use rand::...` import unchanged.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded by expanding
//! a single `u64` through splitmix64 — the standard seeding procedure
//! recommended by the xoshiro authors. It is fast, has a 2^256 − 1
//! period, and passes BigCrush; it is *not* cryptographic, which is fine
//! for workload generation and sampling-field shuffles.
//!
//! Determinism contract: for a fixed seed, every method here produces an
//! identical stream across platforms and releases of this workspace.
//! Benchmarks and tests rely on that for reproducible figures.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Seeding from a `u64`, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator: everything derives from a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types producible by [`RngExt::random`] (the `Standard` distribution).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[inline]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`RngExt::random_range`]. `bounds` returns the
/// inclusive `[lo, hi]` pair.
pub trait SampleRange<T: SampleUniform> {
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        let lo = self.start.to_i128();
        let hi = self.end.to_i128();
        assert!(lo < hi, "random_range: empty range");
        (T::from_i128(lo), T::from_i128(hi - 1))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo.to_i128() <= hi.to_i128(), "random_range: empty range");
        (lo, hi)
    }
}

/// The user-facing sampling methods, mirroring `rand::Rng` (named
/// `RngExt` here to match the imports already in the tree).
pub trait RngExt: RngCore {
    /// Uniform sample from the `Standard` distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform integer in the given range (`a..b` or `a..=b`).
    ///
    /// Uses Lemire's multiply-shift bounded sampling; the modulo bias is
    /// below 2^-64 per draw, which is far beneath anything the workloads
    /// or sampler could observe.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        let (lo_i, hi_i) = (lo.to_i128(), hi.to_i128());
        // Span fits in u64 + 1 because every supported type is ≤ 64 bits.
        let span = (hi_i - lo_i) as u128 + 1;
        if span == 1u128 << 64 {
            return T::from_i128(lo_i + self.next_u64() as i128);
        }
        let x = (u128::from(self.next_u64()) * span) >> 64;
        T::from_i128(lo_i + x as i128)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = rng.random_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5..5);
    }

    #[test]
    fn full_u64_range_works() {
        let mut rng = StdRng::seed_from_u64(9);
        // Must not panic or truncate the span.
        let _ = rng.random_range(0..=u64::MAX);
    }
}
