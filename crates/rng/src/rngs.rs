//! Concrete generators. `StdRng` is xoshiro256++, the workspace default.

use crate::{RngCore, SeedableRng};

/// splitmix64 step — used only to expand a 64-bit seed into the
/// generator's 256-bit state, per the xoshiro reference implementation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the workspace's deterministic generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one fixed point; splitmix64 cannot emit
        // four zeros in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the xoshiro256++ C implementation with
    /// state {1, 2, 3, 4}.
    #[test]
    fn matches_reference_stream() {
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    /// Reference vector for splitmix64 with seed 1234567.
    #[test]
    fn splitmix_matches_reference() {
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
    }
}
