//! # tscout-archive — the training-data archive
//!
//! TScout's Processor "archives training data for OU-level behavior
//! models" (paper §3.2). This crate is that archive: an **append-only,
//! segmented, columnar per-OU sample store** with bounded write-side
//! memory, background compaction, per-OU retention, and crash recovery —
//! the durable stage between the Collector→Processor pipeline and model
//! training.
//!
//! Layout (SciTS-style segmented time series):
//!
//! * [`Sample`]s are appended to **per-OU memtables**; a memtable flush
//!   encodes one columnar block (delta+varint or frame-of-reference
//!   bit-packed per column, CRC32-framed) into the active segment file.
//! * Segments **seal** with a footer manifest once large enough; sealed
//!   segments are immutable.
//! * **Compaction** merges runs of small sealed segments and applies the
//!   per-OU retention budget (oldest samples beyond it are retired).
//! * **Recovery**: opening a directory tolerates torn/truncated tails —
//!   the file is truncated back to its last CRC-valid frame and the
//!   event is counted in `archive_recovered_truncations_total`.
//! * **Scans** stream samples back block-by-block (never materializing
//!   the archive) and reconstruct them **bit-identically**, floats
//!   included (`f64::to_bits` round-trip).
//!
//! Everything is hand-rolled on `std` only; the workspace builds fully
//! offline.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

mod compact;
mod crc32;
mod encode;
mod segment;
mod store;

pub use crc32::crc32;
pub use segment::{BlockMeta, OuEntry};
pub use store::{Archive, ArchiveStats, SampleScan};

/// One archived training sample — the Processor's decoded
/// `TrainingPoint` plus its query-template tag (0 = untagged /
/// background work).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub ou: u16,
    pub ou_name: String,
    /// Subsystem index (`tscout::Subsystem::index()`).
    pub subsystem: u8,
    pub tid: u32,
    /// Query template that produced the sample (0 = untagged).
    pub template: u32,
    pub start_ns: u64,
    /// Target metric: OU elapsed execution time.
    pub elapsed_ns: u64,
    /// Kernel-probe metrics in the subsystem's probe order.
    pub metrics: Vec<u64>,
    /// OU input features.
    pub features: Vec<f64>,
    /// User-level probe metrics.
    pub user_metrics: Vec<u64>,
}

impl Sample {
    /// Bit-exact equality: features compare by `to_bits`, so NaNs and
    /// signed zeros count as equal to themselves (unlike `==`).
    pub fn bits_eq(&self, other: &Sample) -> bool {
        self.ou == other.ou
            && self.ou_name == other.ou_name
            && self.subsystem == other.subsystem
            && self.tid == other.tid
            && self.template == other.template
            && self.start_ns == other.start_ns
            && self.elapsed_ns == other.elapsed_ns
            && self.metrics == other.metrics
            && self.features.len() == other.features.len()
            && self
                .features
                .iter()
                .zip(&other.features)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.user_metrics == other.user_metrics
    }
}

/// Archive tuning knobs. The defaults bound write-side memory at
/// `max_buffered_samples` decoded samples regardless of OU count.
#[derive(Debug, Clone)]
pub struct ArchiveOptions {
    /// Flush an OU's memtable once it holds this many samples.
    pub memtable_flush_samples: usize,
    /// Global cap on buffered samples across all memtables; exceeding it
    /// force-flushes the largest memtable (the write-side memory bound).
    pub max_buffered_samples: usize,
    /// Seal the active segment once it holds this many bytes.
    pub segment_max_bytes: u64,
    /// Compact once this many contiguous small sealed segments exist.
    pub compact_fanin: usize,
    /// A sealed segment below this size is a compaction candidate.
    pub small_segment_bytes: u64,
    /// Retention budget: newest samples kept per OU across the whole
    /// archive (`usize::MAX` = keep everything). Enforced at compaction.
    pub retention_per_ou: usize,
}

impl Default for ArchiveOptions {
    fn default() -> Self {
        ArchiveOptions {
            memtable_flush_samples: 512,
            max_buffered_samples: 8_192,
            segment_max_bytes: 1 << 20,
            compact_fanin: 4,
            small_segment_bytes: 1 << 19,
            retention_per_ou: usize::MAX,
        }
    }
}

/// Archive errors. Corruption inside segment files is *recovered*, not
/// errored — `Corrupt` only surfaces for unusable directories or blocks
/// that a manifest points at but cannot be decoded.
#[derive(Debug)]
pub enum ArchiveError {
    Io(std::io::Error),
    Corrupt(String),
}

impl From<std::io::Error> for ArchiveError {
    fn from(e: std::io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive io error: {e}"),
            ArchiveError::Corrupt(m) => write!(f, "archive corrupt: {m}"),
        }
    }
}

impl std::error::Error for ArchiveError {}
