//! Segment file format: framed columnar blocks plus a footer manifest.
//!
//! A segment file is an append-only sequence of CRC-framed records:
//!
//! ```text
//! file   := magic "TSAR" , u8 version (1) , frame* , [footer frame]
//! frame  := u8 kind (1=block | 2=footer)
//!         , u32le payload_len
//!         , payload
//!         , u32le crc32(payload)
//! ```
//!
//! A **block** holds one OU's samples from one memtable flush, stored
//! column-wise (see [`crate::encode`]). A **footer** is written once at
//! seal time and carries the manifest: an OU directory and one entry per
//! block (offset, length, OU, count, start-time range) so readers can
//! plan a scan without touching block payloads. Files without a valid
//! footer — a crash before seal, or a torn tail — are recovered by
//! scanning frames from the start and truncating at the first invalid
//! one; per-frame CRCs make that cut exact.

use std::io::{Read, Seek, SeekFrom, Write};

use crate::encode::{get_column, get_varint, put_column, put_varint};
use crate::{crc32::crc32, ArchiveError, Sample};

/// File magic ("TScout ARchive").
pub const MAGIC: &[u8; 4] = b"TSAR";
/// Format version.
pub const VERSION: u8 = 1;
/// Frame kind: columnar sample block.
pub const FRAME_BLOCK: u8 = 1;
/// Frame kind: seal footer (manifest).
pub const FRAME_FOOTER: u8 = 2;
/// Bytes of frame overhead around a payload (kind + len + crc).
pub const FRAME_OVERHEAD: usize = 1 + 4 + 4;
/// Header bytes before the first frame.
pub const HEADER_LEN: u64 = 5;
/// Sanity cap on a single frame payload (a torn length field must not
/// trigger a huge allocation).
pub const MAX_FRAME_LEN: u32 = 1 << 28;

/// Manifest entry for one block, kept in memory per open segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// File offset of the frame's kind byte.
    pub offset: u64,
    pub payload_len: u32,
    pub ou: u16,
    pub count: u64,
    pub min_start_ns: u64,
    pub max_start_ns: u64,
}

/// One OU's identity as recorded in the segment (directory entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OuEntry {
    pub ou: u16,
    pub subsystem: u8,
    pub name: String,
}

/// Encode a block payload for `samples` (all of one OU).
pub fn encode_block(ou: u16, subsystem: u8, name: &str, samples: &[Sample]) -> Vec<u8> {
    let n = samples.len();
    let mut out = Vec::with_capacity(64 + n * 16);
    put_varint(&mut out, ou as u64);
    out.push(subsystem);
    put_varint(&mut out, name.len() as u64);
    out.extend_from_slice(name.as_bytes());
    put_varint(&mut out, n as u64);
    let min_start = samples.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let max_start = samples.iter().map(|s| s.start_ns).max().unwrap_or(0);
    put_varint(&mut out, min_start);
    put_varint(&mut out, max_start);

    let col = |f: &dyn Fn(&Sample) -> u64| samples.iter().map(f).collect::<Vec<u64>>();
    put_column(&mut out, &col(&|s| s.tid as u64));
    put_column(&mut out, &col(&|s| s.template as u64));
    put_column(&mut out, &col(&|s| s.start_ns));
    put_column(&mut out, &col(&|s| s.elapsed_ns));
    put_column(&mut out, &col(&|s| s.metrics.len() as u64));
    let flat: Vec<u64> = samples
        .iter()
        .flat_map(|s| s.metrics.iter().copied())
        .collect();
    put_column(&mut out, &flat);
    put_column(&mut out, &col(&|s| s.features.len() as u64));
    let flat: Vec<u64> = samples
        .iter()
        .flat_map(|s| s.features.iter().map(|f| f.to_bits()))
        .collect();
    put_column(&mut out, &flat);
    put_column(&mut out, &col(&|s| s.user_metrics.len() as u64));
    let flat: Vec<u64> = samples
        .iter()
        .flat_map(|s| s.user_metrics.iter().copied())
        .collect();
    put_column(&mut out, &flat);
    out
}

/// Decode a block payload back into samples. `None` ⇒ corrupt.
pub fn decode_block(payload: &[u8]) -> Option<(OuEntry, Vec<Sample>)> {
    let mut pos = 0usize;
    let ou = get_varint(payload, &mut pos)? as u16;
    let subsystem = *payload.get(pos)?;
    pos += 1;
    let name_len = get_varint(payload, &mut pos)? as usize;
    let name_bytes = payload.get(pos..pos + name_len)?;
    let name = std::str::from_utf8(name_bytes).ok()?.to_string();
    pos += name_len;
    let n = get_varint(payload, &mut pos)? as usize;
    let _min_start = get_varint(payload, &mut pos)?;
    let _max_start = get_varint(payload, &mut pos)?;

    let tid = get_column(payload, &mut pos)?;
    let template = get_column(payload, &mut pos)?;
    let start_ns = get_column(payload, &mut pos)?;
    let elapsed_ns = get_column(payload, &mut pos)?;
    let metrics_len = get_column(payload, &mut pos)?;
    let metrics_flat = get_column(payload, &mut pos)?;
    let features_len = get_column(payload, &mut pos)?;
    let features_flat = get_column(payload, &mut pos)?;
    let user_len = get_column(payload, &mut pos)?;
    let user_flat = get_column(payload, &mut pos)?;
    if pos != payload.len() {
        return None;
    }
    for c in [
        &tid,
        &template,
        &start_ns,
        &elapsed_ns,
        &metrics_len,
        &features_len,
        &user_len,
    ] {
        if c.len() != n {
            return None;
        }
    }
    if metrics_len.iter().sum::<u64>() != metrics_flat.len() as u64
        || features_len.iter().sum::<u64>() != features_flat.len() as u64
        || user_len.iter().sum::<u64>() != user_flat.len() as u64
    {
        return None;
    }

    let mut samples = Vec::with_capacity(n);
    let (mut mi, mut fi, mut ui) = (0usize, 0usize, 0usize);
    for i in 0..n {
        let ml = metrics_len[i] as usize;
        let fl = features_len[i] as usize;
        let ul = user_len[i] as usize;
        samples.push(Sample {
            ou,
            ou_name: name.clone(),
            subsystem,
            tid: tid[i] as u32,
            template: template[i] as u32,
            start_ns: start_ns[i],
            elapsed_ns: elapsed_ns[i],
            metrics: metrics_flat[mi..mi + ml].to_vec(),
            features: features_flat[fi..fi + fl]
                .iter()
                .map(|b| f64::from_bits(*b))
                .collect(),
            user_metrics: user_flat[ui..ui + ul].to_vec(),
        });
        mi += ml;
        fi += fl;
        ui += ul;
    }
    Some((
        OuEntry {
            ou,
            subsystem,
            name,
        },
        samples,
    ))
}

/// Encode the footer manifest payload.
pub fn encode_footer(ous: &[OuEntry], blocks: &[BlockMeta]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, ous.len() as u64);
    for o in ous {
        put_varint(&mut out, o.ou as u64);
        out.push(o.subsystem);
        put_varint(&mut out, o.name.len() as u64);
        out.extend_from_slice(o.name.as_bytes());
    }
    put_varint(&mut out, blocks.len() as u64);
    for b in blocks {
        put_varint(&mut out, b.offset);
        put_varint(&mut out, b.payload_len as u64);
        put_varint(&mut out, b.ou as u64);
        put_varint(&mut out, b.count);
        put_varint(&mut out, b.min_start_ns);
        put_varint(&mut out, b.max_start_ns);
    }
    out
}

/// Decode a footer manifest payload. `None` ⇒ corrupt.
pub fn decode_footer(payload: &[u8]) -> Option<(Vec<OuEntry>, Vec<BlockMeta>)> {
    let mut pos = 0usize;
    let n_ous = get_varint(payload, &mut pos)? as usize;
    if n_ous > payload.len() {
        return None;
    }
    let mut ous = Vec::with_capacity(n_ous);
    for _ in 0..n_ous {
        let ou = get_varint(payload, &mut pos)? as u16;
        let subsystem = *payload.get(pos)?;
        pos += 1;
        let len = get_varint(payload, &mut pos)? as usize;
        let name = std::str::from_utf8(payload.get(pos..pos + len)?)
            .ok()?
            .to_string();
        pos += len;
        ous.push(OuEntry {
            ou,
            subsystem,
            name,
        });
    }
    let n_blocks = get_varint(payload, &mut pos)? as usize;
    if n_blocks > payload.len() {
        return None;
    }
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        blocks.push(BlockMeta {
            offset: get_varint(payload, &mut pos)?,
            payload_len: get_varint(payload, &mut pos)? as u32,
            ou: get_varint(payload, &mut pos)? as u16,
            count: get_varint(payload, &mut pos)?,
            min_start_ns: get_varint(payload, &mut pos)?,
            max_start_ns: get_varint(payload, &mut pos)?,
        });
    }
    if pos != payload.len() {
        return None;
    }
    Some((ous, blocks))
}

/// Append one frame to `w`; returns bytes written.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<u64> {
    w.write_all(&[kind])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok((FRAME_OVERHEAD + payload.len()) as u64)
}

/// Read the frame at `offset`. Returns `(kind, payload, next_offset)`,
/// or `None` if the frame is truncated, oversized, or fails its CRC —
/// i.e. the valid portion of the file ends before `offset + frame`.
pub fn read_frame(
    f: &mut std::fs::File,
    offset: u64,
    file_len: u64,
) -> Result<Option<(u8, Vec<u8>, u64)>, ArchiveError> {
    if offset + (FRAME_OVERHEAD as u64) > file_len {
        return Ok(None);
    }
    f.seek(SeekFrom::Start(offset))?;
    let mut head = [0u8; 5];
    f.read_exact(&mut head)?;
    let kind = head[0];
    let len = u32::from_le_bytes(head[1..5].try_into().unwrap());
    if kind != FRAME_BLOCK && kind != FRAME_FOOTER {
        return Ok(None);
    }
    if len > MAX_FRAME_LEN || offset + FRAME_OVERHEAD as u64 + len as u64 > file_len {
        return Ok(None);
    }
    let mut payload = vec![0u8; len as usize];
    f.read_exact(&mut payload)?;
    let mut crc_bytes = [0u8; 4];
    f.read_exact(&mut crc_bytes)?;
    if crc32(&payload) != u32::from_le_bytes(crc_bytes) {
        return Ok(None);
    }
    Ok(Some((
        kind,
        payload,
        offset + FRAME_OVERHEAD as u64 + len as u64,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> Sample {
        Sample {
            ou: 7,
            ou_name: "seq_scan".into(),
            subsystem: 0,
            tid: 3,
            template: (i % 5) as u32,
            start_ns: 1_000_000 + i * 2_000,
            elapsed_ns: 500 + i,
            metrics: vec![i, i * 2, 0],
            features: vec![i as f64, -1.5, f64::NAN],
            user_metrics: vec![4096],
        }
    }

    #[test]
    fn block_round_trip_is_bit_identical() {
        let samples: Vec<Sample> = (0..200).map(sample).collect();
        let payload = encode_block(7, 0, "seq_scan", &samples);
        let (ou, back) = decode_block(&payload).unwrap();
        assert_eq!(ou.name, "seq_scan");
        assert_eq!(back.len(), samples.len());
        for (a, b) in samples.iter().zip(&back) {
            assert!(a.bits_eq(b), "mismatch: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn block_decode_rejects_any_truncation() {
        let samples: Vec<Sample> = (0..20).map(sample).collect();
        let payload = encode_block(7, 0, "seq_scan", &samples);
        for cut in 0..payload.len() {
            assert!(
                decode_block(&payload[..cut]).is_none(),
                "truncation at {cut} not detected"
            );
        }
    }

    #[test]
    fn footer_round_trip() {
        let ous = vec![OuEntry {
            ou: 1,
            subsystem: 2,
            name: "wal_write".into(),
        }];
        let blocks = vec![
            BlockMeta {
                offset: 5,
                payload_len: 100,
                ou: 1,
                count: 10,
                min_start_ns: 7,
                max_start_ns: 9_000,
            },
            BlockMeta {
                offset: 114,
                payload_len: 40,
                ou: 1,
                count: 3,
                min_start_ns: 10_000,
                max_start_ns: 10_100,
            },
        ];
        let payload = encode_footer(&ous, &blocks);
        let (o2, b2) = decode_footer(&payload).unwrap();
        assert_eq!(o2, ous);
        assert_eq!(b2, blocks);
    }

    #[test]
    fn frames_survive_file_round_trip_and_detect_corruption() {
        let dir = std::env::temp_dir().join(format!("tsar_frame_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.seg");
        let payload = b"hello columnar world".to_vec();
        {
            let mut f = std::fs::File::create(&path).unwrap();
            write_frame(&mut f, FRAME_BLOCK, &payload).unwrap();
        }
        let len = std::fs::metadata(&path).unwrap().len();
        let mut f = std::fs::File::open(&path).unwrap();
        let (kind, p, next) = read_frame(&mut f, 0, len).unwrap().unwrap();
        assert_eq!((kind, p, next), (FRAME_BLOCK, payload.clone(), len));
        // Flip one payload byte on disk: frame must fail its CRC.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[7] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        let mut f = std::fs::File::open(&path).unwrap();
        assert!(read_frame(&mut f, 0, len).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
