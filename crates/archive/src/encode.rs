//! Column codecs: varint, zigzag deltas, and frame-of-reference
//! bit-packing.
//!
//! Every per-sample field in a block is stored as a column of `u64`
//! values (floats go through `f64::to_bits`, so reconstruction is
//! bit-identical — including NaNs). Two physical encodings compete per
//! column and the smaller wins:
//!
//! * **tag 0 — delta + zigzag + varint.** Values are wrapping-delta'd
//!   against the previous value, zigzag-mapped to `u64`, and LEB128
//!   varint coded. Near-monotonic columns (`start_ns`) and low-variance
//!   columns collapse to ~1 byte/value.
//! * **tag 1 — frame-of-reference bit-packing.** The column minimum is
//!   stored once, then `v - min` is packed at the minimum bit width that
//!   fits the column's range. Constant columns cost 0 bits/value;
//!   small-range columns (`tid`, `template`, vector lengths) pack to a
//!   few bits.
//!
//! Both are self-describing (`tag`, value count, byte length) so a block
//! decoder never reads past its column.

/// Append `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Read a LEB128 varint at `*pos`, advancing it. `None` on truncation or
/// a value that would overflow 64 bits.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return None; // would overflow u64
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Zigzag-map a signed delta into an unsigned varint-friendly value.
fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Bits needed to represent `v` (0 for 0).
fn bit_width(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Encode the payload for tag 0 (delta + zigzag + varint).
fn encode_delta(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    let mut prev = 0u64;
    for &v in values {
        put_varint(&mut out, zigzag(v.wrapping_sub(prev) as i64));
        prev = v;
    }
    out
}

fn decode_delta(buf: &[u8], n: usize) -> Option<Vec<u64>> {
    let mut pos = 0usize;
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        let d = unzigzag(get_varint(buf, &mut pos)?);
        prev = prev.wrapping_add(d as u64);
        out.push(prev);
    }
    if pos != buf.len() {
        return None; // trailing garbage: corrupt column
    }
    Some(out)
}

/// Encode the payload for tag 1 (frame-of-reference bit-packing):
/// `varint min`, `u8 width`, packed little-endian bits of `v - min`.
fn encode_packed(values: &[u64]) -> Vec<u8> {
    let min = values.iter().copied().min().unwrap_or(0);
    let width = values
        .iter()
        .map(|&v| bit_width(v - min))
        .max()
        .unwrap_or(0);
    let mut out = Vec::new();
    put_varint(&mut out, min);
    out.push(width as u8);
    let mut acc = 0u128;
    let mut acc_bits = 0u32;
    for &v in values {
        acc |= ((v - min) as u128) << acc_bits;
        acc_bits += width;
        while acc_bits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.push((acc & 0xFF) as u8);
    }
    out
}

fn decode_packed(buf: &[u8], n: usize) -> Option<Vec<u64>> {
    let mut pos = 0usize;
    let min = get_varint(buf, &mut pos)?;
    let width = *buf.get(pos)? as u32;
    pos += 1;
    if width > 64 {
        return None;
    }
    let needed = (n as u64 * width as u64).div_ceil(8) as usize;
    if buf.len() != pos + needed {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    let mut acc = 0u128;
    let mut acc_bits = 0u32;
    for _ in 0..n {
        while acc_bits < width {
            acc |= (buf[pos] as u128) << acc_bits;
            pos += 1;
            acc_bits += 8;
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let raw = (acc & mask as u128) as u64;
        acc >>= width;
        acc_bits -= width;
        out.push(min.checked_add(raw)?);
    }
    Some(out)
}

/// Append one self-describing column: `u8 tag`, `varint n`,
/// `varint byte_len`, payload. Picks the cheaper of the two codecs.
pub fn put_column(out: &mut Vec<u8>, values: &[u64]) {
    let delta = encode_delta(values);
    let packed = encode_packed(values);
    let (tag, payload) = if packed.len() < delta.len() {
        (1u8, packed)
    } else {
        (0u8, delta)
    };
    out.push(tag);
    put_varint(out, values.len() as u64);
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(&payload);
}

/// Decode one column at `*pos`, advancing past it. `None` on any
/// structural inconsistency (the caller treats the block as corrupt).
pub fn get_column(buf: &[u8], pos: &mut usize) -> Option<Vec<u64>> {
    let tag = *buf.get(*pos)?;
    *pos += 1;
    let n = get_varint(buf, pos)? as usize;
    let len = get_varint(buf, pos)? as usize;
    let payload = buf.get(*pos..*pos + len)?;
    *pos += len;
    // Bound the decode allocation: a corrupt count must not OOM us. A
    // constant (width-0) column is legitimately tiny, so the cap is a
    // hard value count, far above any real block.
    const MAX_COLUMN_VALUES: usize = 1 << 24;
    if n > MAX_COLUMN_VALUES {
        return None;
    }
    match tag {
        0 => decode_delta(payload, n),
        1 => decode_packed(payload, n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u64]) {
        let mut buf = Vec::new();
        put_column(&mut buf, values);
        let mut pos = 0;
        let back = get_column(&buf, &mut pos).expect("decode failed");
        assert_eq!(back, values);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_round_trip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(get_varint(&[0x80], &mut pos), None);
        let mut pos = 0;
        // 10 continuation bytes with a high final byte overflows u64.
        assert_eq!(get_varint(&[0xFF; 10], &mut pos), None);
    }

    #[test]
    fn columns_round_trip() {
        round_trip(&[]);
        round_trip(&[0]);
        round_trip(&[42; 1000]); // constant → 0 bits/value packed
        round_trip(&[u64::MAX, 0, u64::MAX, 1]); // full-range deltas
        round_trip(&(0..500u64).map(|i| 1_000_000 + i * 8).collect::<Vec<_>>());
        round_trip(&[
            f64::to_bits(1.5),
            f64::to_bits(-0.0),
            f64::to_bits(f64::NAN),
        ]);
    }

    #[test]
    fn monotonic_column_is_compact() {
        let values: Vec<u64> = (0..1000u64).map(|i| 5_000_000_000 + i * 2_100).collect();
        let mut buf = Vec::new();
        put_column(&mut buf, &values);
        // Deltas are constant (~2 bytes each max); raw would be 8000 bytes.
        assert!(
            buf.len() < 2_200,
            "monotonic column took {} bytes",
            buf.len()
        );
    }

    #[test]
    fn small_range_column_bit_packs() {
        let values: Vec<u64> = (0..4096u64).map(|i| 7 + (i % 4)).collect();
        let mut buf = Vec::new();
        put_column(&mut buf, &values);
        // 2 bits/value = 1024 bytes + tiny header.
        assert!(buf.len() < 1_100, "2-bit column took {} bytes", buf.len());
        let mut pos = 0;
        assert_eq!(get_column(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn corrupt_columns_fail_closed() {
        let mut buf = Vec::new();
        put_column(&mut buf, &[1, 2, 3, 4, 5]);
        // Bad tag.
        let mut bad = buf.clone();
        bad[0] = 9;
        assert!(get_column(&bad, &mut 0).is_none());
        // Truncated payload.
        assert!(get_column(&buf[..buf.len() - 1], &mut 0).is_none());
    }
}
