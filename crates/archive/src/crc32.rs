//! CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.
//!
//! Every block and footer frame in a segment file carries a CRC over its
//! payload so torn writes and bit rot are detected at open/scan time
//! rather than silently corrupting training data. Hand-rolled because the
//! workspace builds with no external dependencies.

/// Lazily-built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let good = crc32(&data);
        for i in 0..data.len() {
            let mut bad = data.clone();
            bad[i] ^= 0x40;
            assert_ne!(crc32(&bad), good, "flip at byte {i} went undetected");
        }
    }
}
