//! Compaction: merge runs of small sealed segments and enforce the
//! per-OU retention budget.
//!
//! Only a *contiguous run of sealed segments starting at the oldest* is
//! ever merged, so per-OU append order is preserved: the merged segment
//! replaces the run in place (it takes the run's first sequence number)
//! and every surviving sample keeps its position relative to the
//! untouched newer segments. Retention drops the **oldest** samples of
//! an over-budget OU — and since the run being compacted is the oldest
//! data in the archive, retirement never has to touch newer segments.
//!
//! Crash safety: the merged segment is written to a `.tmp` file and
//! renamed over the run's first segment before the other inputs are
//! deleted. A crash mid-compaction leaves either the inputs intact plus
//! an ignored `.tmp`, or the merged file plus stale inputs whose data is
//! duplicated — `open` keeps whichever files parse, and the worst case
//! is re-doing the compaction.

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::Write;

use crate::segment::{
    decode_block, encode_block, encode_footer, read_frame, write_frame, BlockMeta, OuEntry,
    FRAME_BLOCK, FRAME_FOOTER, HEADER_LEN, MAGIC, VERSION,
};
use crate::store::SegmentMeta;
use crate::{Archive, ArchiveError};

impl Archive {
    /// Compact if the policy says so: at least
    /// [`crate::ArchiveOptions::compact_fanin`] contiguous small sealed
    /// segments at the head of the archive. Returns whether a compaction
    /// ran.
    ///
    /// The action engine overrides the policy in both directions: a
    /// [`Archive::set_compaction_hold`] makes this a no-op (compaction
    /// deprioritized while collection overhead is over budget), and a
    /// [`Archive::request_compaction`] compacts the whole sealed head
    /// run on the next call even below the fan-in threshold.
    pub fn maybe_compact(&mut self) -> Result<bool, ArchiveError> {
        if self.compaction_hold {
            return Ok(false);
        }
        if self.compaction_requested {
            self.compaction_requested = false;
            return self.compact_now();
        }
        let run = self
            .segments
            .iter()
            .take_while(|s| s.sealed && s.bytes <= self.opts.small_segment_bytes)
            .count();
        if run < self.opts.compact_fanin {
            return Ok(false);
        }
        self.compact_run(run)
    }

    /// Hold (`true`) or release (`false`) compaction. Held archives
    /// never compact from `maybe_compact`; explicit `compact_now` calls
    /// still work.
    pub fn set_compaction_hold(&mut self, hold: bool) {
        self.compaction_hold = hold;
    }

    /// Whether compaction is currently held.
    pub fn compaction_held(&self) -> bool {
        self.compaction_hold
    }

    /// Ask for a compaction at the next `maybe_compact`, bypassing the
    /// fan-in threshold (but not a hold).
    pub fn request_compaction(&mut self) {
        self.compaction_requested = true;
    }

    /// Force-compact every sealed segment at the head of the archive
    /// (test hook and retention enforcement point).
    pub fn compact_now(&mut self) -> Result<bool, ArchiveError> {
        let run = self.segments.iter().take_while(|s| s.sealed).count();
        if run == 0 {
            return Ok(false);
        }
        self.compact_run(run)
    }

    /// Merge `segments[..run]` into one segment, applying retention.
    fn compact_run(&mut self, run: usize) -> Result<bool, ArchiveError> {
        // Gather per-OU sample streams from the run, oldest first.
        let mut per_ou: BTreeMap<u16, (OuEntry, Vec<crate::Sample>)> = BTreeMap::new();
        for seg in &self.segments[..run] {
            let mut f = std::fs::File::open(&seg.path)?;
            for b in &seg.blocks {
                let Some((_, payload, _)) = read_frame(&mut f, b.offset, seg.bytes)? else {
                    return Err(ArchiveError::Corrupt(format!(
                        "block at {} in {} vanished under compaction",
                        b.offset,
                        seg.path.display()
                    )));
                };
                let Some((ou, samples)) = decode_block(&payload) else {
                    return Err(ArchiveError::Corrupt(format!(
                        "undecodable block at {} in {}",
                        b.offset,
                        seg.path.display()
                    )));
                };
                let e = per_ou.entry(ou.ou).or_insert_with(|| (ou, Vec::new()));
                e.1.extend(samples);
            }
        }

        // Retention: budget is per OU across the *whole* archive; newer
        // segments and memtables count first, the oldest (gathered) data
        // absorbs the retirement.
        if self.opts.retention_per_ou != usize::MAX {
            let mut newer: BTreeMap<u16, usize> = BTreeMap::new();
            for seg in &self.segments[run..] {
                for b in &seg.blocks {
                    *newer.entry(b.ou).or_default() += b.count as usize;
                }
            }
            for (ou, n) in self.memtable_sizes() {
                *newer.entry(ou).or_default() += n;
            }
            let mut retired = 0u64;
            for (ou, (entry, samples)) in &mut per_ou {
                let elsewhere = newer.get(ou).copied().unwrap_or(0);
                let keep = self.opts.retention_per_ou.saturating_sub(elsewhere);
                if samples.len() > keep {
                    let drop_n = samples.len() - keep;
                    samples.drain(..drop_n);
                    retired += drop_n as u64;
                    self.telemetry.counter_add(
                        "archive_ou_samples_retired_total",
                        &[("ou", &entry.name)],
                        drop_n as u64,
                    );
                }
            }
            if retired > 0 {
                self.telemetry
                    .counter_add("archive_samples_retired_total", &[], retired);
            }
        }
        per_ou.retain(|_, (_, v)| !v.is_empty());

        let first = &self.segments[0];
        let (first_seq, first_path) = (first.seq, first.path.clone());
        let tmp_path = first_path.with_extension("tmp");
        let removed: Vec<std::path::PathBuf> = self.segments[..run]
            .iter()
            .map(|s| s.path.clone())
            .collect();

        if per_ou.is_empty() {
            // Everything retired: the run simply disappears.
            for p in &removed {
                std::fs::remove_file(p)?;
            }
            self.finish_compaction(run, None)?;
            return Ok(true);
        }

        // Write the merged segment: per-OU blocks in OU order, chunked so
        // scans stay bounded-memory.
        let chunk = self.opts.memtable_flush_samples.max(64) * 4;
        let mut f = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&tmp_path)?;
        f.write_all(MAGIC)?;
        f.write_all(&[VERSION])?;
        let mut offset = HEADER_LEN;
        let mut blocks: Vec<BlockMeta> = Vec::new();
        let mut ous: Vec<OuEntry> = Vec::new();
        for (ou, samples) in per_ou.values() {
            for part in samples.chunks(chunk) {
                let payload = encode_block(ou.ou, ou.subsystem, &ou.name, part);
                let frame_len = write_frame(&mut f, FRAME_BLOCK, &payload)?;
                blocks.push(BlockMeta {
                    offset,
                    payload_len: payload.len() as u32,
                    ou: ou.ou,
                    count: part.len() as u64,
                    min_start_ns: part.iter().map(|s| s.start_ns).min().unwrap_or(0),
                    max_start_ns: part.iter().map(|s| s.start_ns).max().unwrap_or(0),
                });
                offset += frame_len;
            }
            ous.push(ou.clone());
        }
        let footer = encode_footer(&ous, &blocks);
        offset += write_frame(&mut f, FRAME_FOOTER, &footer)?;
        f.sync_all().ok();
        drop(f);
        // Swap in: rename over the first input, then delete the rest.
        std::fs::rename(&tmp_path, &first_path)?;
        for p in removed.iter().skip(1) {
            std::fs::remove_file(p)?;
        }
        self.telemetry
            .counter_add("archive_bytes_written_total", &[], offset);
        let merged = SegmentMeta {
            seq: first_seq,
            path: first_path,
            bytes: offset,
            sealed: true,
            ous,
            blocks,
        };
        self.finish_compaction(run, Some(merged))?;
        Ok(true)
    }

    /// Replace `segments[..run]` with the merged result (if any) and
    /// update telemetry.
    fn finish_compaction(
        &mut self,
        run: usize,
        merged: Option<SegmentMeta>,
    ) -> Result<(), ArchiveError> {
        let mut rest = self.segments.split_off(run);
        self.telemetry.counter_add(
            "archive_segments_compacted_total",
            &[],
            self.segments.len() as u64,
        );
        self.segments.clear();
        if let Some(m) = merged {
            self.segments.push(m);
        }
        self.segments.append(&mut rest);
        self.telemetry
            .gauge_set("archive_segments", &[], self.segments.len() as f64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::test_sample;
    use crate::{ArchiveOptions, Sample};
    use tscout_telemetry::Telemetry;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("tscout_compact_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn small_opts() -> ArchiveOptions {
        ArchiveOptions {
            memtable_flush_samples: 32,
            segment_max_bytes: 1_024,
            compact_fanin: 3,
            small_segment_bytes: 4_096,
            ..Default::default()
        }
    }

    #[test]
    fn compaction_preserves_per_ou_order_bit_identically() {
        let dir = tmp_dir("order");
        let t = Telemetry::new();
        let mut a = Archive::open(&dir, small_opts(), t.clone()).unwrap();
        let originals: Vec<Sample> = (0..1_500)
            .map(|i| test_sample((i % 2) as u16, ["scan", "probe"][(i % 2) as usize], i))
            .collect();
        for s in &originals {
            a.append(s.clone()).unwrap();
        }
        a.seal().unwrap();
        let before = a.stats();
        assert!(before.segments >= 3, "want several segments: {before:?}");
        assert!(a.maybe_compact().unwrap());
        let after = a.stats();
        assert!(after.segments < before.segments);
        assert_eq!(after.samples_stored, 1_500);
        assert!(t.counter_value("archive_segments_compacted_total", &[]) > 0);
        for name in ["scan", "probe"] {
            let got: Vec<Sample> = a.scan_ou(name).collect();
            let want: Vec<&Sample> = originals.iter().filter(|s| s.ou_name == name).collect();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!(g.bits_eq(w), "order or content changed by compaction");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let mut a = Archive::open(&dir, small_opts(), Telemetry::new()).unwrap();
            for i in 0..1_000 {
                a.append(test_sample(1, "scan", i)).unwrap();
            }
            a.seal().unwrap();
            a.compact_now().unwrap();
        }
        let a = Archive::open(&dir, small_opts(), Telemetry::new()).unwrap();
        assert_eq!(a.scan_ou("scan").count(), 1_000);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_drops_oldest_beyond_budget() {
        let dir = tmp_dir("retention");
        let opts = ArchiveOptions {
            retention_per_ou: 200,
            ..small_opts()
        };
        let t = Telemetry::new();
        let mut a = Archive::open(&dir, opts, t.clone()).unwrap();
        let originals: Vec<Sample> = (0..1_000).map(|i| test_sample(1, "scan", i)).collect();
        for s in &originals {
            a.append(s.clone()).unwrap();
        }
        a.seal().unwrap();
        assert!(a.compact_now().unwrap());
        let got: Vec<Sample> = a.scan_ou("scan").collect();
        assert_eq!(got.len(), 200, "retention keeps exactly the budget");
        // The survivors are the *newest* 200, still in order.
        for (g, w) in got.iter().zip(&originals[800..]) {
            assert!(g.bits_eq(w));
        }
        assert_eq!(t.counter_value("archive_samples_retired_total", &[]), 800);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maybe_compact_respects_fanin_threshold() {
        let dir = tmp_dir("fanin");
        let mut a = Archive::open(&dir, small_opts(), Telemetry::new()).unwrap();
        for i in 0..40 {
            a.append(test_sample(1, "scan", i)).unwrap();
        }
        a.seal().unwrap(); // one sealed segment < fanin
        assert!(!a.maybe_compact().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hold_and_request_override_the_fanin_policy() {
        let dir = tmp_dir("hooks");
        let mut a = Archive::open(&dir, small_opts(), Telemetry::new()).unwrap();
        for i in 0..1_000 {
            a.append(test_sample(1, "scan", i)).unwrap();
        }
        a.seal().unwrap();
        assert!(a.stats().segments >= 3);
        // Held: the policy would fire, but nothing happens.
        a.set_compaction_hold(true);
        assert!(a.compaction_held());
        assert!(!a.maybe_compact().unwrap());
        // A request does not pierce the hold either.
        a.request_compaction();
        assert!(!a.maybe_compact().unwrap());
        // Released: the pending request compacts the whole sealed run
        // even though it survives below the fan-in threshold afterward.
        a.set_compaction_hold(false);
        assert!(a.maybe_compact().unwrap());
        assert_eq!(a.stats().segments, 1);
        assert_eq!(a.scan_ou("scan").count(), 1_000);
        // Request consumed: the next call is policy-driven again.
        assert!(!a.maybe_compact().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
