//! The archive store: memtables, segment lifecycle, recovery, and scans.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::time::Instant;

use tscout_telemetry::Telemetry;

use crate::segment::{
    decode_block, decode_footer, encode_block, encode_footer, read_frame, write_frame, BlockMeta,
    OuEntry, FRAME_BLOCK, FRAME_FOOTER, HEADER_LEN, MAGIC, VERSION,
};
use crate::{ArchiveError, ArchiveOptions, Sample};

/// One segment file known to the archive, oldest-first by `seq`.
#[derive(Debug)]
pub(crate) struct SegmentMeta {
    pub seq: u64,
    pub path: PathBuf,
    /// Valid bytes (file length after any recovery truncation).
    pub bytes: u64,
    pub sealed: bool,
    pub ous: Vec<OuEntry>,
    pub blocks: Vec<BlockMeta>,
}

impl SegmentMeta {
    pub fn samples(&self) -> u64 {
        self.blocks.iter().map(|b| b.count).sum()
    }
}

/// Counters summarizing the archive's current shape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArchiveStats {
    pub segments: usize,
    pub sealed_segments: usize,
    pub blocks: usize,
    /// Samples durable in segment files.
    pub samples_stored: u64,
    /// Samples still buffered in memtables.
    pub samples_buffered: usize,
    /// Total bytes across segment files.
    pub bytes: u64,
}

/// The append-only, segmented, columnar per-OU sample store.
#[derive(Debug)]
pub struct Archive {
    pub(crate) dir: PathBuf,
    pub(crate) opts: ArchiveOptions,
    pub telemetry: Telemetry,
    /// Per-OU write buffers, keyed by OU id.
    memtables: BTreeMap<u16, (OuEntry, Vec<Sample>)>,
    buffered: usize,
    pub(crate) segments: Vec<SegmentMeta>,
    /// Open handle for the unsealed last segment, if any.
    active: Option<File>,
    next_seq: u64,
    /// Action-engine hook: while held, `maybe_compact` is a no-op
    /// (compaction deprioritized under overhead pressure).
    pub(crate) compaction_hold: bool,
    /// Action-engine hook: the next `maybe_compact` compacts even if the
    /// fan-in policy would not fire yet.
    pub(crate) compaction_requested: bool,
}

fn seg_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:06}.tsa"))
}

fn parse_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("seg-")?.strip_suffix(".tsa")?;
    rest.parse().ok()
}

impl Archive {
    /// Open (or create) an archive directory, recovering from torn or
    /// truncated segment tails. After `open` every pre-existing segment
    /// is sealed; new appends start a fresh segment.
    pub fn open(
        dir: impl Into<PathBuf>,
        opts: ArchiveOptions,
        telemetry: Telemetry,
    ) -> Result<Archive, ArchiveError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut paths: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                // Leftover from a crashed compaction: inputs are intact.
                std::fs::remove_file(&path).ok();
                continue;
            }
            if let Some(seq) = parse_seq(&path) {
                paths.push((seq, path));
            }
        }
        paths.sort();
        let mut archive = Archive {
            dir,
            opts,
            telemetry,
            memtables: BTreeMap::new(),
            buffered: 0,
            segments: Vec::new(),
            active: None,
            next_seq: paths.last().map(|(s, _)| s + 1).unwrap_or(0),
            compaction_hold: false,
            compaction_requested: false,
        };
        for (seq, path) in paths {
            if let Some(meta) = archive.recover_segment(seq, &path)? {
                archive.segments.push(meta);
            }
        }
        archive
            .telemetry
            .gauge_set("archive_segments", &[], archive.segments.len() as f64);
        Ok(archive)
    }

    /// Scan one segment file frame-by-frame, truncating at the first
    /// invalid frame. Returns `None` (file deleted) if nothing valid
    /// remains. Any recovered unsealed segment is resealed so that all
    /// on-disk segments are immutable after open.
    fn recover_segment(
        &mut self,
        seq: u64,
        path: &Path,
    ) -> Result<Option<SegmentMeta>, ArchiveError> {
        let mut f = OpenOptions::new().read(true).write(true).open(path)?;
        let file_len = f.metadata()?.len();
        // Header check: a file too short or with a wrong magic holds no
        // recoverable data.
        let mut valid_to = 0u64;
        let mut header_ok = false;
        if file_len >= HEADER_LEN {
            use std::io::Read;
            let mut head = [0u8; HEADER_LEN as usize];
            f.seek(SeekFrom::Start(0))?;
            f.read_exact(&mut head)?;
            header_ok = &head[..4] == MAGIC && head[4] == VERSION;
        }
        let mut ous: Vec<OuEntry> = Vec::new();
        let mut blocks: Vec<BlockMeta> = Vec::new();
        let mut footer_at_end = false;
        if header_ok {
            valid_to = HEADER_LEN;
            let mut offset = HEADER_LEN;
            while let Some((kind, payload, next)) = read_frame(&mut f, offset, file_len)? {
                match kind {
                    FRAME_BLOCK => {
                        let Some((ou, samples)) = decode_block(&payload) else {
                            break; // CRC-valid but undecodable: stop here
                        };
                        blocks.push(BlockMeta {
                            offset,
                            payload_len: payload.len() as u32,
                            ou: ou.ou,
                            count: samples.len() as u64,
                            min_start_ns: samples.iter().map(|s| s.start_ns).min().unwrap_or(0),
                            max_start_ns: samples.iter().map(|s| s.start_ns).max().unwrap_or(0),
                        });
                        if !ous.iter().any(|o| o.ou == ou.ou) {
                            ous.push(ou);
                        }
                        footer_at_end = false;
                    }
                    _ => {
                        if decode_footer(&payload).is_none() {
                            break;
                        }
                        // The manifest is advisory; the frame scan above is
                        // authoritative. A valid footer as the final frame
                        // marks the segment sealed.
                        footer_at_end = true;
                    }
                }
                valid_to = next;
                offset = next;
            }
        }
        let torn = valid_to < file_len;
        if torn {
            f.set_len(valid_to)?;
            self.telemetry
                .counter_inc("archive_recovered_truncations_total", &[]);
        }
        if blocks.is_empty() {
            drop(f);
            std::fs::remove_file(path)?;
            return Ok(None);
        }
        let mut bytes = valid_to;
        if !footer_at_end {
            // Crash before seal (or the footer itself was torn): reseal in
            // place so the segment is immutable going forward.
            f.seek(SeekFrom::Start(valid_to))?;
            let footer = encode_footer(&ous, &blocks);
            bytes += write_frame(&mut f, FRAME_FOOTER, &footer)?;
            self.telemetry
                .counter_inc("archive_segments_sealed_total", &[]);
        }
        Ok(Some(SegmentMeta {
            seq,
            path: path.to_path_buf(),
            bytes,
            sealed: true,
            ous,
            blocks,
        }))
    }

    /// Append one sample. Routes to the per-OU memtable; flushes when the
    /// memtable or the global buffer bound fills. This is the only
    /// write-side entry point, so Processor memory is bounded by
    /// [`ArchiveOptions::max_buffered_samples`] decoded samples.
    pub fn append(&mut self, sample: Sample) -> Result<(), ArchiveError> {
        let ou = sample.ou;
        let mt = self.memtables.entry(ou).or_insert_with(|| {
            (
                OuEntry {
                    ou,
                    subsystem: sample.subsystem,
                    name: sample.ou_name.clone(),
                },
                Vec::new(),
            )
        });
        let ou_name = mt.0.name.clone();
        mt.1.push(sample);
        let mt_len = mt.1.len();
        self.buffered += 1;
        self.telemetry
            .counter_inc("archive_samples_appended_total", &[]);
        self.telemetry
            .counter_inc("archive_ou_samples_appended_total", &[("ou", &ou_name)]);
        self.telemetry
            .gauge_add("archive_buffered_samples", &[], 1.0);
        let full_ou = if mt_len >= self.opts.memtable_flush_samples {
            Some(ou)
        } else if self.buffered > self.opts.max_buffered_samples {
            // Global bound: evict the largest memtable.
            self.memtables
                .iter()
                .max_by_key(|(_, (_, v))| v.len())
                .map(|(ou, _)| *ou)
        } else {
            None
        };
        if let Some(ou) = full_ou {
            self.flush_ou(ou)?;
        }
        Ok(())
    }

    /// Flush one OU's memtable into the active segment as a block.
    fn flush_ou(&mut self, ou: u16) -> Result<(), ArchiveError> {
        let Some((entry, samples)) = self.memtables.remove(&ou) else {
            return Ok(());
        };
        if samples.is_empty() {
            return Ok(());
        }
        let entry_name = entry.name.clone();
        let t0 = Instant::now();
        self.ensure_active()?;
        let payload = encode_block(entry.ou, entry.subsystem, &entry.name, &samples);
        let meta = self.segments.last_mut().expect("active segment exists");
        let f = self.active.as_mut().expect("active file open");
        f.seek(SeekFrom::Start(meta.bytes))?;
        let frame_len = write_frame(f, FRAME_BLOCK, &payload)?;
        meta.blocks.push(BlockMeta {
            offset: meta.bytes,
            payload_len: payload.len() as u32,
            ou: entry.ou,
            count: samples.len() as u64,
            min_start_ns: samples.iter().map(|s| s.start_ns).min().unwrap_or(0),
            max_start_ns: samples.iter().map(|s| s.start_ns).max().unwrap_or(0),
        });
        meta.bytes += frame_len;
        if !meta.ous.iter().any(|o| o.ou == entry.ou) {
            meta.ous.push(entry);
        }
        self.buffered -= samples.len();
        self.telemetry
            .counter_add("archive_bytes_written_total", &[], frame_len);
        self.telemetry
            .counter_inc("archive_ou_blocks_total", &[("ou", &entry_name)]);
        self.telemetry.counter_add(
            "archive_ou_bytes_written_total",
            &[("ou", &entry_name)],
            frame_len,
        );
        self.telemetry
            .gauge_add("archive_buffered_samples", &[], -(samples.len() as f64));
        self.telemetry
            .hist_record("archive_flush_ns", &[], t0.elapsed().as_nanos() as f64);
        if self.segments.last().map(|m| m.bytes).unwrap_or(0) >= self.opts.segment_max_bytes {
            self.seal_active()?;
        }
        Ok(())
    }

    /// Create the active segment file if there is none.
    fn ensure_active(&mut self) -> Result<(), ArchiveError> {
        if self.active.is_some() {
            return Ok(());
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let path = seg_path(&self.dir, seq);
        let mut f = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        use std::io::Write;
        f.write_all(MAGIC)?;
        f.write_all(&[VERSION])?;
        self.segments.push(SegmentMeta {
            seq,
            path,
            bytes: HEADER_LEN,
            sealed: false,
            ous: Vec::new(),
            blocks: Vec::new(),
        });
        self.active = Some(f);
        self.telemetry
            .counter_add("archive_bytes_written_total", &[], HEADER_LEN);
        self.telemetry
            .gauge_set("archive_segments", &[], self.segments.len() as f64);
        Ok(())
    }

    /// Flush every memtable to the active segment (durability point for
    /// everything appended so far, modulo OS buffering).
    pub fn flush(&mut self) -> Result<(), ArchiveError> {
        let ous: Vec<u16> = self.memtables.keys().copied().collect();
        for ou in ous {
            self.flush_ou(ou)?;
        }
        Ok(())
    }

    /// Flush, then seal the active segment with its footer manifest.
    pub fn seal(&mut self) -> Result<(), ArchiveError> {
        self.flush()?;
        self.seal_active()
    }

    fn seal_active(&mut self) -> Result<(), ArchiveError> {
        let Some(mut f) = self.active.take() else {
            return Ok(());
        };
        let meta = self.segments.last_mut().expect("active meta exists");
        if meta.blocks.is_empty() {
            // Nothing flushed: drop the empty file rather than sealing it.
            let path = meta.path.clone();
            self.segments.pop();
            drop(f);
            std::fs::remove_file(path)?;
            self.telemetry
                .gauge_set("archive_segments", &[], self.segments.len() as f64);
            return Ok(());
        }
        f.seek(SeekFrom::Start(meta.bytes))?;
        let footer = encode_footer(&meta.ous, &meta.blocks);
        let frame_len = write_frame(&mut f, FRAME_FOOTER, &footer)?;
        meta.bytes += frame_len;
        meta.sealed = true;
        self.telemetry
            .counter_add("archive_bytes_written_total", &[], frame_len);
        self.telemetry
            .counter_inc("archive_segments_sealed_total", &[]);
        Ok(())
    }

    /// Samples currently buffered in memtables (the write-side memory
    /// bound that `processor_buffered_samples` reports).
    pub fn buffered_samples(&self) -> usize {
        self.buffered
    }

    /// Per-OU memtable occupancy (compaction's retention accounting).
    pub(crate) fn memtable_sizes(&self) -> Vec<(u16, usize)> {
        self.memtables
            .iter()
            .map(|(ou, (_, v))| (*ou, v.len()))
            .collect()
    }

    /// Every OU name the archive has seen (segments + memtables).
    pub fn ou_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .segments
            .iter()
            .flat_map(|s| s.ous.iter().map(|o| o.name.clone()))
            .chain(self.memtables.values().map(|(o, _)| o.name.clone()))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Current shape summary.
    pub fn stats(&self) -> ArchiveStats {
        ArchiveStats {
            segments: self.segments.len(),
            sealed_segments: self.segments.iter().filter(|s| s.sealed).count(),
            blocks: self.segments.iter().map(|s| s.blocks.len()).sum(),
            samples_stored: self.segments.iter().map(SegmentMeta::samples).sum(),
            samples_buffered: self.buffered,
            bytes: self.segments.iter().map(|s| s.bytes).sum(),
        }
    }

    /// Stream every sample of one OU in append order: segment blocks
    /// oldest-first, then the OU's memtable tail.
    pub fn scan_ou(&self, ou_name: &str) -> SampleScan {
        self.scan_filtered(Some(ou_name))
    }

    /// Stream every sample in storage order (blocks interleave OUs; each
    /// OU's samples appear in its own append order).
    pub fn scan_all(&self) -> SampleScan {
        self.scan_filtered(None)
    }

    fn scan_filtered(&self, ou_name: Option<&str>) -> SampleScan {
        let want = |o: &OuEntry| ou_name.is_none_or(|n| o.name == n);
        let mut plan = Vec::new();
        for seg in &self.segments {
            let ids: Vec<u16> = seg.ous.iter().filter(|o| want(o)).map(|o| o.ou).collect();
            if ids.is_empty() {
                continue;
            }
            for b in &seg.blocks {
                if ids.contains(&b.ou) {
                    plan.push((seg.path.clone(), b.offset, b.payload_len, seg.bytes));
                }
            }
        }
        let tail: Vec<Sample> = self
            .memtables
            .values()
            .filter(|(o, _)| want(o))
            .flat_map(|(_, v)| v.iter().cloned())
            .collect();
        SampleScan {
            plan,
            next_block: 0,
            file: None,
            buf: Vec::new(),
            buf_pos: 0,
            tail,
            tail_pos: 0,
            telemetry: self.telemetry.clone(),
        }
    }
}

impl Drop for Archive {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; a crash instead goes
        // through torn-tail recovery at the next open.
        let _ = self.seal();
    }
}

/// Streaming reader: decodes one block at a time, never materializing
/// the archive. Blocks that fail their CRC or decode (possible only if
/// the file changed underneath us) are skipped and counted in
/// `archive_scan_skipped_blocks_total`.
#[derive(Debug)]
pub struct SampleScan {
    /// `(path, frame offset, payload_len, file_len)` per block, in order.
    plan: Vec<(PathBuf, u64, u32, u64)>,
    next_block: usize,
    file: Option<(PathBuf, File)>,
    buf: Vec<Sample>,
    buf_pos: usize,
    tail: Vec<Sample>,
    tail_pos: usize,
    telemetry: Telemetry,
}

impl Iterator for SampleScan {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        loop {
            if self.buf_pos < self.buf.len() {
                let s = std::mem::replace(&mut self.buf[self.buf_pos], Sample::placeholder());
                self.buf_pos += 1;
                return Some(s);
            }
            if self.next_block >= self.plan.len() {
                if self.tail_pos < self.tail.len() {
                    let s = std::mem::replace(&mut self.tail[self.tail_pos], Sample::placeholder());
                    self.tail_pos += 1;
                    return Some(s);
                }
                return None;
            }
            let (path, offset, _len, file_len) = self.plan[self.next_block].clone();
            self.next_block += 1;
            if self.file.as_ref().map(|(p, _)| p != &path).unwrap_or(true) {
                match File::open(&path) {
                    Ok(f) => self.file = Some((path.clone(), f)),
                    Err(_) => {
                        self.telemetry
                            .counter_inc("archive_scan_skipped_blocks_total", &[]);
                        continue;
                    }
                }
            }
            let f = &mut self.file.as_mut().unwrap().1;
            let decoded = read_frame(f, offset, file_len)
                .ok()
                .flatten()
                .filter(|(kind, ..)| *kind == FRAME_BLOCK)
                .and_then(|(_, payload, _)| decode_block(&payload));
            match decoded {
                Some((_, samples)) => {
                    self.buf = samples;
                    self.buf_pos = 0;
                }
                None => {
                    self.telemetry
                        .counter_inc("archive_scan_skipped_blocks_total", &[]);
                }
            }
        }
    }
}

impl Sample {
    /// Cheap placeholder used by the scan to move samples out of its
    /// buffer without cloning.
    fn placeholder() -> Sample {
        Sample {
            ou: 0,
            ou_name: String::new(),
            subsystem: 0,
            tid: 0,
            template: 0,
            start_ns: 0,
            elapsed_ns: 0,
            metrics: Vec::new(),
            features: Vec::new(),
            user_metrics: Vec::new(),
        }
    }
}

#[cfg(test)]
pub(crate) fn test_sample(ou: u16, name: &str, i: u64) -> Sample {
    Sample {
        ou,
        ou_name: name.to_string(),
        subsystem: (ou % 6) as u8,
        tid: (i % 4) as u32,
        template: (i % 7) as u32,
        start_ns: 1_000_000 + i * 1_500,
        elapsed_ns: 200 + (i * 37) % 9_000,
        metrics: vec![i, i * 3],
        features: vec![i as f64, (i as f64) * 0.5 - 10.0],
        user_metrics: vec![i % 2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tscout_archive_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn append_flush_seal_scan_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut a = Archive::open(&dir, ArchiveOptions::default(), Telemetry::new()).unwrap();
        let originals: Vec<Sample> = (0..500)
            .map(|i| {
                test_sample(
                    (i % 3) as u16,
                    ["scan", "filter", "join"][(i % 3) as usize],
                    i,
                )
            })
            .collect();
        for s in &originals {
            a.append(s.clone()).unwrap();
        }
        a.seal().unwrap();
        for name in ["scan", "filter", "join"] {
            let got: Vec<Sample> = a.scan_ou(name).collect();
            let want: Vec<&Sample> = originals.iter().filter(|s| s.ou_name == name).collect();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert!(g.bits_eq(w));
            }
        }
        assert_eq!(a.scan_all().count(), 500);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_includes_unflushed_memtable_tail() {
        let dir = tmp_dir("tail");
        let mut a = Archive::open(&dir, ArchiveOptions::default(), Telemetry::new()).unwrap();
        for i in 0..10 {
            a.append(test_sample(1, "scan", i)).unwrap();
        }
        assert_eq!(a.buffered_samples(), 10);
        assert_eq!(a.scan_ou("scan").count(), 10);
        assert_eq!(a.stats().samples_stored, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memtable_bound_forces_flush() {
        let dir = tmp_dir("bound");
        let opts = ArchiveOptions {
            memtable_flush_samples: 64,
            max_buffered_samples: 100,
            ..Default::default()
        };
        let mut a = Archive::open(&dir, opts, Telemetry::new()).unwrap();
        // Spread across many OUs so no single memtable hits 64.
        for i in 0..5_000u64 {
            a.append(test_sample((i % 40) as u16, &format!("ou{}", i % 40), i))
                .unwrap();
        }
        assert!(
            a.buffered_samples() <= 100,
            "buffered {} exceeds bound",
            a.buffered_samples()
        );
        assert_eq!(
            a.telemetry.gauge_value("archive_buffered_samples", &[]),
            a.buffered_samples() as f64
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_after_clean_seal_preserves_everything() {
        let dir = tmp_dir("reopen");
        let originals: Vec<Sample> = (0..300).map(|i| test_sample(2, "join", i)).collect();
        {
            let mut a = Archive::open(&dir, ArchiveOptions::default(), Telemetry::new()).unwrap();
            for s in &originals {
                a.append(s.clone()).unwrap();
            }
            // Drop seals.
        }
        let t = Telemetry::new();
        let a = Archive::open(&dir, ArchiveOptions::default(), t.clone()).unwrap();
        assert_eq!(
            t.counter_value("archive_recovered_truncations_total", &[]),
            0
        );
        let got: Vec<Sample> = a.scan_ou("join").collect();
        assert_eq!(got.len(), 300);
        for (g, w) in got.iter().zip(&originals) {
            assert!(g.bits_eq(w));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsealed_segment_is_recovered_and_resealed() {
        let dir = tmp_dir("unsealed");
        {
            let mut a = Archive::open(&dir, ArchiveOptions::default(), Telemetry::new()).unwrap();
            for i in 0..50 {
                a.append(test_sample(1, "scan", i)).unwrap();
            }
            a.flush().unwrap(); // blocks on disk, no footer
            std::mem::forget(a); // simulate crash: Drop (seal) never runs
        }
        let t = Telemetry::new();
        let a = Archive::open(&dir, ArchiveOptions::default(), t.clone()).unwrap();
        assert_eq!(a.scan_ou("scan").count(), 50);
        assert_eq!(a.stats().sealed_segments, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_block() {
        let dir = tmp_dir("torn");
        {
            let mut a = Archive::open(&dir, ArchiveOptions::default(), Telemetry::new()).unwrap();
            for i in 0..100 {
                a.append(test_sample(1, "scan", i)).unwrap();
            }
            a.flush().unwrap();
            std::mem::forget(a);
        }
        // Append garbage: a torn half-written frame.
        let path = seg_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let clean_len = bytes.len();
        bytes.extend_from_slice(&[FRAME_BLOCK, 0xFF, 0xFF, 0x00, 0x00, 1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        let t = Telemetry::new();
        let a = Archive::open(&dir, ArchiveOptions::default(), t.clone()).unwrap();
        assert_eq!(
            t.counter_value("archive_recovered_truncations_total", &[]),
            1
        );
        assert_eq!(a.scan_ou("scan").count(), 100);
        // The torn bytes are gone; the file was resealed past clean_len.
        assert!(std::fs::metadata(&path).unwrap().len() >= clean_len as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_roll_over_at_size_cap() {
        let dir = tmp_dir("rollover");
        let opts = ArchiveOptions {
            memtable_flush_samples: 32,
            segment_max_bytes: 2_048,
            ..Default::default()
        };
        let t = Telemetry::new();
        let mut a = Archive::open(&dir, opts, t.clone()).unwrap();
        for i in 0..2_000 {
            a.append(test_sample(1, "scan", i)).unwrap();
        }
        a.seal().unwrap();
        assert!(a.stats().segments > 1, "expected rollover: {:?}", a.stats());
        assert_eq!(
            t.counter_value("archive_segments_sealed_total", &[]) as usize,
            a.stats().sealed_segments
        );
        assert_eq!(a.scan_ou("scan").count(), 2_000);
        std::fs::remove_dir_all(&dir).ok();
    }
}
