//! Index access methods: B+-tree (ordered) and hash (point lookups).

pub mod btree;
pub mod hash;

pub use btree::{BTreeIndex, IndexKey};
pub use hash::HashIndex;

use crate::storage::SlotId;
use crate::types::{Row, Value};

/// Index kind selected at `CREATE INDEX` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    BTree,
    Hash,
}

/// A live index structure.
#[derive(Debug)]
pub enum Index {
    BTree(BTreeIndex),
    Hash(HashIndex),
}

impl Index {
    pub fn new(kind: IndexKind) -> Index {
        match kind {
            IndexKind::BTree => Index::BTree(BTreeIndex::new()),
            IndexKind::Hash => Index::Hash(HashIndex::new()),
        }
    }

    pub fn kind(&self) -> IndexKind {
        match self {
            Index::BTree(_) => IndexKind::BTree,
            Index::Hash(_) => IndexKind::Hash,
        }
    }

    pub fn insert(&mut self, key: IndexKey, slot: SlotId) {
        match self {
            Index::BTree(t) => t.insert(key, slot),
            Index::Hash(h) => h.insert(key, slot),
        }
    }

    pub fn remove(&mut self, key: &IndexKey, slot: SlotId) -> bool {
        match self {
            Index::BTree(t) => t.remove(key, slot),
            Index::Hash(h) => h.remove(key, slot),
        }
    }

    /// Point lookup: `(postings, entries_examined)`.
    pub fn get(&self, key: &IndexKey) -> (Vec<SlotId>, usize) {
        match self {
            Index::BTree(t) => t.get(key),
            Index::Hash(h) => h.get(key),
        }
    }

    /// Inclusive range scan (B-tree only; hash indexes return empty).
    pub fn range(&self, lo: Option<&IndexKey>, hi: Option<&IndexKey>) -> (Vec<SlotId>, usize) {
        match self {
            Index::BTree(t) => t.range(lo, hi),
            Index::Hash(_) => (Vec::new(), 0),
        }
    }

    /// Prefix scan (B-tree only).
    pub fn prefix(&self, prefix: &[Value]) -> (Vec<SlotId>, usize) {
        match self {
            Index::BTree(t) => t.prefix(prefix),
            Index::Hash(_) => (Vec::new(), 0),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Index::BTree(t) => t.len(),
            Index::Hash(h) => h.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural depth (B-tree height; 1 for hash) — an OU feature.
    pub fn depth(&self) -> usize {
        match self {
            Index::BTree(t) => t.depth(),
            Index::Hash(_) => 1,
        }
    }
}

/// Extract an index key from a row given the indexed column positions.
pub fn key_from_row(row: &Row, cols: &[usize]) -> IndexKey {
    cols.iter().map(|c| row[*c].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_works_for_both_kinds() {
        for kind in [IndexKind::BTree, IndexKind::Hash] {
            let mut idx = Index::new(kind);
            assert_eq!(idx.kind(), kind);
            idx.insert(vec![Value::Int(1)], SlotId(7));
            assert_eq!(idx.get(&vec![Value::Int(1)]).0, vec![SlotId(7)]);
            assert_eq!(idx.len(), 1);
            assert!(idx.depth() >= 1);
            assert!(idx.remove(&vec![Value::Int(1)], SlotId(7)));
            assert!(idx.is_empty());
        }
    }

    #[test]
    fn range_on_hash_is_empty() {
        let mut idx = Index::new(IndexKind::Hash);
        idx.insert(vec![Value::Int(1)], SlotId(1));
        assert!(idx.range(None, None).0.is_empty());
    }

    #[test]
    fn key_extraction() {
        let row: Row = vec![Value::Int(1), Value::Text("x".into()), Value::Int(3)];
        assert_eq!(
            key_from_row(&row, &[2, 0]),
            vec![Value::Int(3), Value::Int(1)]
        );
    }
}
