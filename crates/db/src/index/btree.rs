//! A from-scratch B+-tree index.
//!
//! Order-`B` tree mapping composite keys to slot-id postings lists
//! (non-unique indexes store several slots per key). Inserts split
//! bottom-up; deletes are *lazy* (keys are removed but nodes are not
//! rebalanced — standard practice for in-memory OLTP indexes where keys
//! churn in place). Range scans descend per query; the tree reports its
//! height and per-scan examined-entry counts because those are OU input
//! features for the index-scan behavior model.

use crate::storage::SlotId;
use crate::types::Value;

/// A composite index key.
pub type IndexKey = Vec<Value>;

const ORDER: usize = 32; // max keys per node = 2*ORDER

#[derive(Debug)]
enum Node {
    Leaf {
        keys: Vec<IndexKey>,
        posts: Vec<Vec<SlotId>>,
    },
    Inner {
        keys: Vec<IndexKey>,
        children: Vec<Node>,
    },
}

impl Node {
    fn leaf() -> Node {
        Node::Leaf {
            keys: Vec::new(),
            posts: Vec::new(),
        }
    }

    fn is_full(&self) -> bool {
        match self {
            Node::Leaf { keys, .. } | Node::Inner { keys, .. } => keys.len() >= 2 * ORDER,
        }
    }
}

/// The B+-tree.
#[derive(Debug)]
pub struct BTreeIndex {
    root: Node,
    entries: usize,
    height: usize,
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeIndex {
    pub fn new() -> Self {
        BTreeIndex {
            root: Node::leaf(),
            entries: 0,
            height: 1,
        }
    }

    /// Number of (key, slot) postings.
    pub fn len(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Tree height — an input feature of the index-lookup OU model.
    pub fn depth(&self) -> usize {
        self.height
    }

    pub fn insert(&mut self, key: IndexKey, slot: SlotId) {
        if self.root.is_full() {
            let old_root = std::mem::replace(&mut self.root, Node::leaf());
            let ((left, sep), right) = split(old_root);
            self.root = Node::Inner {
                keys: vec![sep],
                children: vec![left, right],
            };
            self.height += 1;
        }
        if insert_non_full(&mut self.root, key, slot) {
            self.entries += 1;
        }
    }

    /// Remove one posting. Returns whether it was present.
    pub fn remove(&mut self, key: &IndexKey, slot: SlotId) -> bool {
        let removed = remove_rec(&mut self.root, key, slot);
        if removed {
            self.entries -= 1;
        }
        removed
    }

    /// Point lookup. Returns the postings and the number of comparisons
    /// performed (the "entries examined" feature).
    pub fn get(&self, key: &IndexKey) -> (Vec<SlotId>, usize) {
        let mut examined = 0usize;
        let mut node = &self.root;
        loop {
            match node {
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    examined += (keys.len().max(1)).ilog2() as usize + 1;
                    node = &children[idx];
                }
                Node::Leaf { keys, posts } => {
                    examined += (keys.len().max(1)).ilog2() as usize + 1;
                    return match keys.binary_search(key) {
                        Ok(i) => (posts[i].clone(), examined),
                        Err(_) => (Vec::new(), examined),
                    };
                }
            }
        }
    }

    /// Inclusive range scan. Returns postings in key order plus the number
    /// of entries examined.
    pub fn range(&self, lo: Option<&IndexKey>, hi: Option<&IndexKey>) -> (Vec<SlotId>, usize) {
        let mut out = Vec::new();
        let mut examined = 0usize;
        range_rec(&self.root, lo, hi, &mut out, &mut examined);
        (out, examined)
    }

    /// Scan keys with a given prefix (for composite keys where only the
    /// leading columns are bound).
    pub fn prefix(&self, prefix: &[Value]) -> (Vec<SlotId>, usize) {
        let mut out = Vec::new();
        let mut examined = 0usize;
        prefix_rec(&self.root, prefix, &mut out, &mut examined);
        (out, examined)
    }
}

/// Split a full node; returns ((left, separator), right).
fn split(node: Node) -> ((Node, IndexKey), Node) {
    match node {
        Node::Leaf {
            mut keys,
            mut posts,
        } => {
            let mid = keys.len() / 2;
            let rk = keys.split_off(mid);
            let rp = posts.split_off(mid);
            let sep = rk[0].clone();
            (
                (Node::Leaf { keys, posts }, sep),
                Node::Leaf {
                    keys: rk,
                    posts: rp,
                },
            )
        }
        Node::Inner {
            mut keys,
            mut children,
        } => {
            let mid = keys.len() / 2;
            let mut rk = keys.split_off(mid);
            let sep = rk.remove(0);
            let rc = children.split_off(mid + 1);
            (
                (Node::Inner { keys, children }, sep),
                Node::Inner {
                    keys: rk,
                    children: rc,
                },
            )
        }
    }
}

/// Insert into a non-full node. Returns true when a *new* posting was
/// added (false when the slot was already present for the key).
fn insert_non_full(node: &mut Node, key: IndexKey, slot: SlotId) -> bool {
    match node {
        Node::Leaf { keys, posts } => match keys.binary_search(&key) {
            Ok(i) => {
                if posts[i].contains(&slot) {
                    false
                } else {
                    posts[i].push(slot);
                    true
                }
            }
            Err(i) => {
                keys.insert(i, key);
                posts.insert(i, vec![slot]);
                true
            }
        },
        Node::Inner { keys, children } => {
            let mut idx = keys.partition_point(|k| k <= &key);
            if children[idx].is_full() {
                let child = std::mem::replace(&mut children[idx], Node::leaf());
                let ((left, sep), right) = split(child);
                children[idx] = left;
                children.insert(idx + 1, right);
                keys.insert(idx, sep);
                if key >= keys[idx] {
                    idx += 1;
                }
            }
            insert_non_full(&mut children[idx], key, slot)
        }
    }
}

fn remove_rec(node: &mut Node, key: &IndexKey, slot: SlotId) -> bool {
    match node {
        Node::Leaf { keys, posts } => match keys.binary_search(key) {
            Ok(i) => {
                let had = posts[i].iter().position(|s| *s == slot);
                match had {
                    Some(p) => {
                        posts[i].swap_remove(p);
                        if posts[i].is_empty() {
                            keys.remove(i);
                            posts.remove(i);
                        }
                        true
                    }
                    None => false,
                }
            }
            Err(_) => false,
        },
        Node::Inner { keys, children } => {
            let idx = keys.partition_point(|k| k <= key);
            remove_rec(&mut children[idx], key, slot)
        }
    }
}

fn range_rec(
    node: &Node,
    lo: Option<&IndexKey>,
    hi: Option<&IndexKey>,
    out: &mut Vec<SlotId>,
    examined: &mut usize,
) {
    match node {
        Node::Leaf { keys, posts } => {
            for (k, p) in keys.iter().zip(posts) {
                *examined += 1;
                if lo.is_some_and(|l| k < l) {
                    continue;
                }
                if hi.is_some_and(|h| k > h) {
                    return;
                }
                out.extend_from_slice(p);
            }
        }
        Node::Inner { keys, children } => {
            // Child `i` holds keys in [keys[i-1], keys[i]) with open ends
            // at the edges; descend only children intersecting [lo, hi].
            for (i, child) in children.iter().enumerate() {
                let left_sep = if i == 0 { None } else { keys.get(i - 1) };
                let right_sep = keys.get(i);
                if let (Some(h), Some(ls)) = (hi, left_sep) {
                    if ls > h {
                        continue; // child minimum already beyond hi
                    }
                }
                if let (Some(l), Some(rs)) = (lo, right_sep) {
                    if rs <= l {
                        continue; // child maximum below lo
                    }
                }
                range_rec(child, lo, hi, out, examined);
            }
        }
    }
}

fn prefix_rec(node: &Node, prefix: &[Value], out: &mut Vec<SlotId>, examined: &mut usize) {
    match node {
        Node::Leaf { keys, posts } => {
            for (k, p) in keys.iter().zip(posts) {
                *examined += 1;
                if k.len() >= prefix.len() && &k[..prefix.len()] == prefix {
                    out.extend_from_slice(p);
                }
            }
        }
        Node::Inner { keys, children } => {
            for (i, child) in children.iter().enumerate() {
                // Prune children strictly outside the prefix band.
                let left_sep = i.checked_sub(1).and_then(|j| keys.get(j));
                let right_sep = keys.get(i);
                let lo_ok = left_sep
                    .is_none_or(|sep| sep.len() < prefix.len() || sep[..prefix.len()] <= *prefix);
                let hi_ok = right_sep
                    .is_none_or(|sep| sep.len() < prefix.len() || sep[..prefix.len()] >= *prefix);
                if lo_ok && hi_ok {
                    prefix_rec(child, prefix, out, examined);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: i64) -> IndexKey {
        vec![Value::Int(v)]
    }

    #[test]
    fn insert_get_many() {
        let mut t = BTreeIndex::new();
        for i in 0..2000 {
            t.insert(k(i * 7 % 1999), SlotId(i as u64));
        }
        assert_eq!(t.len(), 2000);
        let (posts, examined) = t.get(&k(7));
        assert_eq!(posts.len(), 1);
        assert!(examined > 0);
        assert!(t.depth() >= 2, "2000 keys must split the root");
    }

    #[test]
    fn duplicate_postings_are_deduped() {
        let mut t = BTreeIndex::new();
        t.insert(k(1), SlotId(9));
        t.insert(k(1), SlotId(9));
        t.insert(k(1), SlotId(10));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&k(1)).0.len(), 2);
    }

    #[test]
    fn remove_postings_and_keys() {
        let mut t = BTreeIndex::new();
        t.insert(k(1), SlotId(1));
        t.insert(k(1), SlotId(2));
        assert!(t.remove(&k(1), SlotId(1)));
        assert!(!t.remove(&k(1), SlotId(1)), "already gone");
        assert_eq!(t.get(&k(1)).0, vec![SlotId(2)]);
        assert!(t.remove(&k(1), SlotId(2)));
        assert!(t.get(&k(1)).0.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn range_scan_inclusive() {
        let mut t = BTreeIndex::new();
        for i in 0..500 {
            t.insert(k(i), SlotId(i as u64));
        }
        let (slots, _) = t.range(Some(&k(100)), Some(&k(110)));
        let ids: Vec<u64> = slots.iter().map(|s| s.0).collect();
        assert_eq!(ids, (100..=110).collect::<Vec<u64>>());
        let (all, _) = t.range(None, None);
        assert_eq!(all.len(), 500);
        let (tail, _) = t.range(Some(&k(495)), None);
        assert_eq!(tail.len(), 5);
        let (head, _) = t.range(None, Some(&k(4)));
        assert_eq!(head.len(), 5);
    }

    #[test]
    fn composite_keys_and_prefix_scan() {
        let mut t = BTreeIndex::new();
        for a in 0..20i64 {
            for b in 0..10i64 {
                t.insert(
                    vec![Value::Int(a), Value::Int(b)],
                    SlotId((a * 10 + b) as u64),
                );
            }
        }
        let (slots, _) = t.prefix(&[Value::Int(7)]);
        let mut ids: Vec<u64> = slots.iter().map(|s| s.0).collect();
        ids.sort();
        assert_eq!(ids, (70..80).collect::<Vec<u64>>());
    }

    #[test]
    fn matches_std_btreemap_model() {
        use std::collections::BTreeMap;
        let mut ours = BTreeIndex::new();
        let mut model: BTreeMap<IndexKey, Vec<SlotId>> = BTreeMap::new();
        let mut x: i64 = 42;
        for step in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = k((x >> 33) % 300);
            let slot = SlotId(step as u64 % 97);
            if step % 3 == 0 {
                // removal
                let present = model.get(&key).map(|v| v.contains(&slot)).unwrap_or(false);
                assert_eq!(ours.remove(&key, slot), present, "step {step}");
                if present {
                    let v = model.get_mut(&key).unwrap();
                    v.retain(|s| *s != slot);
                    if v.is_empty() {
                        model.remove(&key);
                    }
                }
            } else {
                ours.insert(key.clone(), slot);
                let v = model.entry(key).or_default();
                if !v.contains(&slot) {
                    v.push(slot);
                }
            }
        }
        let expect: usize = model.values().map(std::vec::Vec::len).sum();
        assert_eq!(ours.len(), expect);
        for (key, slots) in &model {
            let (mut got, _) = ours.get(key);
            got.sort();
            let mut want = slots.clone();
            want.sort();
            assert_eq!(got, want, "key {key:?}");
        }
        // Full range scan returns everything in key order.
        let (all, _) = ours.range(None, None);
        assert_eq!(all.len(), expect);
    }
}
