//! A from-scratch open-addressing hash index.
//!
//! Linear probing with tombstones, deterministic hashing (the standard
//! library's `DefaultHasher` with a fixed initial state), and postings
//! lists per key for non-unique indexes. Point lookups are O(1) — the
//! primary-key access path for YCSB/TATP-style workloads.

use std::hash::{Hash, Hasher};

use crate::storage::SlotId;
use crate::types::Value;

use super::btree::IndexKey;

#[derive(Debug, Clone)]
enum Bucket {
    Empty,
    Tombstone,
    Full { key: IndexKey, posts: Vec<SlotId> },
}

/// The hash index.
#[derive(Debug)]
pub struct HashIndex {
    buckets: Vec<Bucket>,
    keys: usize,
    entries: usize,
    tombstones: usize,
}

fn hash_key(key: &[Value]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl Default for HashIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl HashIndex {
    pub fn new() -> Self {
        HashIndex {
            buckets: vec![Bucket::Empty; 16],
            keys: 0,
            entries: 0,
            tombstones: 0,
        }
    }

    /// Number of (key, slot) postings.
    pub fn len(&self) -> usize {
        self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.keys
    }

    fn mask(&self) -> usize {
        self.buckets.len() - 1
    }

    fn grow_if_needed(&mut self) {
        if (self.keys + self.tombstones) * 10 < self.buckets.len() * 7 {
            return;
        }
        let mut old = std::mem::replace(&mut self.buckets, vec![Bucket::Empty; 0]);
        self.buckets = vec![Bucket::Empty; (old.len() * 2).max(16)];
        self.tombstones = 0;
        for b in old.drain(..) {
            if let Bucket::Full { key, posts } = b {
                let idx = self.find_insert_slot(&key);
                self.buckets[idx] = Bucket::Full { key, posts };
            }
        }
    }

    fn find_insert_slot(&self, key: &IndexKey) -> usize {
        let mut i = hash_key(key) as usize & self.mask();
        loop {
            match &self.buckets[i] {
                Bucket::Empty | Bucket::Tombstone => return i,
                Bucket::Full { key: k, .. } if k == key => return i,
                _ => i = (i + 1) & self.mask(),
            }
        }
    }

    /// Probe for an existing key; returns `(bucket, probes)`.
    fn find(&self, key: &IndexKey) -> (Option<usize>, usize) {
        let mut i = hash_key(key) as usize & self.mask();
        let mut probes = 1;
        loop {
            match &self.buckets[i] {
                Bucket::Empty => return (None, probes),
                Bucket::Full { key: k, .. } if k == key => return (Some(i), probes),
                _ => {
                    i = (i + 1) & self.mask();
                    probes += 1;
                    if probes > self.buckets.len() {
                        return (None, probes);
                    }
                }
            }
        }
    }

    pub fn insert(&mut self, key: IndexKey, slot: SlotId) {
        self.grow_if_needed();
        // The key may live *past* a tombstone in its probe chain, while
        // `find_insert_slot` would stop at the tombstone and create a
        // duplicate — search for the existing key first.
        let idx = match self.find(&key).0 {
            Some(i) => i,
            None => self.find_insert_slot(&key),
        };
        match &mut self.buckets[idx] {
            b @ (Bucket::Empty | Bucket::Tombstone) => {
                if matches!(b, Bucket::Tombstone) {
                    self.tombstones -= 1;
                }
                *b = Bucket::Full {
                    key,
                    posts: vec![slot],
                };
                self.keys += 1;
                self.entries += 1;
            }
            Bucket::Full { posts, .. } => {
                if !posts.contains(&slot) {
                    posts.push(slot);
                    self.entries += 1;
                }
            }
        }
    }

    pub fn remove(&mut self, key: &IndexKey, slot: SlotId) -> bool {
        let (found, _) = self.find(key);
        let Some(idx) = found else { return false };
        let Bucket::Full { posts, .. } = &mut self.buckets[idx] else {
            unreachable!()
        };
        let Some(p) = posts.iter().position(|s| *s == slot) else {
            return false;
        };
        posts.swap_remove(p);
        self.entries -= 1;
        if posts.is_empty() {
            self.buckets[idx] = Bucket::Tombstone;
            self.keys -= 1;
            self.tombstones += 1;
        }
        true
    }

    /// Point lookup: `(postings, probes)` — probes feed the OU model.
    pub fn get(&self, key: &IndexKey) -> (Vec<SlotId>, usize) {
        let (found, probes) = self.find(key);
        match found {
            Some(i) => match &self.buckets[i] {
                Bucket::Full { posts, .. } => (posts.clone(), probes),
                _ => (Vec::new(), probes),
            },
            None => (Vec::new(), probes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: i64) -> IndexKey {
        vec![Value::Int(v)]
    }

    #[test]
    fn crud_round_trip() {
        let mut h = HashIndex::new();
        h.insert(k(1), SlotId(10));
        h.insert(k(1), SlotId(11));
        h.insert(k(2), SlotId(20));
        assert_eq!(h.len(), 3);
        assert_eq!(h.key_count(), 2);
        let (posts, probes) = h.get(&k(1));
        assert_eq!(posts.len(), 2);
        assert!(probes >= 1);
        assert!(h.remove(&k(1), SlotId(10)));
        assert!(!h.remove(&k(1), SlotId(10)));
        assert_eq!(h.get(&k(1)).0, vec![SlotId(11)]);
        assert!(h.remove(&k(1), SlotId(11)));
        assert!(h.get(&k(1)).0.is_empty());
        assert_eq!(h.key_count(), 1);
    }

    #[test]
    fn grows_under_load_and_stays_correct() {
        let mut h = HashIndex::new();
        for i in 0..10_000 {
            h.insert(k(i), SlotId(i as u64));
        }
        assert_eq!(h.len(), 10_000);
        for i in (0..10_000).step_by(97) {
            assert_eq!(h.get(&k(i)).0, vec![SlotId(i as u64)], "key {i}");
        }
        assert_eq!(h.get(&k(10_001)).0, Vec::<SlotId>::new());
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        let mut h = HashIndex::new();
        // Insert enough to produce collisions, then delete interleaved.
        for i in 0..200 {
            h.insert(k(i), SlotId(i as u64));
        }
        for i in (0..200).step_by(2) {
            assert!(h.remove(&k(i), SlotId(i as u64)));
        }
        for i in (1..200).step_by(2) {
            assert_eq!(h.get(&k(i)).0, vec![SlotId(i as u64)], "survivor {i}");
        }
        // Reinsert over tombstones.
        for i in (0..200).step_by(2) {
            h.insert(k(i), SlotId((1000 + i) as u64));
        }
        assert_eq!(h.get(&k(4)).0, vec![SlotId(1004)]);
    }

    #[test]
    fn composite_keys_work() {
        let mut h = HashIndex::new();
        let key = vec![Value::Int(1), Value::Text("abc".into())];
        h.insert(key.clone(), SlotId(5));
        assert_eq!(h.get(&key).0, vec![SlotId(5)]);
        let other = vec![Value::Int(1), Value::Text("abd".into())];
        assert!(h.get(&other).0.is_empty());
    }

    #[test]
    fn matches_std_hashmap_model() {
        use std::collections::HashMap;
        let mut ours = HashIndex::new();
        let mut model: HashMap<i64, Vec<SlotId>> = HashMap::new();
        let mut x: i64 = 7;
        for step in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
            let key = (x >> 40) % 500;
            let slot = SlotId(step as u64 % 31);
            if step % 4 == 0 {
                let present = model.get(&key).map(|v| v.contains(&slot)).unwrap_or(false);
                assert_eq!(ours.remove(&k(key), slot), present);
                if present {
                    let v = model.get_mut(&key).unwrap();
                    v.retain(|s| *s != slot);
                    if v.is_empty() {
                        model.remove(&key);
                    }
                }
            } else {
                ours.insert(k(key), slot);
                let v = model.entry(key).or_default();
                if !v.contains(&slot) {
                    v.push(slot);
                }
            }
        }
        assert_eq!(ours.len(), model.values().map(Vec::len).sum::<usize>());
        for (key, slots) in &model {
            let (mut got, _) = ours.get(&k(*key));
            got.sort();
            let mut want = slots.clone();
            want.sort();
            assert_eq!(got, want);
        }
    }
}
