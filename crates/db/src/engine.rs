//! The `Database` façade: sessions, SQL execution, transactions, WAL,
//! GC, and the simulated client/server networking layer.

use tscout::{TScout, TsConfig, TsError};
use tscout_kernel::{Kernel, TaskId};
use tscout_models::LiveModel;

use crate::catalog::Catalog;
use crate::exec::obs::StmtObs;
use crate::exec::ou::{work_for, EngineOu, OuMap};
use crate::exec::plan::Plan;
use crate::exec::{execute, EngineMode, ExecCtx, ExecError, ExecOutcome};
use crate::index::{key_from_row, Index, IndexKind};
use crate::sql::fingerprint::fingerprint;
use crate::sql::parser::{parse, ParseError};
use crate::sql::planner::{plan as plan_stmt, PlanError};
use crate::storage::VersionedTable;
use crate::txn::{TxnHandle, TxnManager};
use crate::types::{row_bytes, Schema, Value};
use crate::wal::{Wal, WalRecord};

/// A client session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub usize);

/// A prepared statement handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatementId(pub usize);

/// Database errors.
#[derive(Debug)]
pub enum DbError {
    Parse(ParseError),
    Plan(PlanError),
    Catalog(crate::catalog::CatalogError),
    /// The statement failed and the enclosing transaction was aborted.
    Aborted(ExecError),
    NoSuchStatement,
    NoTransaction,
    /// The statement kind was rejected by the read-only entry point
    /// ([`Database::execute_readonly`]).
    ReadOnly(&'static str),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "parse error: {e}"),
            DbError::Plan(e) => write!(f, "plan error: {e}"),
            DbError::Catalog(e) => write!(f, "catalog error: {e}"),
            DbError::Aborted(e) => write!(f, "transaction aborted: {e}"),
            DbError::NoSuchStatement => write!(f, "no such prepared statement"),
            DbError::NoTransaction => write!(f, "no open transaction"),
            DbError::ReadOnly(kind) => {
                write!(f, "read-only endpoint: {kind} statements are rejected")
            }
        }
    }
}

impl std::error::Error for DbError {}

#[derive(Debug)]
struct Session {
    task: TaskId,
    txn: Option<TxnHandle>,
}

#[derive(Debug)]
struct Prepared {
    #[allow(dead_code)]
    sql: String,
    plan: Plan,
    /// Normalized statement template for `ts_stat_statements`. Shared,
    /// so the per-execution hot path clones a refcount, not a string.
    fingerprint: std::sync::Arc<str>,
}

/// The NoiseTap DBMS instance.
#[derive(Debug)]
pub struct Database {
    pub kernel: Kernel,
    ts: Option<TScout>,
    ous: Option<OuMap>,
    catalog: Catalog,
    tables: Vec<VersionedTable>,
    indexes: Vec<Index>,
    txns: TxnManager,
    pub wal: Wal,
    gc_task: TaskId,
    sessions: Vec<Session>,
    stmts: Vec<Prepared>,
    /// Marker placement (per-operator vs fused pipelines, §5.2).
    pub mode: EngineMode,
    /// Versions pruned by GC so far.
    pub gc_pruned: u64,
    /// Record per-statement actuals into `ts_stat_statements`. Recording
    /// is clock-neutral on the session task (reads only); its accounting
    /// cost is charged by the driver at pump cadence, so the training
    /// samples a traced workload produces are bit-identical on/off.
    pub stmt_stats_enabled: bool,
    /// Snapshot of the live model generation, for predicted-vs-actual
    /// cost attribution (EXPLAIN ANALYZE, ts_stat_statements MAPE).
    live_model: Option<LiveModel>,
    /// Concurrency context feature used at prediction time — must match
    /// the training datasets' appended concurrency column.
    model_concurrency: f64,
    /// Pooled statement-observation buffer: the per-statement hot path
    /// takes it, resets it, and returns it, so steady-state recording
    /// allocates nothing.
    obs_scratch: StmtObs,
    /// Pooled per-OU breakdown buffer for `record_stmt` (same idea).
    breakdown_scratch: Vec<(&'static str, f64)>,
}

impl Database {
    pub fn new(kernel: Kernel) -> Database {
        let mut kernel = kernel;
        let wal = Wal::new(&mut kernel);
        let gc_task = kernel.create_task();
        Database {
            kernel,
            ts: None,
            ous: None,
            catalog: Catalog::new(),
            tables: Vec::new(),
            indexes: Vec::new(),
            txns: TxnManager::new(),
            wal,
            gc_task,
            sessions: Vec::new(),
            stmts: Vec::new(),
            mode: EngineMode::PerOperator,
            gc_pruned: 0,
            stmt_stats_enabled: true,
            live_model: None,
            model_concurrency: 1.0,
            obs_scratch: StmtObs::default(),
            breakdown_scratch: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Model installation (predicted-vs-actual attribution)
    // ------------------------------------------------------------------

    /// Install the current live model snapshot (or clear it with `None`).
    /// `concurrency` is the context feature the lifecycle trained with
    /// (the driver passes its terminal count).
    pub fn install_live_model(&mut self, live: Option<LiveModel>, concurrency: f64) {
        self.live_model = live;
        self.model_concurrency = concurrency.max(1.0);
    }

    /// Generation of the installed model snapshot, if any.
    pub fn live_model_generation(&self) -> Option<u64> {
        self.live_model.as_ref().map(|m| m.generation)
    }

    /// Predict one OU invocation's elapsed ns from its charged features,
    /// with the same context columns the training datasets append
    /// (CPU clock GHz, concurrency).
    fn predict_ou_ns(&self, ou: &str, features: &[u64]) -> Option<f64> {
        let live = self.live_model.as_ref()?;
        let mut f: Vec<f64> = features.iter().map(|&v| v as f64).collect();
        f.push(self.kernel.hw.clock_ghz);
        f.push(self.model_concurrency);
        live.models.predict_ns(ou, &f)
    }

    /// Predicted total ns for an observed statement (sum over its OU
    /// charges); `None` when no model is installed or no OU had one.
    fn predict_stmt_ns(&self, obs: &StmtObs) -> Option<f64> {
        self.live_model.as_ref()?;
        let mut sum = 0.0;
        let mut any = false;
        for c in &obs.ou {
            if let Some(p) = self.predict_ou_ns(c.name, &c.features) {
                sum += p;
                any = true;
            }
        }
        any.then_some(sum)
    }

    // ------------------------------------------------------------------
    // TScout lifecycle
    // ------------------------------------------------------------------

    /// Deploy TScout against this DBMS (Setup Phase): registers all engine
    /// OUs and instruments every existing task.
    pub fn attach_tscout(&mut self, config: TsConfig) -> Result<(), TsError> {
        let mut ts = TScout::deploy(&mut self.kernel, config)?;
        let ous = OuMap::register(&mut ts);
        ts.register_thread(&mut self.kernel, self.wal.task);
        ts.register_thread(&mut self.kernel, self.gc_task);
        for s in &self.sessions {
            ts.register_thread(&mut self.kernel, s.task);
        }
        self.ts = Some(ts);
        self.ous = Some(ous);
        Ok(())
    }

    /// Unload TScout (dynamic reconfiguration, §5.4). Returns the config
    /// for modification and redeployment.
    pub fn detach_tscout(&mut self) -> Option<TsConfig> {
        self.ous = None;
        self.ts.take().map(|ts| ts.teardown(&mut self.kernel))
    }

    pub fn tscout(&self) -> Option<&TScout> {
        self.ts.as_ref()
    }

    pub fn tscout_mut(&mut self) -> Option<&mut TScout> {
        self.ts.as_mut()
    }

    /// Split borrow for the Processor: `(kernel, tscout)`.
    pub fn collection_parts(&mut self) -> (&mut Kernel, Option<&mut TScout>) {
        (&mut self.kernel, self.ts.as_mut())
    }

    /// Split borrow for the action engine's actuator:
    /// `(kernel, tscout, engine mode)`. The mode reference lets the
    /// `toggle_pipeline` policy switch fused vs per-operator marker
    /// placement mid-run; the switch affects only OUs begun afterward.
    pub fn actuation_parts(&mut self) -> (&mut Kernel, Option<&mut TScout>, &mut EngineMode) {
        (&mut self.kernel, self.ts.as_mut(), &mut self.mode)
    }

    // ------------------------------------------------------------------
    // Sessions and statements
    // ------------------------------------------------------------------

    pub fn create_session(&mut self) -> SessionId {
        let task = self.kernel.create_task();
        if let Some(ts) = &mut self.ts {
            ts.register_thread(&mut self.kernel, task);
        }
        self.sessions.push(Session { task, txn: None });
        SessionId(self.sessions.len() - 1)
    }

    pub fn session_task(&self, sid: SessionId) -> TaskId {
        self.sessions[sid.0].task
    }

    /// The session's current virtual time in nanoseconds.
    pub fn now(&self, sid: SessionId) -> f64 {
        self.kernel.now(self.session_task(sid))
    }

    pub fn prepare(&mut self, sql: &str) -> Result<StatementId, DbError> {
        let stmt = parse(sql).map_err(DbError::Parse)?;
        let plan = plan_stmt(&self.catalog, &stmt).map_err(DbError::Plan)?;
        let fingerprint = fingerprint(&stmt).into();
        self.stmts.push(Prepared {
            sql: sql.to_string(),
            plan,
            fingerprint,
        });
        Ok(StatementId(self.stmts.len() - 1))
    }

    /// Parse, plan, and execute one statement (ad-hoc path).
    pub fn execute(
        &mut self,
        sid: SessionId,
        sql: &str,
        params: &[Value],
    ) -> Result<ExecOutcome, DbError> {
        let stmt = parse(sql).map_err(DbError::Parse)?;
        let plan = plan_stmt(&self.catalog, &stmt).map_err(DbError::Plan)?;
        let fp = self.stmt_stats_enabled.then(|| fingerprint(&stmt));
        self.run_plan(sid, &plan, params, fp.as_deref())
    }

    /// Read-only SQL entry point for external observability surfaces
    /// (the obsd operator plane). Parses, rejects everything except a
    /// plain `SELECT` — DML, DDL, transaction control, `SELECT ... FOR
    /// UPDATE`, and `EXPLAIN` (whose `ANALYZE` form executes) — then
    /// routes through the normal planner and executor.
    pub fn execute_readonly(
        &mut self,
        sid: SessionId,
        sql: &str,
        params: &[Value],
    ) -> Result<ExecOutcome, DbError> {
        let stmt = parse(sql).map_err(DbError::Parse)?;
        let rejected = match &stmt {
            crate::sql::ast::Stmt::Select(sel) => {
                if sel.for_update {
                    Some("SELECT ... FOR UPDATE")
                } else {
                    None
                }
            }
            crate::sql::ast::Stmt::CreateTable { .. } => Some("CREATE TABLE"),
            crate::sql::ast::Stmt::CreateIndex { .. } => Some("CREATE INDEX"),
            crate::sql::ast::Stmt::Insert { .. } => Some("INSERT"),
            crate::sql::ast::Stmt::Update { .. } => Some("UPDATE"),
            crate::sql::ast::Stmt::Delete { .. } => Some("DELETE"),
            crate::sql::ast::Stmt::Begin => Some("BEGIN"),
            crate::sql::ast::Stmt::Commit => Some("COMMIT"),
            crate::sql::ast::Stmt::Rollback => Some("ROLLBACK"),
            crate::sql::ast::Stmt::Explain { .. } => Some("EXPLAIN"),
        };
        if let Some(kind) = rejected {
            return Err(DbError::ReadOnly(kind));
        }
        let plan = plan_stmt(&self.catalog, &stmt).map_err(DbError::Plan)?;
        let fp = self.stmt_stats_enabled.then(|| fingerprint(&stmt));
        self.run_plan(sid, &plan, params, fp.as_deref())
    }

    /// Execute a prepared statement.
    pub fn execute_prepared(
        &mut self,
        sid: SessionId,
        stmt: StatementId,
        params: &[Value],
    ) -> Result<ExecOutcome, DbError> {
        let p = self.stmts.get(stmt.0).ok_or(DbError::NoSuchStatement)?;
        let plan = p.plan.clone();
        let fp = self.stmt_stats_enabled.then(|| p.fingerprint.clone());
        self.run_plan(sid, &plan, params, fp.as_deref())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    pub fn begin(&mut self, sid: SessionId) {
        if self.sessions[sid.0].txn.is_none() {
            self.sessions[sid.0].txn = Some(self.txns.begin());
        }
    }

    pub fn in_txn(&self, sid: SessionId) -> bool {
        self.sessions[sid.0].txn.is_some()
    }

    /// Commit the session's transaction: stamps versions, emits the
    /// TXN_COMMIT OU, and hands redo records to the WAL (asynchronous
    /// group commit — control returns before the flush).
    pub fn commit(&mut self, sid: SessionId) -> Result<(), DbError> {
        let txn = self.sessions[sid.0]
            .txn
            .take()
            .ok_or(DbError::NoTransaction)?;
        let task = self.sessions[sid.0].task;
        let _root = self.kernel.profile_frame(task, "dbms", true);
        let _ou = self.kernel.profile_frame(task, "ou:txn_commit", false);
        let (commit_ts, writes) = self.txns.commit(txn);
        for w in &writes {
            self.tables[w.table.0 as usize].commit_slot(w.slot, txn.id, commit_ts);
        }
        // TXN_COMMIT OU.
        let feats = vec![writes.len() as u64];
        if let (Some(ts), Some(ous)) = (self.ts.as_mut(), self.ous.as_ref()) {
            ts.ou_begin(&mut self.kernel, task, ous.id(EngineOu::TxnCommit));
        }
        let w = work_for(EngineOu::TxnCommit, &feats);
        self.kernel.charge_cpu(task, w.instructions, w.ws_bytes);
        if let (Some(ts), Some(ous)) = (self.ts.as_mut(), self.ous.as_ref()) {
            let id = ous.id(EngineOu::TxnCommit);
            ts.ou_end(&mut self.kernel, task, id);
            ts.ou_features(&mut self.kernel, task, id, &feats, &[0]);
        }
        if !writes.is_empty() {
            let bytes: u64 = writes.iter().map(|w| w.redo_bytes).sum();
            self.wal.append(WalRecord {
                commit_ts,
                bytes,
                writes: writes.len() as u64,
                arrival_ns: self.kernel.now(task),
            });
        }
        self.kernel
            .telemetry
            .counter_inc("db_txn_commits_total", &[]);
        self.kernel
            .telemetry
            .counter_add("db_txn_writes_total", &[], writes.len() as u64);
        Ok(())
    }

    /// Roll back the session's transaction.
    pub fn rollback(&mut self, sid: SessionId) -> Result<(), DbError> {
        let txn = self.sessions[sid.0]
            .txn
            .take()
            .ok_or(DbError::NoTransaction)?;
        let writes = self.txns.abort(txn);
        for w in writes.iter().rev() {
            self.tables[w.table.0 as usize].abort_slot(w.slot, txn.id);
        }
        self.kernel
            .telemetry
            .counter_inc("db_txn_aborts_total", &[]);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Statement execution
    // ------------------------------------------------------------------

    fn run_plan(
        &mut self,
        sid: SessionId,
        plan: &Plan,
        params: &[Value],
        fp: Option<&str>,
    ) -> Result<ExecOutcome, DbError> {
        let _root = self
            .kernel
            .profile_frame(self.sessions[sid.0].task, "dbms", true);
        match plan {
            Plan::Begin => {
                self.begin(sid);
                Ok(ExecOutcome::default())
            }
            Plan::Commit => {
                self.commit(sid)?;
                Ok(ExecOutcome::default())
            }
            Plan::Rollback => {
                self.rollback(sid)?;
                Ok(ExecOutcome::default())
            }
            Plan::Explain { analyze, inner } => {
                if *analyze
                    && matches!(
                        **inner,
                        Plan::Insert { .. }
                            | Plan::Update { .. }
                            | Plan::Delete { .. }
                            | Plan::Query { .. }
                    )
                {
                    return self.run_explain_analyze(sid, inner, params, fp);
                }
                // Plain EXPLAIN never executes (and unlike the paper's
                // external approach, our internal collection never needs
                // it). ANALYZE over non-executable statements (DDL,
                // transaction control) also falls back to the plain
                // rendering.
                let rows = crate::exec::plan::explain(inner, &self.catalog)
                    .into_iter()
                    .map(|l| vec![Value::Text(l)])
                    .collect::<Vec<_>>();
                Ok(ExecOutcome {
                    rows_affected: rows.len() as u64,
                    rows,
                })
            }
            Plan::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                self.create_table(name, columns, primary_key)?;
                Ok(ExecOutcome::default())
            }
            Plan::CreateIndex {
                name,
                table,
                columns,
                kind,
                unique,
            } => {
                self.create_index(name, *table, columns.clone(), *kind, *unique)?;
                Ok(ExecOutcome::default())
            }
            dml => {
                let scratch = if fp.is_some() {
                    // Feature vectors are only worth copying when a
                    // live model will predict from them.
                    let keep = self.live_model.is_some();
                    let mut o = std::mem::take(&mut self.obs_scratch);
                    o.reset(keep);
                    Some(o)
                } else {
                    None
                };
                let implicit = self.sessions[sid.0].txn.is_none();
                if implicit {
                    self.begin(sid);
                }
                let txn = self.sessions[sid.0].txn.unwrap();
                let task = self.sessions[sid.0].task;
                let (result, obs, actual_ns) = {
                    let mut ctx = ExecCtx::new(
                        &mut self.kernel,
                        self.ts.as_mut(),
                        self.ous.as_ref(),
                        task,
                        &self.catalog,
                        &mut self.tables,
                        &mut self.indexes,
                        &mut self.txns,
                        txn,
                        self.mode,
                    );
                    ctx.obs = scratch;
                    let t0 = ctx.kernel.now(task);
                    let r = execute(&mut ctx, dml, params);
                    let t1 = ctx.kernel.now(task);
                    (r, ctx.obs.take(), t1 - t0)
                };
                match result {
                    Ok(outcome) => {
                        if implicit {
                            self.commit(sid)?;
                        }
                        if let (Some(obs), Some(fp)) = (obs, fp) {
                            self.record_stmt(fp, &obs, actual_ns, outcome.rows_affected);
                            self.obs_scratch = obs; // return buffers to the pool
                        }
                        Ok(outcome)
                    }
                    Err(e) => {
                        // Statement failure aborts the whole transaction
                        // (first-writer-wins MVCC has no partial rollback).
                        let _ = self.rollback(sid);
                        Err(DbError::Aborted(e))
                    }
                }
            }
        }
    }

    /// `EXPLAIN ANALYZE`: execute the inner statement for real under
    /// observation, then render the plan tree annotated with per-node
    /// actuals (inclusive virtual-clock ns, rows, loops) and, when a
    /// model is installed, the live model's predicted ns and error.
    fn run_explain_analyze(
        &mut self,
        sid: SessionId,
        inner: &Plan,
        params: &[Value],
        fp: Option<&str>,
    ) -> Result<ExecOutcome, DbError> {
        let implicit = self.sessions[sid.0].txn.is_none();
        if implicit {
            self.begin(sid);
        }
        let txn = self.sessions[sid.0].txn.unwrap();
        let task = self.sessions[sid.0].task;
        let (result, obs, actual_ns) = {
            let mut ctx = ExecCtx::new(
                &mut self.kernel,
                self.ts.as_mut(),
                self.ous.as_ref(),
                task,
                &self.catalog,
                &mut self.tables,
                &mut self.indexes,
                &mut self.txns,
                txn,
                self.mode,
            );
            ctx.obs = Some(StmtObs::new(true));
            let t0 = ctx.kernel.now(task);
            let r = execute(&mut ctx, inner, params);
            let t1 = ctx.kernel.now(task);
            (r, ctx.obs.take().unwrap_or_default(), t1 - t0)
        };
        let outcome = match result {
            Ok(o) => {
                if implicit {
                    self.commit(sid)?;
                }
                o
            }
            Err(e) => {
                let _ = self.rollback(sid);
                return Err(DbError::Aborted(e));
            }
        };
        // Annotating the tree is user-visible statement work, not part of
        // a driven workload — charge it on the session clock directly.
        let render_ns = self.kernel.cost.explain_analyze_node_ns * obs.nodes.len().max(1) as f64;
        self.kernel.charge_overhead(task, render_ns);
        self.kernel
            .telemetry
            .counter_inc("db_explain_analyze_total", &[]);
        if let Some(fp) = fp {
            self.record_stmt(fp, &obs, actual_ns, outcome.rows_affected);
        }
        let annots = self.annotations(&obs);
        let mut lines = crate::exec::plan::explain_annotated(inner, &self.catalog, &annots);
        let ou_ns = obs.ou_total_ns();
        let head = format!("Execution: actual={actual_ns:.0}ns ou_actual={ou_ns:.0}ns");
        let footer = match self.live_model_generation() {
            Some(g) => match self.predict_stmt_ns(&obs) {
                Some(p) => format!(
                    "{head} predicted={p:.0}ns err={:.1}% (model generation {g})",
                    (p - ou_ns).abs() / ou_ns.max(1e-9) * 100.0
                ),
                None => format!("{head} predicted=- (model generation {g})"),
            },
            None => format!("{head} predicted=- (no model installed)"),
        };
        lines.push(footer);
        let rows: Vec<Vec<Value>> = lines.into_iter().map(|l| vec![Value::Text(l)]).collect();
        Ok(ExecOutcome {
            rows_affected: rows.len() as u64,
            rows,
        })
    }

    /// Per-node annotation suffixes in `StmtObs` node order (pre-order).
    fn annotations(&self, obs: &StmtObs) -> Vec<String> {
        obs.nodes
            .iter()
            .enumerate()
            .map(|(idx, n)| {
                // The node's *own* OU-accounted cost (children excluded) —
                // what the per-OU models actually predict.
                let own_actual: f64 = obs.node_charges(idx).map(|c| c.ns).sum();
                let mut predicted = None;
                if self.live_model.is_some() {
                    let mut sum = 0.0;
                    let mut any = false;
                    for c in obs.node_charges(idx) {
                        if let Some(p) = self.predict_ou_ns(c.name, &c.features) {
                            sum += p;
                            any = true;
                        }
                    }
                    predicted = any.then_some(sum);
                }
                match predicted {
                    Some(p) => format!(
                        " (actual={:.0}ns rows={} loops={} predicted={:.0}ns err={:.1}%)",
                        n.ns,
                        n.rows,
                        n.loops,
                        p,
                        (p - own_actual).abs() / own_actual.max(1e-9) * 100.0
                    ),
                    None => format!(
                        " (actual={:.0}ns rows={} loops={} predicted=-)",
                        n.ns, n.rows, n.loops
                    ),
                }
            })
            .collect()
    }

    /// Record one executed statement into the telemetry stats registry.
    /// Reads only on the session clock — the accounting cost is charged
    /// by the driver at pump cadence (`stmt_fingerprint_ns` +
    /// `stmt_record_ns` per recorded statement).
    fn record_stmt(&mut self, fp: &str, obs: &StmtObs, actual_ns: f64, rows: u64) {
        let mut breakdown = std::mem::take(&mut self.breakdown_scratch);
        obs.ou_breakdown_into(&mut breakdown);
        let predicted = self.predict_stmt_ns(obs);
        self.kernel
            .telemetry
            .stmt_record(fp, actual_ns, rows, &breakdown, predicted);
        self.breakdown_scratch = breakdown;
    }

    fn create_table(
        &mut self,
        name: &str,
        columns: &[(String, crate::types::DataType)],
        primary_key: &[String],
    ) -> Result<(), DbError> {
        let schema = Schema {
            columns: columns
                .iter()
                .map(|(n, t)| crate::types::ColumnDef {
                    name: n.clone(),
                    dtype: *t,
                })
                .collect(),
        };
        let pk_cols: Vec<usize> = primary_key
            .iter()
            .map(|c| {
                schema
                    .column_index(c)
                    .ok_or_else(|| DbError::Plan(PlanError::NoSuchColumn(c.clone())))
            })
            .collect::<Result<_, _>>()?;
        let id = self
            .catalog
            .create_table(name, schema.clone(), pk_cols.clone())
            .map_err(DbError::Catalog)?;
        self.tables.push(VersionedTable::new(schema));
        debug_assert_eq!(self.tables.len() - 1, id.0 as usize);
        if !pk_cols.is_empty() {
            self.create_index(&format!("{name}_pkey"), id, pk_cols, IndexKind::BTree, true)?;
        }
        Ok(())
    }

    fn create_index(
        &mut self,
        name: &str,
        table: crate::catalog::TableId,
        columns: Vec<usize>,
        kind: IndexKind,
        unique: bool,
    ) -> Result<(), DbError> {
        let id = self
            .catalog
            .create_index(name, table, columns.clone(), kind, unique)
            .map_err(DbError::Catalog)?;
        let mut index = Index::new(kind);
        // Backfill from the latest visible versions.
        let read_ts = self.txns.oldest_read_ts().max(u64::MAX >> 1); // latest snapshot
        let t = &self.tables[table.0 as usize];
        for slot in t.scan_slots() {
            if let Some(row) = t.read(slot, read_ts, 0) {
                index.insert(key_from_row(row, &columns), slot);
            }
        }
        self.indexes.push(index);
        debug_assert_eq!(self.indexes.len() - 1, id.0 as usize);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Networking layer (simulated pgwire)
    // ------------------------------------------------------------------

    /// Execute a prepared statement as a *client request*: the session
    /// task reads the request from its socket (NETWORK_READ OU), executes,
    /// and writes the response (NETWORK_WRITE OU). Context switches at the
    /// blocking socket boundaries pay the PMU tax under User-Continuous
    /// collection (§6.2).
    pub fn client_request(
        &mut self,
        sid: SessionId,
        stmt: StatementId,
        params: &[Value],
    ) -> Result<ExecOutcome, DbError> {
        let task = self.sessions[sid.0].task;
        let _root = self.kernel.profile_frame(task, "dbms", true);
        let pmu_tax = self
            .ts
            .as_ref()
            .map(tscout::TScout::pmu_cs_tax)
            .unwrap_or(false);
        let req_start_ns = self.kernel.now(task);
        let req_bytes = (32 + params.iter().map(Value::byte_size).sum::<usize>()) as u64;

        // NETWORK_READ: the request arrives.
        self.kernel.context_switch(task, pmu_tax);
        let feats = vec![req_bytes, 1];
        {
            let _ou = self.kernel.profile_frame(task, "ou:network_read", false);
            if let (Some(ts), Some(ous)) = (self.ts.as_mut(), self.ous.as_ref()) {
                ts.ou_begin(&mut self.kernel, task, ous.id(EngineOu::NetworkRead));
            }
            self.kernel.net_recv(task, req_bytes);
            let w = work_for(EngineOu::NetworkRead, &feats);
            self.kernel.charge_cpu(task, w.instructions, w.ws_bytes);
            if let (Some(ts), Some(ous)) = (self.ts.as_mut(), self.ous.as_ref()) {
                let id = ous.id(EngineOu::NetworkRead);
                ts.ou_end(&mut self.kernel, task, id);
                ts.ou_features(&mut self.kernel, task, id, &feats, &[w.mem_bytes]);
            }
        }

        let result = self.execute_prepared(sid, stmt, params);

        // NETWORK_WRITE: ship the response (errors ship a small packet too).
        let resp_bytes = match &result {
            Ok(o) => (64 + o.rows.iter().map(row_bytes).sum::<usize>()) as u64,
            Err(_) => 64,
        };
        let feats = vec![resp_bytes, 1];
        {
            let _ou = self.kernel.profile_frame(task, "ou:network_write", false);
            if let (Some(ts), Some(ous)) = (self.ts.as_mut(), self.ous.as_ref()) {
                ts.ou_begin(&mut self.kernel, task, ous.id(EngineOu::NetworkWrite));
            }
            self.kernel.net_send(task, resp_bytes);
            let w = work_for(EngineOu::NetworkWrite, &feats);
            self.kernel.charge_cpu(task, w.instructions, w.ws_bytes);
            if let (Some(ts), Some(ous)) = (self.ts.as_mut(), self.ous.as_ref()) {
                let id = ous.id(EngineOu::NetworkWrite);
                ts.ou_end(&mut self.kernel, task, id);
                ts.ou_features(&mut self.kernel, task, id, &feats, &[w.mem_bytes]);
            }
        }
        self.kernel.context_switch(task, pmu_tax);
        let dur = self.kernel.now(task) - req_start_ns;
        self.kernel
            .telemetry
            .counter_inc("db_client_requests_total", &[]);
        self.kernel
            .telemetry
            .hist_record("db_client_request_ns", &[], dur);
        self.kernel
            .telemetry
            .span("client_request", "db", req_start_ns, dur);
        result
    }

    // ------------------------------------------------------------------
    // Background tasks
    // ------------------------------------------------------------------

    /// Pump the WAL (log serializer + disk writer) to `until_ns`.
    pub fn pump_wal(&mut self, until_ns: f64) -> usize {
        self.wal.pump(
            &mut self.kernel,
            self.ts.as_mut(),
            self.ous.as_ref(),
            until_ns,
        )
    }

    /// One GC sweep over all tables (GC_SWEEP OU). Returns versions pruned.
    pub fn run_gc(&mut self) -> u64 {
        let _root = self.kernel.profile_frame(self.gc_task, "dbms", true);
        let _ou = self
            .kernel
            .profile_frame(self.gc_task, "ou:gc_sweep", false);
        let oldest = self.txns.oldest_read_ts();
        if let (Some(ts), Some(ous)) = (self.ts.as_mut(), self.ous.as_ref()) {
            ts.ou_begin(&mut self.kernel, self.gc_task, ous.id(EngineOu::GcSweep));
        }
        let mut pruned = 0u64;
        for (t_idx, table) in self.tables.iter_mut().enumerate() {
            let n = table.num_slots();
            for s in 0..n {
                let slot = crate::storage::SlotId(s as u64);
                let (p, freed_row) = table.gc_slot_with_row(slot, oldest);
                pruned += p as u64;
                if let Some(row) = freed_row {
                    for im in self
                        .catalog
                        .table_indexes(crate::catalog::TableId(t_idx as u32))
                    {
                        let key = key_from_row(&row, &im.columns);
                        self.indexes[im.id.0 as usize].remove(&key, slot);
                    }
                }
            }
        }
        let feats = vec![pruned];
        let w = work_for(EngineOu::GcSweep, &feats);
        self.kernel
            .charge_cpu(self.gc_task, w.instructions, w.ws_bytes);
        if let (Some(ts), Some(ous)) = (self.ts.as_mut(), self.ous.as_ref()) {
            let id = ous.id(EngineOu::GcSweep);
            ts.ou_end(&mut self.kernel, self.gc_task, id);
            ts.ou_features(&mut self.kernel, self.gc_task, id, &feats, &[0]);
        }
        self.gc_pruned += pruned;
        self.kernel.telemetry.counter_inc("db_gc_sweeps_total", &[]);
        self.kernel
            .telemetry
            .counter_add("db_gc_pruned_total", &[], pruned);
        pruned
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn table_live_tuples(&self, name: &str) -> Option<u64> {
        self.catalog
            .table_by_name(name)
            .map(|m| self.tables[m.id.0 as usize].live_tuples())
    }

    pub fn committed_txns(&self) -> u64 {
        self.txns.committed
    }

    pub fn aborted_txns(&self) -> u64 {
        self.txns.aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscout::{CollectionMode, ProbeSet, Subsystem};
    use tscout_kernel::HardwareProfile;

    fn db() -> (Database, SessionId) {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 11);
        k.noise_frac = 0.0;
        let mut db = Database::new(k);
        let sid = db.create_session();
        db.execute(
            sid,
            "CREATE TABLE acct (id INT PRIMARY KEY, branch INT, bal FLOAT)",
            &[],
        )
        .unwrap();
        db.execute(sid, "CREATE INDEX acct_branch ON acct (branch)", &[])
            .unwrap();
        for i in 0..100 {
            db.execute(
                sid,
                "INSERT INTO acct VALUES ($1, $2, $3)",
                &[Value::Int(i), Value::Int(i % 10), Value::Float(100.0)],
            )
            .unwrap();
        }
        (db, sid)
    }

    #[test]
    fn point_select_via_pk() {
        let (mut db, sid) = db();
        let out = db
            .execute(sid, "SELECT bal FROM acct WHERE id = $1", &[Value::Int(42)])
            .unwrap();
        assert_eq!(out.rows, vec![vec![Value::Float(100.0)]]);
    }

    #[test]
    fn secondary_index_and_filter() {
        let (mut db, sid) = db();
        let out = db
            .execute(sid, "SELECT id FROM acct WHERE branch = 3 AND id > 50", &[])
            .unwrap();
        assert_eq!(out.rows.len(), 5); // 53, 63, 73, 83, 93
    }

    #[test]
    fn aggregate_query() {
        let (mut db, sid) = db();
        let out = db
            .execute(
                sid,
                "SELECT branch, count(*), sum(bal) FROM acct GROUP BY branch",
                &[],
            )
            .unwrap();
        assert_eq!(out.rows.len(), 10);
        assert_eq!(out.rows[0][1], Value::Int(10));
        assert_eq!(out.rows[0][2], Value::Float(1000.0));
    }

    #[test]
    fn order_by_and_limit() {
        let (mut db, sid) = db();
        let out = db
            .execute(sid, "SELECT id FROM acct ORDER BY id DESC LIMIT 3", &[])
            .unwrap();
        let ids: Vec<i64> = out.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![99, 98, 97]);
    }

    #[test]
    fn update_and_read_back() {
        let (mut db, sid) = db();
        let out = db
            .execute(
                sid,
                "UPDATE acct SET bal = bal + $1 WHERE id = $2",
                &[Value::Float(50.0), Value::Int(7)],
            )
            .unwrap();
        assert_eq!(out.rows_affected, 1);
        let out = db
            .execute(sid, "SELECT bal FROM acct WHERE id = 7", &[])
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Float(150.0));
    }

    #[test]
    fn delete_and_gc() {
        let (mut db, sid) = db();
        db.execute(sid, "DELETE FROM acct WHERE branch = 0", &[])
            .unwrap();
        let out = db.execute(sid, "SELECT count(*) FROM acct", &[]).unwrap();
        assert_eq!(out.rows[0][0], Value::Int(90));
        let pruned = db.run_gc();
        assert!(pruned >= 10, "deleted rows should be collected: {pruned}");
        // Index entries for collected slots are gone; queries still work.
        let out = db
            .execute(sid, "SELECT count(*) FROM acct WHERE branch = 0", &[])
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(0));
    }

    #[test]
    fn explicit_transaction_rollback() {
        let (mut db, sid) = db();
        db.execute(sid, "BEGIN", &[]).unwrap();
        db.execute(sid, "UPDATE acct SET bal = 0.0 WHERE id = 1", &[])
            .unwrap();
        db.execute(sid, "ROLLBACK", &[]).unwrap();
        let out = db
            .execute(sid, "SELECT bal FROM acct WHERE id = 1", &[])
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Float(100.0));
    }

    #[test]
    fn snapshot_isolation_across_sessions() {
        let (mut db, s1) = db();
        let s2 = db.create_session();
        db.execute(s1, "BEGIN", &[]).unwrap();
        // s1 opened its snapshot; now s2 commits an update.
        db.execute(s2, "UPDATE acct SET bal = 999.0 WHERE id = 5", &[])
            .unwrap();
        // s1 still sees the old value.
        let out = db
            .execute(s1, "SELECT bal FROM acct WHERE id = 5", &[])
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Float(100.0));
        db.execute(s1, "COMMIT", &[]).unwrap();
        let out = db
            .execute(s1, "SELECT bal FROM acct WHERE id = 5", &[])
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Float(999.0));
    }

    #[test]
    fn write_write_conflict_aborts() {
        let (mut db, s1) = db();
        let s2 = db.create_session();
        db.execute(s1, "BEGIN", &[]).unwrap();
        db.execute(s2, "BEGIN", &[]).unwrap();
        db.execute(s1, "UPDATE acct SET bal = 1.0 WHERE id = 9", &[])
            .unwrap();
        let err = db.execute(s2, "UPDATE acct SET bal = 2.0 WHERE id = 9", &[]);
        assert!(matches!(err, Err(DbError::Aborted(ExecError::Conflict))));
        assert!(!db.in_txn(s2), "conflicting txn rolled back");
        db.execute(s1, "COMMIT", &[]).unwrap();
        let out = db
            .execute(s1, "SELECT bal FROM acct WHERE id = 9", &[])
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Float(1.0));
    }

    #[test]
    fn unique_violation_aborts() {
        let (mut db, sid) = db();
        let err = db.execute(sid, "INSERT INTO acct VALUES (5, 1, 0.0)", &[]);
        assert!(matches!(
            err,
            Err(DbError::Aborted(ExecError::UniqueViolation(_)))
        ));
        // The table is unchanged.
        let out = db.execute(sid, "SELECT count(*) FROM acct", &[]).unwrap();
        assert_eq!(out.rows[0][0], Value::Int(100));
    }

    #[test]
    fn join_query() {
        let (mut db, sid) = db();
        db.execute(
            sid,
            "CREATE TABLE tx (tid INT PRIMARY KEY, acct INT, amt FLOAT)",
            &[],
        )
        .unwrap();
        for i in 0..20 {
            db.execute(
                sid,
                "INSERT INTO tx VALUES ($1, $2, $3)",
                &[Value::Int(i), Value::Int(i % 5), Value::Float(i as f64)],
            )
            .unwrap();
        }
        let out = db
            .execute(
                sid,
                "SELECT a.id, t.amt FROM acct a JOIN tx t ON a.id = t.acct WHERE a.id = 2",
                &[],
            )
            .unwrap();
        assert_eq!(out.rows.len(), 4); // tx 2, 7, 12, 17
    }

    #[test]
    fn prepared_statements_and_client_requests() {
        let (mut db, sid) = db();
        let q = db.prepare("SELECT bal FROM acct WHERE id = $1").unwrap();
        let out = db.client_request(sid, q, &[Value::Int(3)]).unwrap();
        assert_eq!(out.rows.len(), 1);
        // Network stats got charged to the session task.
        let tcp = db.kernel.task(db.session_task(sid)).tcp;
        assert!(tcp.bytes_sent > 0 && tcp.bytes_received > 0);
    }

    #[test]
    fn wal_receives_commit_records_and_flushes() {
        let (mut db, sid) = db();
        assert!(db.wal.pending() > 0 || db.wal.flushed_records > 0);
        db.execute(sid, "UPDATE acct SET bal = 1.0 WHERE id = 1", &[])
            .unwrap();
        let pending = db.wal.pending();
        assert!(pending > 0);
        let horizon = db.now(sid) + 1e9;
        db.pump_wal(horizon);
        assert_eq!(db.wal.pending(), 0);
        assert!(db.wal.flushed_batches > 0);
        assert!(
            db.wal.flushed_records as usize >= pending,
            "all pending records flushed"
        );
    }

    #[test]
    fn collection_end_to_end_with_tscout() {
        let (mut db, sid) = db();
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.enable_all_subsystems();
        db.attach_tscout(cfg).unwrap();
        {
            let ts = db.tscout_mut().unwrap();
            for s in tscout::ALL_SUBSYSTEMS {
                ts.set_sampling_rate(s, 100);
            }
        }
        let q = db.prepare("SELECT bal FROM acct WHERE id = $1").unwrap();
        let u = db
            .prepare("UPDATE acct SET bal = bal + 1.0 WHERE id = $1")
            .unwrap();
        for i in 0..10 {
            db.client_request(sid, q, &[Value::Int(i)]).unwrap();
            db.client_request(sid, u, &[Value::Int(i)]).unwrap();
        }
        let horizon = db.now(sid) + 1e9;
        db.pump_wal(horizon);
        db.run_gc();
        let ts = db.tscout_mut().unwrap();
        assert_eq!(ts.stats.state_machine_errors, 0);
        let pts = ts.drain_decoded();
        let subs: std::collections::HashSet<_> = pts.iter().map(|p| p.subsystem).collect();
        assert!(subs.contains(&Subsystem::ExecutionEngine));
        assert!(subs.contains(&Subsystem::Networking));
        assert!(subs.contains(&Subsystem::LogSerializer));
        assert!(subs.contains(&Subsystem::DiskWriter));
        assert!(subs.contains(&Subsystem::Transactions));
        // Nested markers: UPDATE wraps its scan.
        assert!(pts.iter().any(|p| p.ou_name == "update"));
        assert!(pts.iter().any(|p| p.ou_name == "idx_lookup"));
    }

    #[test]
    fn virtual_stat_tables_query_live_telemetry() {
        let (mut db, sid) = db();
        // Feed the drift detector directly through the kernel's handle —
        // the same path the Processor uses.
        for i in 0..300 {
            db.kernel.telemetry.observe_ou_sample(
                "seq_scan",
                "execution_engine",
                1_000.0 + (i % 7) as f64,
                3.0,
            );
        }
        db.kernel.telemetry.observability_tick(1e9);

        let out = db
            .execute(sid, "SELECT ou, subsystem, health FROM ts_stat_ou", &[])
            .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Text("seq_scan".into()));
        assert_eq!(out.rows[0][1], Value::Text("execution_engine".into()));
        assert_eq!(out.rows[0][2], Value::Text("OK".into()));

        // Filters, aggregation, and ORDER BY compose over virtual scans.
        let out = db
            .execute(
                sid,
                "SELECT count(*) FROM ts_stat_ou WHERE drift_score > 0.99",
                &[],
            )
            .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(0));
        let out = db
            .execute(
                sid,
                "SELECT subsystem FROM ts_stat_subsystem ORDER BY subsystem",
                &[],
            )
            .unwrap();
        assert!(!out.rows.is_empty());
        let out = db
            .execute(sid, "SELECT generation FROM ts_stat_model", &[])
            .unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(0)]]);

        // The scan was accounted for.
        assert!(
            db.kernel
                .telemetry
                .counter_value("db_virtual_scans_total", &[("table", "ts_stat_ou")])
                >= 2
        );

        // EXPLAIN renders the virtual operator without executing it.
        let out = db
            .execute(
                sid,
                "EXPLAIN SELECT * FROM ts_alerts WHERE value > 1.0",
                &[],
            )
            .unwrap();
        let text: Vec<String> = out
            .rows
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert!(
            text.iter().any(|l| l.contains("VirtualScan on ts_alerts")),
            "{text:?}"
        );
    }

    #[test]
    fn fused_mode_emits_pipeline_samples() {
        let (mut db, sid) = db();
        db.mode = EngineMode::Fused;
        let mut cfg = TsConfig::new(CollectionMode::KernelContinuous);
        cfg.enable_subsystem(Subsystem::ExecutionEngine, ProbeSet::cpu_only());
        db.attach_tscout(cfg).unwrap();
        db.tscout_mut()
            .unwrap()
            .set_sampling_rate(Subsystem::ExecutionEngine, 100);
        db.execute(sid, "SELECT bal FROM acct WHERE id = 1", &[])
            .unwrap();
        let pts = db.tscout_mut().unwrap().drain_decoded();
        // The pipeline sample was de-aggregated into per-OU points.
        assert!(pts.len() >= 2, "expected idx_lookup + output, got {pts:?}");
        assert!(pts.iter().any(|p| p.ou_name == "idx_lookup"));
        assert!(pts.iter().any(|p| p.ou_name == "output"));
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use tscout_kernel::HardwareProfile;

    fn db() -> (Database, SessionId) {
        let mut db = Database::new(Kernel::with_seed(HardwareProfile::server_2x20(), 1));
        let sid = db.create_session();
        db.execute(
            sid,
            "CREATE TABLE t (id INT PRIMARY KEY, b INT, v FLOAT)",
            &[],
        )
        .unwrap();
        db.execute(sid, "CREATE INDEX t_b ON t (b)", &[]).unwrap();
        (db, sid)
    }

    fn lines(db: &mut Database, sid: SessionId, sql: &str) -> Vec<String> {
        db.execute(sid, sql, &[])
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect()
    }

    #[test]
    fn explain_shows_access_paths() {
        let (mut db, sid) = db();
        let out = lines(&mut db, sid, "EXPLAIN SELECT v FROM t WHERE id = $1");
        assert!(out[0].starts_with("Project"), "{out:?}");
        assert!(
            out[1].contains("IndexPointLookup on t using t_pkey"),
            "{out:?}"
        );

        let out = lines(
            &mut db,
            sid,
            "EXPLAIN SELECT * FROM t WHERE b >= 1 AND b <= 5",
        );
        assert!(out[0].contains("IndexRangeScan on t using t_b"), "{out:?}");

        let out = lines(&mut db, sid, "EXPLAIN SELECT * FROM t WHERE v > 0.0");
        assert!(out[0].contains("SeqScan on t"), "{out:?}");
        assert!(out[1].contains("Filter:"), "{out:?}");
    }

    #[test]
    fn explain_dml_and_aggregates() {
        let (mut db, sid) = db();
        let out = lines(
            &mut db,
            sid,
            "EXPLAIN UPDATE t SET v = v + 1.0 WHERE id = 3",
        );
        assert!(out[0].starts_with("Update t"), "{out:?}");
        assert!(out[1].contains("IndexPointLookup"), "{out:?}");

        let out = lines(&mut db, sid, "EXPLAIN SELECT b, count(*) FROM t GROUP BY b");
        assert!(out.iter().any(|l| l.contains("Aggregate")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("count(*)")), "{out:?}");
    }

    #[test]
    fn explain_does_not_execute() {
        let (mut db, sid) = db();
        db.execute(sid, "INSERT INTO t VALUES (1, 2, 3.0)", &[])
            .unwrap();
        db.execute(sid, "EXPLAIN DELETE FROM t", &[]).unwrap();
        assert_eq!(
            db.table_live_tuples("t"),
            Some(1),
            "EXPLAIN must not delete"
        );
    }

    fn seeded(n: i64) -> (Database, SessionId) {
        let (mut db, sid) = db();
        for i in 0..n {
            db.execute(
                sid,
                "INSERT INTO t VALUES ($1, $2, $3)",
                &[Value::Int(i), Value::Int(i % 4), Value::Float(1.0)],
            )
            .unwrap();
        }
        (db, sid)
    }

    /// Ridge fit on a constant target predicts ~that constant for any
    /// input, so two target scales give two visibly different "model
    /// generations" without running the full training pipeline.
    fn synth_live(generation: u64, target_ns: f64) -> LiveModel {
        use tscout_models::{LabeledPoint, ModelKind, OuData, OuModelSet};
        let mk = |name: &str, nf: usize| {
            let mut d = OuData::new(name);
            for i in 0..64usize {
                let mut features: Vec<f64> = (0..nf).map(|k| ((i + k) % 9) as f64).collect();
                features.push(2.5); // clock_ghz column
                features.push(1.0); // concurrency column
                d.points.push(LabeledPoint {
                    features,
                    target_ns,
                    template: 0,
                });
            }
            d
        };
        let data = vec![
            mk("idx_lookup", 3),
            mk("idx_range_scan", 2),
            mk("seq_scan", 2),
            mk("filter", 1),
            mk("output", 2),
        ];
        LiveModel {
            generation,
            trained_points: data.iter().map(tscout_models::OuData::len).sum(),
            models: std::sync::Arc::new(OuModelSet::train(ModelKind::Ridge, 1, &data)),
            holdout_mape_pct: 0.0,
        }
    }

    fn footer_predicted_ns(lines: &[String]) -> f64 {
        let footer = lines.last().unwrap();
        footer
            .split("predicted=")
            .nth(1)
            .unwrap()
            .split("ns")
            .next()
            .unwrap()
            .parse()
            .unwrap_or_else(|_| panic!("no numeric prediction in {footer:?}"))
    }

    #[test]
    fn explain_analyze_executes_and_annotates_actuals() {
        let (mut db, sid) = seeded(20);
        let out = lines(&mut db, sid, "EXPLAIN ANALYZE SELECT v FROM t WHERE id = 7");
        assert!(out[0].starts_with("Project"), "{out:?}");
        assert!(
            out[0].contains("actual=") && out[0].contains("rows=") && out[0].contains("loops="),
            "{out:?}"
        );
        // No model installed: per-node and statement predictions absent.
        assert!(out[0].contains("predicted=-"), "{out:?}");
        let footer = out.last().unwrap();
        assert!(footer.starts_with("Execution: actual="), "{out:?}");
        assert!(footer.contains("(no model installed)"), "{out:?}");
        assert_eq!(
            db.kernel
                .telemetry
                .counter_value("db_explain_analyze_total", &[]),
            1
        );

        // ANALYZE ran the statement for real: the DELETE deletes.
        db.execute(sid, "EXPLAIN ANALYZE DELETE FROM t WHERE b = 1", &[])
            .unwrap();
        assert_eq!(db.table_live_tuples("t"), Some(15), "b=1 rows are gone");
    }

    #[test]
    fn explain_analyze_predictions_follow_model_hot_swap() {
        let (mut db, sid) = seeded(50);
        db.install_live_model(Some(synth_live(1, 1_000.0)), 1.0);
        let gen1 = lines(&mut db, sid, "EXPLAIN ANALYZE SELECT v FROM t WHERE id = 7");
        assert!(
            gen1.iter()
                .any(|l| l.contains("predicted=") && !l.contains("predicted=-")),
            "{gen1:?}"
        );
        assert!(gen1.iter().any(|l| l.contains("err=")), "{gen1:?}");
        assert!(
            gen1.last().unwrap().contains("(model generation 1)"),
            "{gen1:?}"
        );

        // Hot swap: a new generation must change the predicted columns.
        db.install_live_model(Some(synth_live(2, 50_000.0)), 1.0);
        let gen2 = lines(&mut db, sid, "EXPLAIN ANALYZE SELECT v FROM t WHERE id = 7");
        assert!(
            gen2.last().unwrap().contains("(model generation 2)"),
            "{gen2:?}"
        );
        assert!(
            footer_predicted_ns(&gen2) > footer_predicted_ns(&gen1) * 5.0,
            "swap to a 50x-scale model must move predictions: {gen1:?} vs {gen2:?}"
        );

        db.install_live_model(None, 1.0);
        let off = lines(&mut db, sid, "EXPLAIN ANALYZE SELECT v FROM t WHERE id = 7");
        assert!(
            off.last().unwrap().contains("(no model installed)"),
            "{off:?}"
        );
    }

    #[test]
    fn ts_stat_statements_aggregates_by_fingerprint() {
        let (mut db, sid) = seeded(10);
        for i in 0..7 {
            db.execute(sid, "SELECT v FROM t WHERE id = $1", &[Value::Int(i)])
                .unwrap();
        }
        // Different literals, identical shape → one fingerprint.
        db.execute(sid, "SELECT v FROM t WHERE id = 3", &[])
            .unwrap();
        db.execute(sid, "SELECT v FROM t WHERE id = 4", &[])
            .unwrap();
        let out = db
            .execute(
                sid,
                "SELECT fingerprint, calls, total_ns, mean_ns, ou_ns_total \
                 FROM ts_stat_statements ORDER BY calls DESC",
                &[],
            )
            .unwrap();
        let find = |fp: &str| {
            out.rows
                .iter()
                .find(|r| r[0].as_text() == Some(fp))
                .unwrap_or_else(|| panic!("fingerprint {fp:?} missing from {:?}", out.rows))
                .clone()
        };
        let prepared = find("select v from t where (id = $1)");
        assert_eq!(prepared[1], Value::Int(7));
        let literal = find("select v from t where (id = ?)");
        assert_eq!(literal[1], Value::Int(2));
        for row in &out.rows {
            let calls = row[1].as_int().unwrap() as f64;
            let total = row[2].as_float().unwrap();
            let mean = row[3].as_float().unwrap();
            let ou_total = row[4].as_float().unwrap();
            assert!(
                (mean * calls - total).abs() < 1e-6 * total.max(1.0),
                "{row:?}"
            );
            assert!(
                ou_total <= total + 1e-6,
                "OU self time exceeds inclusive: {row:?}"
            );
        }
        // Disabled: nothing new is recorded.
        let before = db.kernel.telemetry.stmt_recorded();
        db.stmt_stats_enabled = false;
        db.execute(sid, "SELECT v FROM t WHERE id = 5", &[])
            .unwrap();
        assert_eq!(db.kernel.telemetry.stmt_recorded(), before);
    }
}
