//! # NoiseTap — a NoisePage-style DBMS substrate
//!
//! The paper integrates TScout into NoisePage, "a PostgreSQL-compatible
//! DBMS that uses HyPer-style MVCC over Apache Arrow in-memory columnar
//! data" with an OU-granular execution engine, a networking layer, and a
//! group-commit WAL (log serializer + disk writer). NoiseTap is this
//! repository's from-scratch equivalent:
//!
//! * [`storage`] — in-memory versioned tuple storage (MVCC chains);
//! * [`txn`] — snapshot transactions, first-writer-wins conflicts;
//! * [`index`] — from-scratch B+-tree and open-addressing hash indexes;
//! * [`sql`] — lexer, parser, and planner for the workloads' dialect;
//! * [`exec`] — the OU-granular execution engine with per-operator or
//!   fused-pipeline TScout markers (paper §5.2);
//! * [`wal`] — group-commit log serializer + disk writer subsystems;
//! * [`engine`] — the [`engine::Database`] façade: sessions, prepared
//!   statements, simulated client networking, GC, background pumps.
//!
//! All timing is virtual: DBMS work is charged to the simulated kernel
//! (`tscout-kernel`), so experiments are deterministic and the collected
//! training data reflects a controllable ground-truth cost model.
#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod catalog;
pub mod engine;
pub mod exec;
pub mod index;
pub mod sql;
pub mod stat;
pub mod storage;
pub mod txn;
pub mod types;
pub mod wal;

pub use engine::{Database, DbError, SessionId, StatementId};
pub use exec::ou::{EngineOu, OuMap, ALL_ENGINE_OUS};
pub use exec::{EngineMode, ExecOutcome};
pub use types::{DataType, Row, Value};
