//! `pg_stat`-style virtual introspection tables over the live telemetry.
//!
//! PostgreSQL exposes its collector through `pg_stat_*` views; NoiseTap
//! does the same for the TScout observability plane. Four read-only
//! virtual tables are registered in every catalog at creation time and
//! materialize on scan from the kernel's telemetry registry — no storage,
//! no MVCC, always-current:
//!
//! * `ts_stat_ou` — one row per OU the drift detector tracks: lifetime
//!   sample counts, target-latency quantiles from the streaming sketch,
//!   PSI/KS drift scores per channel, residual MAPE, and the OU's health
//!   state;
//! * `ts_stat_subsystem` — one row per health-engine subsystem with its
//!   OK/DEGRADED/CRITICAL state and alert counts;
//! * `ts_stat_model` — a single row describing the live behavior-model
//!   generation and its accuracy gate history;
//! * `ts_alerts` — the health engine's recent alert ring, newest last;
//! * `ts_traces` — the lineage tracer's completed-trace ring: one row
//!   per sampled marker that reached a terminal outcome, with its
//!   critical stage and end-to-end latency;
//! * `ts_stat_pipeline` — one row per pipeline stage with visit counts,
//!   latency aggregates (p50/p99 from the stage histograms), the
//!   exemplar TraceId behind the worst visit, and how often the stage
//!   dominated a trace's critical path;
//! * `ts_stat_archive` — one row per OU stored in the training-data
//!   archive: samples appended/retired, blocks and bytes written, plus
//!   the archive-global segment and recovery counters on every row;
//! * `ts_stat_statements` — one row per statement fingerprint (the
//!   `pg_stat_statements` shape): call counts, total/min/max/mean actual
//!   ns, rows, the OU-attributed cost breakdown, and the rolling
//!   predicted-vs-actual MAPE against the live behavior models;
//! * `ts_actions` — the action engine's log: one row per planned action
//!   with its policy, predicted effect, and (once the observation window
//!   closes) the observed outcome and regression verdict.
//!
//! Scans run through the normal planner/executor path, so projections,
//! filters, aggregation, ORDER BY, and LIMIT all compose:
//! `SELECT ou, drift_score FROM ts_stat_ou WHERE drift_score > 0.2`.

use tscout_telemetry::{Telemetry, ALL_STAGES};

use crate::types::{DataType, Row, Schema, Value};

/// Names of all virtual tables, lowercase (the catalog's canonical form).
pub const VIRTUAL_TABLES: &[&str] = &[
    "ts_stat_ou",
    "ts_stat_subsystem",
    "ts_stat_model",
    "ts_alerts",
    "ts_traces",
    "ts_stat_pipeline",
    "ts_stat_archive",
    "ts_stat_statements",
    "ts_actions",
];

/// True if `name` refers to a virtual introspection table.
pub fn is_virtual(name: &str) -> bool {
    VIRTUAL_TABLES.iter().any(|v| v.eq_ignore_ascii_case(name))
}

/// Schema of a virtual table; `None` for unknown names.
pub fn virtual_schema(name: &str) -> Option<Schema> {
    let s = match name.to_ascii_lowercase().as_str() {
        "ts_stat_ou" => Schema::new(&[
            ("ou", DataType::Text),
            ("subsystem", DataType::Text),
            ("samples", DataType::Int),
            ("target_mean_ns", DataType::Float),
            ("target_p50_ns", DataType::Float),
            ("target_p99_ns", DataType::Float),
            ("psi_target", DataType::Float),
            ("psi_feature", DataType::Float),
            ("ks_target", DataType::Float),
            ("ks_feature", DataType::Float),
            ("drift_score", DataType::Float),
            ("residual_mape_pct", DataType::Float),
            ("health", DataType::Text),
        ]),
        "ts_stat_subsystem" => Schema::new(&[
            ("subsystem", DataType::Text),
            ("state", DataType::Text),
            ("state_code", DataType::Int),
            ("rules", DataType::Int),
            ("alerts_fired", DataType::Int),
        ]),
        "ts_stat_model" => Schema::new(&[
            ("generation", DataType::Int),
            ("holdout_mape_pct", DataType::Float),
            ("trained_points", DataType::Int),
            ("swaps_accepted", DataType::Int),
            ("swaps_rejected", DataType::Int),
        ]),
        "ts_alerts" => Schema::new(&[
            ("seq", DataType::Int),
            ("at_ns", DataType::Float),
            ("rule", DataType::Text),
            ("subsystem", DataType::Text),
            ("target", DataType::Text),
            ("from_state", DataType::Text),
            ("to_state", DataType::Text),
            ("value", DataType::Float),
            ("threshold", DataType::Float),
        ]),
        "ts_traces" => Schema::new(&[
            ("trace_id", DataType::Int),
            ("ou", DataType::Int),
            ("subsystem", DataType::Int),
            ("tid", DataType::Int),
            ("started_ns", DataType::Float),
            ("stages", DataType::Int),
            ("outcome", DataType::Text),
            ("fail_reason", DataType::Text),
            ("critical_stage", DataType::Text),
            ("critical_ns", DataType::Float),
            ("total_ns", DataType::Float),
            ("model_generation", DataType::Int),
            ("monotone", DataType::Bool),
        ]),
        "ts_stat_pipeline" => Schema::new(&[
            ("stage", DataType::Text),
            ("seq", DataType::Int),
            ("visits", DataType::Int),
            ("mean_ns", DataType::Float),
            ("p50_ns", DataType::Float),
            ("p99_ns", DataType::Float),
            ("max_ns", DataType::Float),
            ("exemplar_trace_id", DataType::Int),
            ("avg_queue_depth", DataType::Float),
            ("critical_count", DataType::Int),
        ]),
        "ts_stat_archive" => Schema::new(&[
            ("ou", DataType::Text),
            ("samples_appended", DataType::Int),
            ("samples_retired", DataType::Int),
            ("blocks", DataType::Int),
            ("bytes_written", DataType::Int),
            ("segments", DataType::Int),
            ("buffered_samples", DataType::Int),
            ("segments_sealed", DataType::Int),
            ("segments_compacted", DataType::Int),
            ("recovered_truncations", DataType::Int),
        ]),
        "ts_stat_statements" => Schema::new(&[
            ("fingerprint", DataType::Text),
            ("calls", DataType::Int),
            ("rows", DataType::Int),
            ("total_ns", DataType::Float),
            ("min_ns", DataType::Float),
            ("max_ns", DataType::Float),
            ("mean_ns", DataType::Float),
            ("ou_ns_total", DataType::Float),
            ("ou_breakdown", DataType::Text),
            ("predicted_calls", DataType::Int),
            ("mape_pct", DataType::Float),
        ]),
        "ts_actions" => Schema::new(&[
            ("id", DataType::Int),
            ("kind", DataType::Text),
            ("policy", DataType::Text),
            ("target", DataType::Text),
            ("detail", DataType::Text),
            ("state", DataType::Text),
            ("dry_run", DataType::Bool),
            ("planned_at_ns", DataType::Float),
            ("observe_at_ns", DataType::Float),
            ("metric", DataType::Text),
            ("value_before", DataType::Float),
            ("predicted", DataType::Float),
            ("observed", DataType::Float),
            ("observed_at_ns", DataType::Float),
            ("err_pct", DataType::Float),
            ("regressed", DataType::Bool),
            ("model_generation", DataType::Int),
        ]),
        _ => return None,
    };
    Some(s)
}

/// Materialize the current rows of a virtual table from the live
/// telemetry registry. Unknown names yield no rows (the planner rejects
/// them long before execution).
pub fn virtual_rows(name: &str, telemetry: &Telemetry) -> Vec<Row> {
    match name.to_ascii_lowercase().as_str() {
        "ts_stat_ou" => telemetry.with_registry(|r| {
            let mut rows: Vec<Row> = r
                .drift()
                .iter()
                .map(|(ou, d)| {
                    vec![
                        Value::Text(ou.clone()),
                        Value::Text(d.subsystem.clone()),
                        Value::Int(d.samples as i64),
                        Value::Float(d.lifetime.mean()),
                        Value::Float(d.lifetime.quantile(0.50)),
                        Value::Float(d.lifetime.quantile(0.99)),
                        Value::Float(d.target.psi()),
                        Value::Float(d.feature.psi()),
                        Value::Float(d.target.ks()),
                        Value::Float(d.feature.ks()),
                        Value::Float(d.drift_score()),
                        Value::Float(d.residual_mape_pct()),
                        Value::Text(r.health().state_for_target(ou).name().to_string()),
                    ]
                })
                .collect();
            rows.sort_by(|a, b| a[0].cmp(&b[0]));
            rows
        }),
        "ts_stat_subsystem" => telemetry.with_registry(|r| {
            r.health()
                .subsystem_states()
                .into_iter()
                .map(|(subsystem, state)| {
                    vec![
                        Value::Text(subsystem.clone()),
                        Value::Text(state.name().to_string()),
                        Value::Int(state.as_f64() as i64),
                        Value::Int(r.health().rules_for_subsystem(&subsystem) as i64),
                        Value::Int(r.health().fired_for_subsystem(&subsystem) as i64),
                    ]
                })
                .collect()
        }),
        "ts_stat_model" => telemetry.with_registry(|r| {
            vec![vec![
                Value::Int(r.gauge_value("model_generation", &[]) as i64),
                Value::Float(r.gauge_value("model_holdout_mape_pct", &[])),
                Value::Int(r.gauge_value("model_trained_points", &[]) as i64),
                Value::Int(r.counter_value("model_swap_accepted_total", &[]) as i64),
                Value::Int(r.counter_value("model_swap_rejected_total", &[]) as i64),
            ]]
        }),
        "ts_alerts" => telemetry.with_registry(|r| {
            r.health()
                .alerts()
                .map(|a| {
                    vec![
                        Value::Int(a.seq as i64),
                        Value::Float(a.at_ns),
                        Value::Text(a.rule.clone()),
                        Value::Text(a.subsystem.clone()),
                        Value::Text(a.target.clone()),
                        Value::Text(a.from.name().to_string()),
                        Value::Text(a.to.name().to_string()),
                        Value::Float(a.value),
                        Value::Float(a.threshold),
                    ]
                })
                .collect()
        }),
        "ts_traces" => telemetry.with_registry(|r| {
            r.tracer()
                .completed_iter()
                .map(|t| {
                    let crit = t.critical_stage();
                    vec![
                        Value::Int(t.id.0 as i64),
                        Value::Int(t.ou as i64),
                        Value::Int(t.subsystem as i64),
                        Value::Int(t.tid as i64),
                        Value::Float(t.started_ns),
                        Value::Int(t.stages.len() as i64),
                        t.outcome
                            .map(|o| Value::Text(o.name().to_string()))
                            .unwrap_or(Value::Null),
                        t.fail_reason
                            .as_ref()
                            .map(|f| Value::Text(f.clone()))
                            .unwrap_or(Value::Null),
                        crit.map(|(s, _)| Value::Text(s.name().to_string()))
                            .unwrap_or(Value::Null),
                        Value::Float(crit.map(|(_, d)| d).unwrap_or(0.0)),
                        Value::Float(t.total_ns()),
                        t.model_generation
                            .map(|g| Value::Int(g as i64))
                            .unwrap_or(Value::Null),
                        Value::Bool(t.timestamps_monotone()),
                    ]
                })
                .collect()
        }),
        "ts_stat_pipeline" => telemetry.with_registry(|r| {
            let aggs: std::collections::BTreeMap<_, _> = r
                .tracer()
                .stage_aggs()
                .map(|(s, a)| (s.name(), *a))
                .collect();
            ALL_STAGES
                .iter()
                .enumerate()
                .map(|(i, stage)| {
                    let a = aggs.get(stage.name()).copied().unwrap_or_default();
                    let (p50, p99) = r
                        .hist_snapshot("tscout_trace_stage_ns", &[("stage", stage.name())])
                        .map(|s| (s.p50, s.p99))
                        .unwrap_or((0.0, 0.0));
                    let n = a.count.max(1) as f64;
                    vec![
                        Value::Text(stage.name().to_string()),
                        Value::Int(i as i64),
                        Value::Int(a.count as i64),
                        Value::Float(a.total_ns / n),
                        Value::Float(p50),
                        Value::Float(p99),
                        Value::Float(a.max_ns),
                        Value::Int(a.max_id as i64),
                        Value::Float(a.queue_sum / n),
                        Value::Int(a.critical as i64),
                    ]
                })
                .collect()
        }),
        "ts_stat_archive" => telemetry.with_registry(|r| {
            // OUs are discovered from the per-OU labeled counters the
            // archive records at append/flush/retention time; the
            // archive-global columns repeat on every row so a single
            // scan answers both per-OU and whole-archive questions.
            let mut ous: Vec<String> = Vec::new();
            for name in [
                "archive_ou_samples_appended_total",
                "archive_ou_samples_retired_total",
                "archive_ou_blocks_total",
                "archive_ou_bytes_written_total",
            ] {
                for (k, _) in r.counters_named(name) {
                    if let Some((_, v)) = k.labels.iter().find(|(l, _)| l == "ou") {
                        if !ous.contains(v) {
                            ous.push(v.clone());
                        }
                    }
                }
            }
            ous.sort();
            let per_ou =
                |name: &str, ou: &str| Value::Int(r.counter_value(name, &[("ou", ou)]) as i64);
            ous.iter()
                .map(|ou| {
                    vec![
                        Value::Text(ou.clone()),
                        per_ou("archive_ou_samples_appended_total", ou),
                        per_ou("archive_ou_samples_retired_total", ou),
                        per_ou("archive_ou_blocks_total", ou),
                        per_ou("archive_ou_bytes_written_total", ou),
                        Value::Int(r.gauge_value("archive_segments", &[]) as i64),
                        Value::Int(r.gauge_value("archive_buffered_samples", &[]) as i64),
                        Value::Int(r.counter_value("archive_segments_sealed_total", &[]) as i64),
                        Value::Int(r.counter_value("archive_segments_compacted_total", &[]) as i64),
                        Value::Int(
                            r.counter_value("archive_recovered_truncations_total", &[]) as i64
                        ),
                    ]
                })
                .collect()
        }),
        "ts_stat_statements" => telemetry.with_registry(|r| {
            // Entries iterate in fingerprint order (BTreeMap), so the
            // unsorted scan output is already deterministic.
            r.stmts()
                .entries()
                .map(|e| {
                    let breakdown = e
                        .ou_ns
                        .iter()
                        .map(|(ou, ns)| format!("{ou}={ns:.0}"))
                        .collect::<Vec<_>>()
                        .join(";");
                    vec![
                        Value::Text(e.fingerprint.clone()),
                        Value::Int(e.calls as i64),
                        Value::Int(e.rows as i64),
                        Value::Float(e.total_ns),
                        Value::Float(if e.calls == 0 { 0.0 } else { e.min_ns }),
                        Value::Float(e.max_ns),
                        Value::Float(e.mean_ns()),
                        Value::Float(e.ou_ns_total()),
                        Value::Text(breakdown),
                        Value::Int(e.predicted_calls as i64),
                        Value::Float(e.mape_pct()),
                    ]
                })
                .collect()
        }),
        "ts_actions" => telemetry.with_registry(|r| {
            // The action log iterates oldest-first; pending actions
            // carry NULL observed columns until their follow-up closes.
            r.actions()
                .iter()
                .map(|a| {
                    vec![
                        Value::Int(a.id as i64),
                        Value::Text(a.kind.clone()),
                        Value::Text(a.policy.clone()),
                        Value::Text(a.target.clone()),
                        Value::Text(a.detail.clone()),
                        Value::Text(a.state.name().to_string()),
                        Value::Bool(a.dry_run),
                        Value::Float(a.planned_at_ns),
                        Value::Float(a.observe_at_ns),
                        Value::Text(a.metric.clone()),
                        Value::Float(a.value_before),
                        Value::Float(a.predicted),
                        a.observed.map(Value::Float).unwrap_or(Value::Null),
                        a.observed_at_ns.map(Value::Float).unwrap_or(Value::Null),
                        a.err_pct.map(Value::Float).unwrap_or(Value::Null),
                        Value::Bool(a.regressed),
                        Value::Int(a.model_generation as i64),
                    ]
                })
                .collect()
        }),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_virtual_table_has_a_schema() {
        for name in VIRTUAL_TABLES {
            assert!(is_virtual(name));
            assert!(is_virtual(&name.to_uppercase()));
            let s = virtual_schema(name).unwrap();
            assert!(!s.is_empty());
        }
        assert!(!is_virtual("acct"));
        assert!(virtual_schema("acct").is_none());
    }

    #[test]
    fn rows_match_schema_width_and_registry_content() {
        let t = Telemetry::new();
        t.observe_ou_sample("seq_scan", "execution_engine", 1_000.0, 3.0);
        t.observe_ou_sample("seq_scan", "execution_engine", 2_000.0, 4.0);
        t.stmt_record(
            "select v from t where (id = ?)",
            5_000.0,
            1,
            &[("idx_lookup", 3_000.0), ("output", 500.0)],
            Some(4_200.0),
        );
        t.observability_tick(1e9);
        for name in VIRTUAL_TABLES {
            let schema = virtual_schema(name).unwrap();
            for row in virtual_rows(name, &t) {
                assert_eq!(row.len(), schema.len(), "width mismatch in {name}");
            }
        }
        let ou_rows = virtual_rows("ts_stat_ou", &t);
        assert_eq!(ou_rows.len(), 1);
        assert_eq!(ou_rows[0][0], Value::Text("seq_scan".into()));
        assert_eq!(ou_rows[0][2], Value::Int(2));
        // One row per default-rule subsystem, states all OK at rest.
        let sub_rows = virtual_rows("ts_stat_subsystem", &t);
        assert!(!sub_rows.is_empty());
        assert!(sub_rows.iter().all(|r| r[1] == Value::Text("OK".into())));
        // The model table always has exactly one row.
        assert_eq!(virtual_rows("ts_stat_model", &t).len(), 1);
        // Statement stats surface the recorded fingerprint with its
        // OU breakdown rendered as `ou=ns` pairs.
        let stmt_rows = virtual_rows("ts_stat_statements", &t);
        assert_eq!(stmt_rows.len(), 1);
        assert_eq!(
            stmt_rows[0][0],
            Value::Text("select v from t where (id = ?)".into())
        );
        assert_eq!(stmt_rows[0][1], Value::Int(1));
        assert_eq!(stmt_rows[0][3], Value::Float(5_000.0));
        assert_eq!(stmt_rows[0][7], Value::Float(3_500.0));
        assert_eq!(
            stmt_rows[0][8],
            Value::Text("idx_lookup=3000;output=500".into())
        );
        assert!(virtual_rows("nope", &t).is_empty());
    }

    #[test]
    fn trace_tables_materialize_from_tracer_state() {
        let t = Telemetry::new();
        t.trace_set_every(1);
        let id = t.trace_begin(7, 2, 42, 100.0).unwrap();
        t.trace_publish(id, 200.0, 3);
        assert!(t.trace_consume(7, 42, 300.0, 350.0, 400.0, 2, true));
        let rows = virtual_rows("ts_traces", &t);
        assert_eq!(rows.len(), 1);
        let schema = virtual_schema("ts_traces").unwrap();
        assert_eq!(rows[0].len(), schema.len());
        assert_eq!(rows[0][0], Value::Int(id.0 as i64));
        assert_eq!(rows[0][6], Value::Text("delivered".into()));
        assert_eq!(rows[0][12], Value::Bool(true));
        // The pipeline table always lists every stage, visited or not.
        let pipe = virtual_rows("ts_stat_pipeline", &t);
        assert_eq!(pipe.len(), tscout_telemetry::ALL_STAGES.len());
        let marker = &pipe[0];
        assert_eq!(marker[0], Value::Text("marker".into()));
        assert_eq!(marker[2], Value::Int(1), "one visit through marker");
    }

    #[test]
    fn actions_table_reconciles_with_the_in_memory_log() {
        use tscout_telemetry::{ActionRecord, ActionState};
        let t = Telemetry::new();
        assert!(virtual_rows("ts_actions", &t).is_empty());
        let id = t.action_append(ActionRecord {
            id: 0,
            kind: "trigger_retrain".into(),
            policy: "retrain_on_drift".into(),
            target: "data".into(),
            detail: "test".into(),
            state: ActionState::Pending,
            dry_run: false,
            planned_at_ns: 1e6,
            observe_at_ns: 41e6,
            metric: "ts_health_state{subsystem=\"data\"}".into(),
            value_before: 2.0,
            predicted: 0.0,
            observed: None,
            observed_at_ns: None,
            err_pct: None,
            regressed: false,
            model_generation: 3,
        });
        let rows = virtual_rows("ts_actions", &t);
        assert_eq!(rows.len(), 1);
        let schema = virtual_schema("ts_actions").unwrap();
        assert_eq!(rows[0].len(), schema.len());
        assert_eq!(rows[0][0], Value::Int(id as i64));
        assert_eq!(rows[0][5], Value::Text("pending".into()));
        assert_eq!(rows[0][12], Value::Null, "observed NULL while pending");
        // Close the follow-up: the row flips to observed with values.
        t.action_observe(id, 0.0, 45e6, 0.0, false);
        let rows = virtual_rows("ts_actions", &t);
        assert_eq!(rows[0][5], Value::Text("observed".into()));
        assert_eq!(rows[0][12], Value::Float(0.0));
        assert_eq!(rows[0][15], Value::Bool(false));
        assert_eq!(rows[0][16], Value::Int(3));
    }

    #[test]
    fn archive_table_rows_per_ou_with_global_columns() {
        let t = Telemetry::new();
        assert!(virtual_rows("ts_stat_archive", &t).is_empty());
        t.counter_add("archive_ou_samples_appended_total", &[("ou", "scan")], 5);
        t.counter_add("archive_ou_blocks_total", &[("ou", "scan")], 1);
        t.counter_add("archive_ou_samples_appended_total", &[("ou", "probe")], 2);
        t.counter_add("archive_segments_sealed_total", &[], 3);
        t.gauge_set("archive_segments", &[], 4.0);
        let rows = virtual_rows("ts_stat_archive", &t);
        assert_eq!(rows.len(), 2, "one row per OU");
        // Sorted by OU name; global columns repeat on every row.
        assert_eq!(rows[0][0], Value::Text("probe".into()));
        assert_eq!(rows[1][0], Value::Text("scan".into()));
        assert_eq!(rows[1][1], Value::Int(5));
        assert_eq!(rows[1][3], Value::Int(1));
        for row in &rows {
            assert_eq!(row[5], Value::Int(4));
            assert_eq!(row[7], Value::Int(3));
        }
    }
}
