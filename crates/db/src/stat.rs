//! `pg_stat`-style virtual introspection tables over the live telemetry.
//!
//! PostgreSQL exposes its collector through `pg_stat_*` views; NoiseTap
//! does the same for the TScout observability plane. Four read-only
//! virtual tables are registered in every catalog at creation time and
//! materialize on scan from the kernel's telemetry registry — no storage,
//! no MVCC, always-current:
//!
//! * `ts_stat_ou` — one row per OU the drift detector tracks: lifetime
//!   sample counts, target-latency quantiles from the streaming sketch,
//!   PSI/KS drift scores per channel, residual MAPE, and the OU's health
//!   state;
//! * `ts_stat_subsystem` — one row per health-engine subsystem with its
//!   OK/DEGRADED/CRITICAL state and alert counts;
//! * `ts_stat_model` — a single row describing the live behavior-model
//!   generation and its accuracy gate history;
//! * `ts_alerts` — the health engine's recent alert ring, newest last.
//!
//! Scans run through the normal planner/executor path, so projections,
//! filters, aggregation, ORDER BY, and LIMIT all compose:
//! `SELECT ou, drift_score FROM ts_stat_ou WHERE drift_score > 0.2`.

use tscout_telemetry::Telemetry;

use crate::types::{DataType, Row, Schema, Value};

/// Names of all virtual tables, lowercase (the catalog's canonical form).
pub const VIRTUAL_TABLES: &[&str] = &[
    "ts_stat_ou",
    "ts_stat_subsystem",
    "ts_stat_model",
    "ts_alerts",
];

/// True if `name` refers to a virtual introspection table.
pub fn is_virtual(name: &str) -> bool {
    VIRTUAL_TABLES.iter().any(|v| v.eq_ignore_ascii_case(name))
}

/// Schema of a virtual table; `None` for unknown names.
pub fn virtual_schema(name: &str) -> Option<Schema> {
    let s = match name.to_ascii_lowercase().as_str() {
        "ts_stat_ou" => Schema::new(&[
            ("ou", DataType::Text),
            ("subsystem", DataType::Text),
            ("samples", DataType::Int),
            ("target_mean_ns", DataType::Float),
            ("target_p50_ns", DataType::Float),
            ("target_p99_ns", DataType::Float),
            ("psi_target", DataType::Float),
            ("psi_feature", DataType::Float),
            ("ks_target", DataType::Float),
            ("ks_feature", DataType::Float),
            ("drift_score", DataType::Float),
            ("residual_mape_pct", DataType::Float),
            ("health", DataType::Text),
        ]),
        "ts_stat_subsystem" => Schema::new(&[
            ("subsystem", DataType::Text),
            ("state", DataType::Text),
            ("state_code", DataType::Int),
            ("rules", DataType::Int),
            ("alerts_fired", DataType::Int),
        ]),
        "ts_stat_model" => Schema::new(&[
            ("generation", DataType::Int),
            ("holdout_mape_pct", DataType::Float),
            ("trained_points", DataType::Int),
            ("swaps_accepted", DataType::Int),
            ("swaps_rejected", DataType::Int),
        ]),
        "ts_alerts" => Schema::new(&[
            ("seq", DataType::Int),
            ("at_ns", DataType::Float),
            ("rule", DataType::Text),
            ("subsystem", DataType::Text),
            ("target", DataType::Text),
            ("from_state", DataType::Text),
            ("to_state", DataType::Text),
            ("value", DataType::Float),
            ("threshold", DataType::Float),
        ]),
        _ => return None,
    };
    Some(s)
}

/// Materialize the current rows of a virtual table from the live
/// telemetry registry. Unknown names yield no rows (the planner rejects
/// them long before execution).
pub fn virtual_rows(name: &str, telemetry: &Telemetry) -> Vec<Row> {
    match name.to_ascii_lowercase().as_str() {
        "ts_stat_ou" => telemetry.with_registry(|r| {
            let mut rows: Vec<Row> = r
                .drift()
                .iter()
                .map(|(ou, d)| {
                    vec![
                        Value::Text(ou.clone()),
                        Value::Text(d.subsystem.clone()),
                        Value::Int(d.samples as i64),
                        Value::Float(d.lifetime.mean()),
                        Value::Float(d.lifetime.quantile(0.50)),
                        Value::Float(d.lifetime.quantile(0.99)),
                        Value::Float(d.target.psi()),
                        Value::Float(d.feature.psi()),
                        Value::Float(d.target.ks()),
                        Value::Float(d.feature.ks()),
                        Value::Float(d.drift_score()),
                        Value::Float(d.residual_mape_pct()),
                        Value::Text(r.health().state_for_target(ou).name().to_string()),
                    ]
                })
                .collect();
            rows.sort_by(|a, b| a[0].cmp(&b[0]));
            rows
        }),
        "ts_stat_subsystem" => telemetry.with_registry(|r| {
            r.health()
                .subsystem_states()
                .into_iter()
                .map(|(subsystem, state)| {
                    vec![
                        Value::Text(subsystem.clone()),
                        Value::Text(state.name().to_string()),
                        Value::Int(state.as_f64() as i64),
                        Value::Int(r.health().rules_for_subsystem(&subsystem) as i64),
                        Value::Int(r.health().fired_for_subsystem(&subsystem) as i64),
                    ]
                })
                .collect()
        }),
        "ts_stat_model" => telemetry.with_registry(|r| {
            vec![vec![
                Value::Int(r.gauge_value("model_generation", &[]) as i64),
                Value::Float(r.gauge_value("model_holdout_mape_pct", &[])),
                Value::Int(r.gauge_value("model_trained_points", &[]) as i64),
                Value::Int(r.counter_value("model_swap_accepted_total", &[]) as i64),
                Value::Int(r.counter_value("model_swap_rejected_total", &[]) as i64),
            ]]
        }),
        "ts_alerts" => telemetry.with_registry(|r| {
            r.health()
                .alerts()
                .map(|a| {
                    vec![
                        Value::Int(a.seq as i64),
                        Value::Float(a.at_ns),
                        Value::Text(a.rule.clone()),
                        Value::Text(a.subsystem.clone()),
                        Value::Text(a.target.clone()),
                        Value::Text(a.from.name().to_string()),
                        Value::Text(a.to.name().to_string()),
                        Value::Float(a.value),
                        Value::Float(a.threshold),
                    ]
                })
                .collect()
        }),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_virtual_table_has_a_schema() {
        for name in VIRTUAL_TABLES {
            assert!(is_virtual(name));
            assert!(is_virtual(&name.to_uppercase()));
            let s = virtual_schema(name).unwrap();
            assert!(!s.is_empty());
        }
        assert!(!is_virtual("acct"));
        assert!(virtual_schema("acct").is_none());
    }

    #[test]
    fn rows_match_schema_width_and_registry_content() {
        let t = Telemetry::new();
        t.observe_ou_sample("seq_scan", "execution_engine", 1_000.0, 3.0);
        t.observe_ou_sample("seq_scan", "execution_engine", 2_000.0, 4.0);
        t.observability_tick(1e9);
        for name in VIRTUAL_TABLES {
            let schema = virtual_schema(name).unwrap();
            for row in virtual_rows(name, &t) {
                assert_eq!(row.len(), schema.len(), "width mismatch in {name}");
            }
        }
        let ou_rows = virtual_rows("ts_stat_ou", &t);
        assert_eq!(ou_rows.len(), 1);
        assert_eq!(ou_rows[0][0], Value::Text("seq_scan".into()));
        assert_eq!(ou_rows[0][2], Value::Int(2));
        // One row per default-rule subsystem, states all OK at rest.
        let sub_rows = virtual_rows("ts_stat_subsystem", &t);
        assert!(!sub_rows.is_empty());
        assert!(sub_rows.iter().all(|r| r[1] == Value::Text("OK".into())));
        // The model table always has exactly one row.
        assert_eq!(virtual_rows("ts_stat_model", &t).len(), 1);
        assert!(virtual_rows("nope", &t).is_empty());
    }
}
