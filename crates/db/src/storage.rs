//! In-memory versioned storage: HyPer-style MVCC version chains
//! (paper §6: NoisePage "uses HyPer-style MVCC [38] over Apache Arrow
//! in-memory columnar data").
//!
//! Each tuple slot holds a newest-first chain of [`Version`]s. A version's
//! `begin`/`end` fields hold either a commit timestamp or a *transaction
//! marker* (`TXN_BIT | txn_id`) while the writing transaction is still in
//! flight. Readers resolve visibility against their snapshot timestamp;
//! write-write conflicts are detected at update time (first-writer-wins).
//!
//! The Arrow columnar layout of NoisePage is simplified to row-structured
//! blocks here — the physical column format is orthogonal to the
//! training-data collection behaviors this reproduction measures; the
//! cost model charges scans by tuple count and byte width either way.

use crate::types::{Row, Schema};

/// High bit marks a begin/end field as an uncommitted transaction id.
pub const TXN_BIT: u64 = 1 << 63;
/// "Infinity" end timestamp: version is the live head.
pub const TS_INF: u64 = !TXN_BIT;

/// Slot identifier within a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u64);

/// One tuple version.
#[derive(Debug, Clone)]
pub struct Version {
    pub begin: u64,
    pub end: u64,
    pub row: Row,
}

impl Version {
    /// Is this version visible to a reader with snapshot `read_ts` running
    /// as transaction `me`?
    pub fn visible_to(&self, read_ts: u64, me: u64) -> bool {
        let begin_ok = if self.begin & TXN_BIT != 0 {
            self.begin == TXN_BIT | me
        } else {
            self.begin <= read_ts
        };
        let end_ok = if self.end & TXN_BIT != 0 {
            // Pending delete: invisible only to the deleter itself.
            self.end != TXN_BIT | me
        } else {
            self.end > read_ts
        };
        begin_ok && end_ok
    }
}

#[derive(Debug, Default)]
struct Slot {
    /// Newest-first version chain. Empty = free slot.
    versions: Vec<Version>,
}

/// Write-write conflict error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WwConflict;

/// A versioned table.
#[derive(Debug)]
pub struct VersionedTable {
    pub schema: Schema,
    slots: Vec<Slot>,
    free: Vec<SlotId>,
    /// Live (visible-to-someone) tuple estimate, maintained on
    /// insert/delete commit. Used by the planner and cost model.
    live_estimate: u64,
    /// Total bytes of live tuple data (cost-model working set).
    byte_estimate: u64,
}

impl VersionedTable {
    pub fn new(schema: Schema) -> Self {
        VersionedTable {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live_estimate: 0,
            byte_estimate: 0,
        }
    }

    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    pub fn live_tuples(&self) -> u64 {
        self.live_estimate
    }

    pub fn live_bytes(&self) -> u64 {
        self.byte_estimate
    }

    /// Insert a new (uncommitted) tuple for transaction `me`.
    pub fn insert(&mut self, row: Row, me: u64) -> SlotId {
        let bytes = crate::types::row_bytes(&row) as u64;
        let version = Version {
            begin: TXN_BIT | me,
            end: TS_INF,
            row,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s.0 as usize].versions = vec![version];
                s
            }
            None => {
                self.slots.push(Slot {
                    versions: vec![version],
                });
                SlotId(self.slots.len() as u64 - 1)
            }
        };
        self.live_estimate += 1;
        self.byte_estimate += bytes;
        slot
    }

    /// Snapshot read.
    pub fn read(&self, slot: SlotId, read_ts: u64, me: u64) -> Option<&Row> {
        self.slots
            .get(slot.0 as usize)?
            .versions
            .iter()
            .find(|v| v.visible_to(read_ts, me))
            .map(|v| &v.row)
    }

    /// All slots with any version (for sequential scans). The scan itself
    /// filters by visibility.
    pub fn scan_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.versions.is_empty())
            .map(|(i, _)| SlotId(i as u64))
    }

    fn head_mut(&mut self, slot: SlotId) -> Option<&mut Version> {
        self.slots.get_mut(slot.0 as usize)?.versions.first_mut()
    }

    /// Update a tuple: installs a new uncommitted version. Returns
    /// `Err(WwConflict)` when another in-flight transaction owns the head.
    pub fn update(&mut self, slot: SlotId, new_row: Row, me: u64) -> Result<(), WwConflict> {
        let new_bytes = crate::types::row_bytes(&new_row) as u64;
        let head = self.head_mut(slot).ok_or(WwConflict)?;
        if head.end != TS_INF {
            return Err(WwConflict); // deleted or delete-pending
        }
        if head.begin & TXN_BIT != 0 {
            if head.begin == TXN_BIT | me {
                // Second update by the same transaction: overwrite in place.
                let old = crate::types::row_bytes(&head.row) as u64;
                head.row = new_row;
                self.byte_estimate = self.byte_estimate + new_bytes - old;
                return Ok(());
            }
            return Err(WwConflict);
        }
        head.end = TXN_BIT | me;
        let version = Version {
            begin: TXN_BIT | me,
            end: TS_INF,
            row: new_row,
        };
        self.slots[slot.0 as usize].versions.insert(0, version);
        self.byte_estimate += new_bytes;
        Ok(())
    }

    /// Delete a tuple (marks the head's end with the transaction id).
    pub fn delete(&mut self, slot: SlotId, me: u64) -> Result<(), WwConflict> {
        let head = self.head_mut(slot).ok_or(WwConflict)?;
        if head.end != TS_INF {
            return Err(WwConflict);
        }
        if head.begin & TXN_BIT != 0 && head.begin != TXN_BIT | me {
            return Err(WwConflict);
        }
        head.end = TXN_BIT | me;
        self.live_estimate = self.live_estimate.saturating_sub(1);
        Ok(())
    }

    /// Stamp a transaction's marks on a slot with its commit timestamp.
    pub fn commit_slot(&mut self, slot: SlotId, me: u64, commit_ts: u64) {
        if let Some(s) = self.slots.get_mut(slot.0 as usize) {
            for v in &mut s.versions {
                if v.begin == TXN_BIT | me {
                    v.begin = commit_ts;
                }
                if v.end == TXN_BIT | me {
                    v.end = commit_ts;
                }
            }
        }
    }

    /// Roll back a transaction's effects on a slot.
    pub fn abort_slot(&mut self, slot: SlotId, me: u64) {
        let Some(s) = self.slots.get_mut(slot.0 as usize) else {
            return;
        };
        // Remove versions this transaction installed.
        let before = s.versions.len();
        s.versions.retain(|v| {
            if v.begin == TXN_BIT | me {
                self.byte_estimate = self
                    .byte_estimate
                    .saturating_sub(crate::types::row_bytes(&v.row) as u64);
                false
            } else {
                true
            }
        });
        let removed = before - s.versions.len();
        self.live_estimate = self.live_estimate.saturating_sub(removed as u64);
        // Clear pending delete marks.
        let mut undeleted = 0;
        for v in &mut s.versions {
            if v.end == TXN_BIT | me {
                v.end = TS_INF;
                undeleted += 1;
            }
        }
        self.live_estimate += undeleted;
        if s.versions.is_empty() {
            self.free.push(slot);
        }
    }

    /// Garbage-collect one slot: drop versions no active snapshot can see.
    /// Returns `(versions_pruned, slot_freed_with_last_row)`.
    pub fn gc_slot(&mut self, slot: SlotId, oldest_read_ts: u64) -> (usize, Option<Row>) {
        let Some(s) = self.slots.get_mut(slot.0 as usize) else {
            return (0, None);
        };
        if s.versions.is_empty() {
            return (0, None);
        }
        let before = s.versions.len();
        // A version is dead when its end is a committed timestamp <= the
        // oldest snapshot any active transaction could hold.
        s.versions
            .retain(|v| v.end & TXN_BIT != 0 || v.end > oldest_read_ts);
        let pruned = before - s.versions.len();
        if pruned > 0 {
            // Byte estimate only tracks head versions; conservative.
        }
        if s.versions.is_empty() {
            let last = None; // versions already dropped; row gone
            self.free.push(slot);
            return (pruned, last);
        }
        (pruned, None)
    }

    /// GC variant that reports the head row before freeing the slot, so
    /// the engine can clean index entries.
    pub fn gc_slot_with_row(&mut self, slot: SlotId, oldest_read_ts: u64) -> (usize, Option<Row>) {
        let Some(s) = self.slots.get_mut(slot.0 as usize) else {
            return (0, None);
        };
        if s.versions.is_empty() {
            return (0, None);
        }
        let all_dead = s
            .versions
            .iter()
            .all(|v| v.end & TXN_BIT == 0 && v.end <= oldest_read_ts);
        if all_dead {
            let pruned = s.versions.len();
            let row = s.versions.first().map(|v| v.row.clone());
            s.versions.clear();
            self.free.push(slot);
            return (pruned, row);
        }
        let before = s.versions.len();
        s.versions
            .retain(|v| v.end & TXN_BIT != 0 || v.end > oldest_read_ts);
        (before - s.versions.len(), None)
    }

    /// Total version count (GC pressure metric).
    pub fn total_versions(&self) -> usize {
        self.slots.iter().map(|s| s.versions.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DataType, Value};

    fn table() -> VersionedTable {
        VersionedTable::new(Schema::new(&[("id", DataType::Int), ("v", DataType::Int)]))
    }

    fn row(id: i64, v: i64) -> Row {
        vec![Value::Int(id), Value::Int(v)]
    }

    #[test]
    fn own_writes_visible_before_commit_others_not() {
        let mut t = table();
        let slot = t.insert(row(1, 10), 5);
        assert!(t.read(slot, 100, 5).is_some(), "writer sees own insert");
        assert!(t.read(slot, 100, 6).is_none(), "others do not");
        t.commit_slot(slot, 5, 50);
        assert!(t.read(slot, 50, 6).is_some(), "visible at commit ts");
        assert!(t.read(slot, 49, 6).is_none(), "invisible before commit ts");
    }

    #[test]
    fn update_creates_version_old_readers_see_old() {
        let mut t = table();
        let slot = t.insert(row(1, 10), 1);
        t.commit_slot(slot, 1, 10);
        t.update(slot, row(1, 20), 2).unwrap();
        t.commit_slot(slot, 2, 20);
        assert_eq!(t.read(slot, 15, 9).unwrap()[1], Value::Int(10));
        assert_eq!(t.read(slot, 25, 9).unwrap()[1], Value::Int(20));
        assert_eq!(t.total_versions(), 2);
    }

    #[test]
    fn write_write_conflict_detected() {
        let mut t = table();
        let slot = t.insert(row(1, 10), 1);
        t.commit_slot(slot, 1, 10);
        t.update(slot, row(1, 20), 2).unwrap();
        assert_eq!(t.update(slot, row(1, 30), 3), Err(WwConflict));
        assert_eq!(t.delete(slot, 3), Err(WwConflict));
    }

    #[test]
    fn same_txn_double_update_overwrites_in_place() {
        let mut t = table();
        let slot = t.insert(row(1, 10), 1);
        t.commit_slot(slot, 1, 10);
        t.update(slot, row(1, 20), 2).unwrap();
        t.update(slot, row(1, 25), 2).unwrap();
        t.commit_slot(slot, 2, 20);
        assert_eq!(t.read(slot, 30, 9).unwrap()[1], Value::Int(25));
        assert_eq!(
            t.total_versions(),
            2,
            "no third version for in-place rewrite"
        );
    }

    #[test]
    fn abort_rolls_back_update_and_delete() {
        let mut t = table();
        let slot = t.insert(row(1, 10), 1);
        t.commit_slot(slot, 1, 10);

        t.update(slot, row(1, 99), 2).unwrap();
        t.abort_slot(slot, 2);
        assert_eq!(t.read(slot, 20, 9).unwrap()[1], Value::Int(10));
        assert_eq!(t.total_versions(), 1);

        t.delete(slot, 3).unwrap();
        t.abort_slot(slot, 3);
        assert!(t.read(slot, 20, 9).is_some(), "delete undone");
    }

    #[test]
    fn abort_insert_frees_slot_for_reuse() {
        let mut t = table();
        let slot = t.insert(row(1, 1), 1);
        t.abort_slot(slot, 1);
        assert!(t.read(slot, 100, 9).is_none());
        let slot2 = t.insert(row(2, 2), 2);
        assert_eq!(slot, slot2, "freed slot reused");
    }

    #[test]
    fn delete_then_commit_hides_row() {
        let mut t = table();
        let slot = t.insert(row(1, 10), 1);
        t.commit_slot(slot, 1, 10);
        t.delete(slot, 2).unwrap();
        // Deleter no longer sees it; others still do until commit.
        assert!(t.read(slot, 20, 2).is_none());
        assert!(t.read(slot, 20, 9).is_some());
        t.commit_slot(slot, 2, 30);
        assert!(t.read(slot, 40, 9).is_none());
        assert!(t.read(slot, 25, 9).is_some(), "old snapshot still sees it");
    }

    #[test]
    fn gc_prunes_dead_versions_and_frees_slots() {
        let mut t = table();
        let slot = t.insert(row(1, 10), 1);
        t.commit_slot(slot, 1, 10);
        for (txn, ts, v) in [(2u64, 20u64, 20i64), (3, 30, 30), (4, 40, 40)] {
            t.update(slot, row(1, v), txn).unwrap();
            t.commit_slot(slot, txn, ts);
        }
        assert_eq!(t.total_versions(), 4);
        let (pruned, freed) = t.gc_slot_with_row(slot, 35);
        assert_eq!(pruned, 2, "versions dead before ts 35 pruned");
        assert!(freed.is_none());
        assert_eq!(t.read(slot, 100, 9).unwrap()[1], Value::Int(40));

        // Delete, commit, then GC past the delete → slot freed.
        t.delete(slot, 5).unwrap();
        t.commit_slot(slot, 5, 50);
        let (pruned, freed) = t.gc_slot_with_row(slot, 60);
        assert_eq!(pruned, 2);
        assert!(freed.is_some(), "engine gets the row for index cleanup");
        assert!(t.read(slot, 100, 9).is_none());
    }

    #[test]
    fn scan_slots_skips_free_slots() {
        let mut t = table();
        let a = t.insert(row(1, 1), 1);
        let _b = t.insert(row(2, 2), 1);
        t.commit_slot(a, 1, 10);
        t.abort_slot(SlotId(1), 1);
        let live: Vec<SlotId> = t.scan_slots().collect();
        assert_eq!(live, vec![a]);
    }

    #[test]
    fn estimates_track_live_data() {
        let mut t = table();
        assert_eq!(t.live_tuples(), 0);
        let s = t.insert(row(1, 1), 1);
        t.commit_slot(s, 1, 5);
        assert_eq!(t.live_tuples(), 1);
        assert_eq!(t.live_bytes(), 16);
        t.delete(s, 2).unwrap();
        t.commit_slot(s, 2, 10);
        assert_eq!(t.live_tuples(), 0);
    }
}
