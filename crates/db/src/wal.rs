//! Write-ahead logging: the log serializer and disk writer subsystems.
//!
//! NoiseTap uses group commit: committed transactions append redo records
//! to a queue, and a background WAL task periodically drains whatever
//! arrived in the current window into one buffer (the **log serializer**
//! OU), then writes that buffer to the storage device (the **disk
//! writer** OU). Both behaviors are *workload dependent* — batch size
//! follows the commit arrival rate — which is exactly why the paper's
//! offline runners mispredict these subsystems and online data helps most
//! (Figs. 2, 7, 9).

use tscout::TScout;
use tscout_kernel::{Kernel, TaskId};

use crate::exec::ou::{work_for, EngineOu, OuMap};

/// One committed transaction's redo payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalRecord {
    pub commit_ts: u64,
    /// Serialized redo bytes.
    pub bytes: u64,
    /// Number of writes in the transaction.
    pub writes: u64,
    /// Virtual arrival time (commit time on the session task).
    pub arrival_ns: f64,
}

/// WAL runtime state.
#[derive(Debug)]
pub struct Wal {
    /// The background WAL task (owns the serializer + disk writer OUs).
    pub task: TaskId,
    queue: std::collections::VecDeque<WalRecord>,
    /// Group-commit window length.
    pub interval_ns: f64,
    /// Flush early when this many buffered bytes accumulate.
    pub max_batch_bytes: u64,
    pub flushed_batches: u64,
    pub flushed_records: u64,
    pub flushed_bytes: u64,
}

impl Wal {
    pub fn new(kernel: &mut Kernel) -> Wal {
        Wal {
            task: kernel.create_task(),
            queue: std::collections::VecDeque::new(),
            interval_ns: 200_000.0, // 200 µs group-commit window
            max_batch_bytes: 64 * 1024,
            flushed_batches: 0,
            flushed_records: 0,
            flushed_bytes: 0,
        }
    }

    /// Enqueue a committed transaction's redo records.
    pub fn append(&mut self, rec: WalRecord) {
        // Arrival order can jitter slightly across session tasks; keep the
        // queue sorted by arrival so batch windows are well defined.
        let pos = self
            .queue
            .iter()
            .rposition(|r| r.arrival_ns <= rec.arrival_ns)
            .map(|p| p + 1)
            .unwrap_or(0);
        self.queue.insert(pos, rec);
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Run the WAL task forward to `until_ns`, flushing complete group-
    /// commit batches. Emits LOG_SERIALIZE and DISK_WRITE marker triples
    /// per batch when TScout is attached.
    pub fn pump(
        &mut self,
        kernel: &mut Kernel,
        mut ts: Option<&mut TScout>,
        ous: Option<&OuMap>,
        until_ns: f64,
    ) -> usize {
        let _root = kernel.profile_frame(self.task, "dbms", true);
        let _wal = kernel.profile_frame(self.task, "wal", false);
        let mut batches = 0;
        loop {
            let Some(first) = self.queue.front() else {
                kernel.advance_to(self.task, until_ns);
                return batches;
            };
            // The window opens when the first record arrives (or when the
            // WAL task becomes free, if later).
            let open = first.arrival_ns.max(kernel.now(self.task));
            let close = open + self.interval_ns;
            if close > until_ns {
                return batches; // batch not complete yet
            }
            kernel.advance_to(self.task, close);

            // Collect the batch: everything that arrived before the close,
            // capped by bytes.
            let mut records = 0u64;
            let mut bytes = 0u64;
            let mut writes = 0u64;
            while let Some(r) = self.queue.front() {
                if r.arrival_ns > close || bytes + r.bytes > self.max_batch_bytes {
                    break;
                }
                bytes += r.bytes;
                writes += r.writes;
                records += 1;
                self.queue.pop_front();
            }
            if records == 0 {
                // A single oversized record: take it alone.
                let r = self.queue.pop_front().unwrap();
                bytes = r.bytes;
                writes = r.writes;
                records = 1;
            }

            // --- Log serializer OU ---
            let ser_feats = vec![records, bytes];
            {
                let _ou = kernel.profile_frame(self.task, "ou:log_serialize", false);
                if let (Some(ts), Some(ous)) = (ts.as_deref_mut(), ous) {
                    ts.ou_begin(kernel, self.task, ous.id(EngineOu::LogSerialize));
                }
                let w = work_for(EngineOu::LogSerialize, &ser_feats);
                kernel.charge_cpu(self.task, w.instructions, w.ws_bytes);
                if let (Some(ts), Some(ous)) = (ts.as_deref_mut(), ous) {
                    let id = ous.id(EngineOu::LogSerialize);
                    ts.ou_end(kernel, self.task, id);
                    ts.ou_features(kernel, self.task, id, &ser_feats, &[w.mem_bytes]);
                }
            }

            // --- Disk writer OU ---
            let io_feats = vec![bytes, 1];
            let disk_frame = kernel.profile_frame(self.task, "ou:disk_write", false);
            if let (Some(ts), Some(ous)) = (ts.as_deref_mut(), ous) {
                ts.ou_begin(kernel, self.task, ous.id(EngineOu::DiskWrite));
            }
            let w = work_for(EngineOu::DiskWrite, &io_feats);
            kernel.charge_cpu(self.task, w.instructions, w.ws_bytes);
            let flush_start_ns = kernel.now(self.task);
            kernel.io_write(self.task, bytes.max(512));
            let flush_dur = kernel.now(self.task) - flush_start_ns;
            if let (Some(ts), Some(ous)) = (ts.as_deref_mut(), ous) {
                let id = ous.id(EngineOu::DiskWrite);
                ts.ou_end(kernel, self.task, id);
                ts.ou_features(kernel, self.task, id, &io_feats, &[0]);
            }
            drop(disk_frame);

            self.flushed_batches += 1;
            self.flushed_records += records;
            self.flushed_bytes += bytes;
            let _ = writes;
            batches += 1;
            kernel.telemetry.counter_inc("db_wal_flushes_total", &[]);
            kernel
                .telemetry
                .counter_add("db_wal_flushed_records_total", &[], records);
            kernel
                .telemetry
                .hist_record("db_wal_batch_records", &[], records as f64);
            kernel
                .telemetry
                .hist_record("db_wal_flush_ns", &[], flush_dur);
            kernel
                .telemetry
                .span("wal_flush", "wal", flush_start_ns, flush_dur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscout_kernel::HardwareProfile;

    fn kernel() -> Kernel {
        let mut k = Kernel::with_seed(HardwareProfile::server_2x20(), 1);
        k.noise_frac = 0.0;
        k
    }

    fn rec(arrival_us: f64, bytes: u64) -> WalRecord {
        WalRecord {
            commit_ts: 1,
            bytes,
            writes: 1,
            arrival_ns: arrival_us * 1000.0,
        }
    }

    #[test]
    fn group_commit_batches_by_arrival_window() {
        let mut k = kernel();
        let mut wal = Wal::new(&mut k);
        // Five records inside one 200 µs window.
        for i in 0..5 {
            wal.append(rec(10.0 * i as f64, 100));
        }
        // One record far later.
        wal.append(rec(10_000.0, 100));
        let batches = wal.pump(&mut k, None, None, 50_000_000.0);
        assert_eq!(batches, 2);
        assert_eq!(wal.flushed_records, 6);
        assert_eq!(wal.flushed_batches, 2);
        assert_eq!(wal.pending(), 0);
    }

    #[test]
    fn incomplete_window_waits() {
        let mut k = kernel();
        let mut wal = Wal::new(&mut k);
        wal.append(rec(50.0, 100));
        // Window closes at 50µs + 200µs = 250µs; pumping to 100µs flushes
        // nothing.
        assert_eq!(wal.pump(&mut k, None, None, 100_000.0), 0);
        assert_eq!(wal.pending(), 1);
        assert_eq!(wal.pump(&mut k, None, None, 300_000.0), 1);
        assert_eq!(wal.pending(), 0);
    }

    #[test]
    fn byte_cap_splits_batches() {
        let mut k = kernel();
        let mut wal = Wal::new(&mut k);
        wal.max_batch_bytes = 250;
        for i in 0..5 {
            wal.append(rec(i as f64, 100));
        }
        wal.pump(&mut k, None, None, 10_000_000.0);
        assert!(wal.flushed_batches >= 2, "byte cap must split the batch");
        assert_eq!(wal.flushed_records, 5);
    }

    #[test]
    fn oversized_record_flushes_alone() {
        let mut k = kernel();
        let mut wal = Wal::new(&mut k);
        wal.max_batch_bytes = 100;
        wal.append(rec(0.0, 5_000));
        assert_eq!(wal.pump(&mut k, None, None, 1_000_000.0), 1);
        assert_eq!(wal.flushed_bytes, 5_000);
    }

    #[test]
    fn out_of_order_arrivals_are_sorted() {
        let mut k = kernel();
        let mut wal = Wal::new(&mut k);
        wal.append(rec(300.0, 1));
        wal.append(rec(100.0, 2));
        wal.append(rec(200.0, 3));
        let arrivals: Vec<f64> = wal.queue.iter().map(|r| r.arrival_ns).collect();
        assert_eq!(arrivals, vec![100_000.0, 200_000.0, 300_000.0]);
    }

    #[test]
    fn wal_task_clock_advances_to_pump_horizon_when_idle() {
        let mut k = kernel();
        let mut wal = Wal::new(&mut k);
        wal.pump(&mut k, None, None, 1_000_000.0);
        assert_eq!(k.now(wal.task), 1_000_000.0);
    }
}
