//! Values, types, schemas, and rows.
//!
//! NoiseTap's value model is the small SQL core the benchmark workloads
//! need: 64-bit integers, doubles, UTF-8 strings, booleans, and NULL.
//! [`Value`] implements a *total* order (NULLs first, floats via
//! `total_cmp`) so it can key the B+-tree index directly.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// SQL data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    Int,
    Float,
    Text,
    Bool,
}

impl DataType {
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
}

impl Value {
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes (drives cost-model working
    /// sets and network payload sizes).
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(s) => s.len(),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numerics compare cross-type
            Value::Text(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and whole floats must hash identically (they compare
            // equal), so hash numerics through the float bit pattern.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A tuple.
pub type Row = Vec<Value>;

/// Approximate row width in bytes.
pub fn row_bytes(row: &Row) -> usize {
    row.iter().map(Value::byte_size).sum()
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
}

/// A table schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub columns: Vec<ColumnDef>,
}

impl Schema {
    pub fn new(cols: &[(&str, DataType)]) -> Schema {
        Schema {
            columns: cols
                .iter()
                .map(|(n, t)| ColumnDef {
                    name: n.to_string(),
                    dtype: *t,
                })
                .collect(),
        }
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn ordering_is_total_and_sane() {
        let mut vs = [
            Value::Text("b".into()),
            Value::Int(5),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
            Value::Int(-3),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Int(-3));
        assert_eq!(vs[3], Value::Float(2.5));
        assert_eq!(vs[4], Value::Int(5));
        assert_eq!(vs[5], Value::Text("b".into()));
    }

    #[test]
    fn numeric_cross_type_equality_and_hash_agree() {
        let i = Value::Int(4);
        let f = Value::Float(4.0);
        assert_eq!(i, f);
        assert_eq!(h(&i), h(&f));
        assert_ne!(Value::Int(4), Value::Float(4.5));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let mut vs = [
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(-1.0),
        ];
        vs.sort(); // must not panic
        assert_eq!(vs[0], Value::Float(-1.0));
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let s = Schema::new(&[("id", DataType::Int), ("Name", DataType::Text)]);
        assert_eq!(s.column_index("ID"), Some(0));
        assert_eq!(s.column_index("name"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn row_bytes_counts_payload() {
        let r: Row = vec![Value::Int(1), Value::Text("hello".into()), Value::Null];
        assert_eq!(row_bytes(&r), 8 + 5 + 1);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Float(1.0).data_type(), Some(DataType::Float));
    }
}
