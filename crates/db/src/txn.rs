//! Transaction management: timestamps, undo logs, commit/abort.
//!
//! A thin MVCC transaction manager over [`crate::storage`]: monotonically
//! increasing timestamps double as transaction ids, every write records an
//! undo reference, and commit stamps the transaction's marks with a fresh
//! commit timestamp. The oldest active snapshot bounds garbage collection.

use std::collections::BTreeMap;

use crate::catalog::TableId;
use crate::storage::SlotId;

/// A write recorded for commit/abort processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndoRef {
    pub table: TableId,
    pub slot: SlotId,
    /// Approximate redo-log bytes this write will serialize.
    pub redo_bytes: u64,
}

/// An in-flight transaction handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnHandle {
    pub id: u64,
    pub read_ts: u64,
}

#[derive(Debug)]
struct ActiveTxn {
    read_ts: u64,
    undo: Vec<UndoRef>,
}

/// The transaction manager.
#[derive(Debug)]
pub struct TxnManager {
    next_ts: u64,
    active: BTreeMap<u64, ActiveTxn>,
    pub committed: u64,
    pub aborted: u64,
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    pub fn new() -> Self {
        // Timestamp 0 is reserved so "bootstrap" rows (loaded outside any
        // transaction) can be stamped visible-to-everyone.
        TxnManager {
            next_ts: 1,
            active: BTreeMap::new(),
            committed: 0,
            aborted: 0,
        }
    }

    pub fn begin(&mut self) -> TxnHandle {
        let id = self.next_ts;
        self.next_ts += 1;
        let read_ts = id - 1; // snapshot: everything committed before us
        self.active.insert(
            id,
            ActiveTxn {
                read_ts,
                undo: Vec::new(),
            },
        );
        TxnHandle { id, read_ts }
    }

    /// Record a write for later commit stamping / rollback.
    pub fn log_write(&mut self, txn: TxnHandle, undo: UndoRef) {
        if let Some(a) = self.active.get_mut(&txn.id) {
            a.undo.push(undo);
        }
    }

    /// Finish a transaction: returns `(commit_ts, writes)` for the engine
    /// to stamp slots and build WAL records.
    pub fn commit(&mut self, txn: TxnHandle) -> (u64, Vec<UndoRef>) {
        let a = self.active.remove(&txn.id).expect("commit of unknown txn");
        let commit_ts = self.next_ts;
        self.next_ts += 1;
        self.committed += 1;
        (commit_ts, a.undo)
    }

    /// Abort: returns the undo refs for the engine to roll back.
    pub fn abort(&mut self, txn: TxnHandle) -> Vec<UndoRef> {
        self.aborted += 1;
        self.active
            .remove(&txn.id)
            .map(|a| a.undo)
            .unwrap_or_default()
    }

    /// Snapshot bound for GC: no active transaction can read anything
    /// committed at or before this timestamp... precisely, the minimum
    /// read timestamp among active transactions (or the current clock when
    /// idle).
    pub fn oldest_read_ts(&self) -> u64 {
        self.active
            .values()
            .map(|a| a.read_ts)
            .min()
            .unwrap_or(self.next_ts.saturating_sub(1))
    }

    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Number of writes logged so far by a transaction.
    pub fn write_count(&self, txn: TxnHandle) -> usize {
        self.active.get(&txn.id).map(|a| a.undo.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undo(t: u32, s: u64) -> UndoRef {
        UndoRef {
            table: TableId(t),
            slot: SlotId(s),
            redo_bytes: 64,
        }
    }

    #[test]
    fn timestamps_monotonic_and_snapshots_exclude_self() {
        let mut m = TxnManager::new();
        let t1 = m.begin();
        let t2 = m.begin();
        assert!(t2.id > t1.id);
        assert_eq!(t1.read_ts, t1.id - 1);
        let (c1, _) = m.commit(t1);
        assert!(c1 > t2.id);
    }

    #[test]
    fn commit_returns_undo_log_in_order() {
        let mut m = TxnManager::new();
        let t = m.begin();
        m.log_write(t, undo(1, 10));
        m.log_write(t, undo(2, 20));
        assert_eq!(m.write_count(t), 2);
        let (_, writes) = m.commit(t);
        assert_eq!(writes, vec![undo(1, 10), undo(2, 20)]);
        assert_eq!(m.committed, 1);
    }

    #[test]
    fn abort_returns_undo_and_counts() {
        let mut m = TxnManager::new();
        let t = m.begin();
        m.log_write(t, undo(1, 1));
        let writes = m.abort(t);
        assert_eq!(writes.len(), 1);
        assert_eq!(m.aborted, 1);
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn oldest_read_ts_tracks_active_set() {
        let mut m = TxnManager::new();
        let idle = m.oldest_read_ts();
        let t1 = m.begin();
        let t2 = m.begin();
        assert_eq!(m.oldest_read_ts(), t1.read_ts);
        m.commit(t1);
        assert_eq!(m.oldest_read_ts(), t2.read_ts);
        m.commit(t2);
        assert!(m.oldest_read_ts() > idle);
    }
}
