//! The catalog: table and index metadata.

use crate::index::IndexKind;
use crate::types::Schema;

/// Table identifier (an OID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Index identifier (an OID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub u32);

/// Table metadata.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub id: TableId,
    pub name: String,
    pub schema: Schema,
    /// Column positions of the primary key (empty = none).
    pub primary_key: Vec<usize>,
    /// Indexes defined on this table (including the PK index).
    pub indexes: Vec<IndexId>,
}

/// Index metadata.
#[derive(Debug, Clone)]
pub struct IndexMeta {
    pub id: IndexId,
    pub name: String,
    pub table: TableId,
    /// Indexed column positions, in key order.
    pub columns: Vec<usize>,
    pub kind: IndexKind,
    pub unique: bool,
}

/// Catalog errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    DuplicateTable(String),
    DuplicateIndex(String),
    NoSuchTable(String),
    NoSuchColumn { table: String, column: String },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::DuplicateTable(n) => write!(f, "table {n} already exists"),
            CatalogError::DuplicateIndex(n) => write!(f, "index {n} already exists"),
            CatalogError::NoSuchTable(n) => write!(f, "no such table: {n}"),
            CatalogError::NoSuchColumn { table, column } => {
                write!(f, "no column {column} in table {table}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// The catalog.
#[derive(Debug)]
pub struct Catalog {
    tables: Vec<TableMeta>,
    indexes: Vec<IndexMeta>,
    /// Virtual (`pg_stat`-style) introspection tables: name + schema.
    /// Registered at construction; they own no storage and no OIDs.
    virtuals: Vec<(String, Schema)>,
}

impl Default for Catalog {
    fn default() -> Self {
        let virtuals = crate::stat::VIRTUAL_TABLES
            .iter()
            .map(|n| {
                (
                    n.to_string(),
                    crate::stat::virtual_schema(n).expect("registered virtual table"),
                )
            })
            .collect();
        Catalog {
            tables: Vec::new(),
            indexes: Vec::new(),
            virtuals,
        }
    }
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        primary_key: Vec<usize>,
    ) -> Result<TableId, CatalogError> {
        if self.table_by_name(name).is_some() || self.virtual_table(name).is_some() {
            return Err(CatalogError::DuplicateTable(name.into()));
        }
        let id = TableId(self.tables.len() as u32);
        self.tables.push(TableMeta {
            id,
            name: name.to_lowercase(),
            schema,
            primary_key,
            indexes: Vec::new(),
        });
        Ok(id)
    }

    pub fn create_index(
        &mut self,
        name: &str,
        table: TableId,
        columns: Vec<usize>,
        kind: IndexKind,
        unique: bool,
    ) -> Result<IndexId, CatalogError> {
        if self
            .indexes
            .iter()
            .any(|i| i.name.eq_ignore_ascii_case(name))
        {
            return Err(CatalogError::DuplicateIndex(name.into()));
        }
        let id = IndexId(self.indexes.len() as u32);
        self.indexes.push(IndexMeta {
            id,
            name: name.to_lowercase(),
            table,
            columns,
            kind,
            unique,
        });
        self.tables[table.0 as usize].indexes.push(id);
        Ok(id)
    }

    pub fn table(&self, id: TableId) -> &TableMeta {
        &self.tables[id.0 as usize]
    }

    pub fn table_by_name(&self, name: &str) -> Option<&TableMeta> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Resolve a virtual introspection table: canonical name + schema.
    pub fn virtual_table(&self, name: &str) -> Option<(&str, &Schema)> {
        self.virtuals
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(n, s)| (n.as_str(), s))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, id: IndexId) -> &IndexMeta {
        &self.indexes[id.0 as usize]
    }

    pub fn table_indexes(&self, table: TableId) -> Vec<&IndexMeta> {
        self.tables[table.0 as usize]
            .indexes
            .iter()
            .map(|i| self.index(*i))
            .collect()
    }

    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    pub fn num_indexes(&self) -> usize {
        self.indexes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    #[test]
    fn create_and_resolve() {
        let mut c = Catalog::new();
        let schema = Schema::new(&[("id", DataType::Int), ("v", DataType::Text)]);
        let t = c.create_table("Users", schema, vec![0]).unwrap();
        let i = c
            .create_index("users_pk", t, vec![0], IndexKind::Hash, true)
            .unwrap();
        assert_eq!(c.table_by_name("users").unwrap().id, t);
        assert_eq!(c.table_by_name("USERS").unwrap().id, t);
        assert_eq!(c.table(t).primary_key, vec![0]);
        assert_eq!(c.index(i).table, t);
        assert_eq!(c.table_indexes(t).len(), 1);
    }

    #[test]
    fn virtual_tables_are_registered_and_reserved() {
        let mut c = Catalog::new();
        let (name, schema) = c.virtual_table("TS_STAT_OU").unwrap();
        assert_eq!(name, "ts_stat_ou");
        assert!(schema.column_index("drift_score").is_some());
        // Base tables may not shadow a virtual name.
        let s = Schema::new(&[("id", DataType::Int)]);
        assert!(matches!(
            c.create_table("ts_alerts", s, vec![]),
            Err(CatalogError::DuplicateTable(_))
        ));
        // Virtuals own no OIDs: the base-table namespace starts empty.
        assert_eq!(c.num_tables(), 0);
        assert!(c.table_by_name("ts_stat_ou").is_none());
    }

    #[test]
    fn duplicates_rejected() {
        let mut c = Catalog::new();
        let schema = Schema::new(&[("id", DataType::Int)]);
        let t = c.create_table("t", schema.clone(), vec![]).unwrap();
        assert!(matches!(
            c.create_table("T", schema, vec![]),
            Err(CatalogError::DuplicateTable(_))
        ));
        c.create_index("i", t, vec![0], IndexKind::BTree, false)
            .unwrap();
        assert!(matches!(
            c.create_index("I", t, vec![0], IndexKind::BTree, false),
            Err(CatalogError::DuplicateIndex(_))
        ));
    }
}
