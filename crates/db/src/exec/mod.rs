//! The OU-granular execution engine.
//!
//! Every operator runs under TScout markers. Two engine modes mirror the
//! paper (§5.2):
//!
//! * [`EngineMode::PerOperator`] — each operator carries its own marker
//!   triple, placed around the operator's *own* work (children run
//!   first) so every OU's features explain its metrics. Marker nesting
//!   for recursive operators is handled by the Collector's depth-keyed
//!   maps (exercised directly in the `tscout` crate's tests).
//! * [`EngineMode::Fused`] — the JIT-compilation model: one marker pair
//!   around the whole query pipeline, with a *vector* of per-OU features
//!   emitted at the FEATURES marker; the Processor de-aggregates.
//!
//! Operators do real work on real tuples; the simulation cost model
//! ([`ou::work_for`]) additionally charges virtual CPU time so the
//! kernel's counters and clocks reflect the work.

pub mod obs;
pub mod ou;
pub mod plan;

use tscout::{OuId, TScout};
use tscout_kernel::{Kernel, TaskId};

use crate::catalog::Catalog;
use crate::index::{key_from_row, Index, IndexKey};
use crate::sql::ast::{AggFunc, BinOp};
use crate::storage::{SlotId, VersionedTable};
use crate::txn::{TxnHandle, TxnManager, UndoRef};
use crate::types::{row_bytes, DataType, Row, Value};

use ou::{work_for, EngineOu, OuMap};
use plan::{Access, PExpr, Plan, PlanNode, ScanNode};

/// Marker placement strategy (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// One marker triple per operator.
    #[default]
    PerOperator,
    /// One marker pair per query with vectorized features.
    Fused,
}

/// Execution errors that abort the transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Write-write conflict (first-writer-wins MVCC).
    Conflict,
    UniqueViolation(String),
    Eval(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Conflict => write!(f, "write-write conflict"),
            ExecError::UniqueViolation(k) => write!(f, "unique constraint violation on {k}"),
            ExecError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of executing one statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecOutcome {
    pub rows: Vec<Row>,
    pub rows_affected: u64,
}

/// Everything the executor needs, borrowed disjointly from the engine.
#[derive(Debug)]
pub struct ExecCtx<'a> {
    pub kernel: &'a mut Kernel,
    pub ts: Option<&'a mut TScout>,
    pub ous: Option<&'a OuMap>,
    pub task: TaskId,
    pub catalog: &'a Catalog,
    pub tables: &'a mut Vec<VersionedTable>,
    pub indexes: &'a mut Vec<Index>,
    pub txns: &'a mut TxnManager,
    pub txn: TxnHandle,
    pub mode: EngineMode,
    /// Per-statement observation (plan-node actuals + OU attribution).
    /// Clock-neutral: set by the engine when statement stats or
    /// EXPLAIN ANALYZE need actuals; `None` costs nothing on the hot path.
    pub obs: Option<obs::StmtObs>,
    /// Fused-mode accumulator of (OU, features) groups.
    fused: Option<Vec<(OuId, Vec<u64>)>>,
}

impl<'a> ExecCtx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kernel: &'a mut Kernel,
        ts: Option<&'a mut TScout>,
        ous: Option<&'a OuMap>,
        task: TaskId,
        catalog: &'a Catalog,
        tables: &'a mut Vec<VersionedTable>,
        indexes: &'a mut Vec<Index>,
        txns: &'a mut TxnManager,
        txn: TxnHandle,
        mode: EngineMode,
    ) -> Self {
        ExecCtx {
            kernel,
            ts,
            ous,
            task,
            catalog,
            tables,
            indexes,
            txns,
            txn,
            mode,
            obs: None,
            fused: None,
        }
    }

    /// Open an observation node at the current virtual clock (no-op and
    /// zero-cost when observation is off).
    fn obs_enter(&mut self) -> Option<usize> {
        self.obs.as_ref()?;
        let now = self.kernel.now(self.task);
        self.obs.as_mut().map(|o| o.enter(now))
    }

    /// Close an observation node opened by [`Self::obs_enter`].
    fn obs_exit(&mut self, tok: Option<usize>, rows: u64) {
        if let Some(idx) = tok {
            let now = self.kernel.now(self.task);
            if let Some(o) = self.obs.as_mut() {
                o.exit(idx, now, rows);
            }
        }
    }

    fn begin(&mut self, eou: EngineOu) {
        if self.fused.is_some() {
            return;
        }
        if let (Some(ts), Some(ous)) = (self.ts.as_deref_mut(), self.ous) {
            ts.ou_begin(self.kernel, self.task, ous.id(eou));
        }
    }

    /// Charge the OU's modeled work; returns its memory-probe bytes.
    fn charge(&mut self, eou: EngineOu, features: &[u64]) -> u64 {
        let _frame = self
            .kernel
            .profile_frame_lazy(self.task, false, || format!("ou:{}", eou.name()));
        let w = work_for(eou, features);
        if self.obs.is_some() {
            // Bracket the charge with clock reads so the observation
            // captures exactly this OU's modeled elapsed ns. Reads only —
            // the charge itself is identical with observation off.
            let t0 = self.kernel.now(self.task);
            self.kernel
                .charge_cpu(self.task, w.instructions, w.ws_bytes);
            let t1 = self.kernel.now(self.task);
            if let Some(o) = self.obs.as_mut() {
                o.record_ou(eou.name(), t1 - t0, features);
            }
        } else {
            self.kernel
                .charge_cpu(self.task, w.instructions, w.ws_bytes);
        }
        w.mem_bytes
    }

    fn finish(&mut self, eou: EngineOu, features: Vec<u64>, mem_bytes: u64) {
        if let Some(groups) = &mut self.fused {
            if let Some(ous) = self.ous {
                groups.push((ous.id(eou), features));
            }
            return;
        }
        if let (Some(ts), Some(ous)) = (self.ts.as_deref_mut(), self.ous) {
            let id = ous.id(eou);
            ts.ou_end(self.kernel, self.task, id);
            ts.ou_features(self.kernel, self.task, id, &features, &[mem_bytes]);
        }
    }

    fn table(&self, t: crate::catalog::TableId) -> &VersionedTable {
        &self.tables[t.0 as usize]
    }
}

/// Evaluate a resolved expression.
pub fn eval(e: &PExpr, row: &[Value], params: &[Value]) -> Result<Value, ExecError> {
    match e {
        PExpr::Col(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| ExecError::Eval(format!("column offset {i} out of range"))),
        PExpr::Lit(v) => Ok(v.clone()),
        PExpr::Param(p) => params
            .get(*p)
            .cloned()
            .ok_or_else(|| ExecError::Eval(format!("missing parameter ${}", p + 1))),
        PExpr::Bin(l, op, r) => {
            let lv = eval(l, row, params)?;
            let rv = eval(r, row, params)?;
            apply(*op, lv, rv)
        }
    }
}

fn apply(op: BinOp, l: Value, r: Value) -> Result<Value, ExecError> {
    use BinOp::*;
    match op {
        And => Ok(Value::Bool(truthy(&l) && truthy(&r))),
        Or => Ok(Value::Bool(truthy(&l) || truthy(&r))),
        Eq => Ok(Value::Bool(l == r)),
        Ne => Ok(Value::Bool(l != r)),
        Lt => Ok(Value::Bool(l < r)),
        Le => Ok(Value::Bool(l <= r)),
        Gt => Ok(Value::Bool(l > r)),
        Ge => Ok(Value::Bool(l >= r)),
        Add | Sub | Mul => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(match op {
                Add => a.wrapping_add(*b),
                Sub => a.wrapping_sub(*b),
                _ => a.wrapping_mul(*b),
            })),
            _ => {
                let a = l
                    .as_float()
                    .ok_or_else(|| ExecError::Eval(format!("non-numeric operand {l}")))?;
                let b = r
                    .as_float()
                    .ok_or_else(|| ExecError::Eval(format!("non-numeric operand {r}")))?;
                Ok(Value::Float(match op {
                    Add => a + b,
                    Sub => a - b,
                    _ => a * b,
                }))
            }
        },
    }
}

/// SQL truthiness: NULL is false.
pub fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Coerce a row to a table schema (numeric widening only).
fn coerce_row(row: &mut Row, schema: &crate::types::Schema) {
    for (v, col) in row.iter_mut().zip(&schema.columns) {
        if col.dtype == DataType::Float {
            if let Value::Int(i) = v {
                *v = Value::Float(*i as f64);
            }
        }
    }
}

/// Execute a planned statement.
pub fn execute(
    ctx: &mut ExecCtx<'_>,
    p: &Plan,
    params: &[Value],
) -> Result<ExecOutcome, ExecError> {
    match p {
        Plan::Insert { table, rows } => exec_insert(ctx, *table, rows, params),
        Plan::Update { scan, sets } => exec_update(ctx, scan, sets, params),
        Plan::Delete { scan } => exec_delete(ctx, scan, params),
        Plan::Query { root } => exec_query(ctx, root, params),
        other => Err(ExecError::Eval(format!(
            "plan {other:?} must be handled by the engine"
        ))),
    }
}

fn exec_query(
    ctx: &mut ExecCtx<'_>,
    root: &PlanNode,
    params: &[Value],
) -> Result<ExecOutcome, ExecError> {
    let _pipeline_frame = ctx.kernel.profile_frame(ctx.task, "pipeline", false);
    let fused = ctx.mode == EngineMode::Fused && ctx.ts.is_some();
    let pipeline_id = ctx.ous.map(|o| o.id(EngineOu::Pipeline));
    if fused {
        if let (Some(ts), Some(id)) = (ctx.ts.as_deref_mut(), pipeline_id) {
            ts.ou_begin(ctx.kernel, ctx.task, id);
        }
        ctx.fused = Some(Vec::new());
    }

    let result = exec_node(ctx, root, params);

    // Output OU: materializing the result for the client.
    let outcome = match result {
        Ok(rows) => {
            let bytes: usize = rows.iter().map(row_bytes).sum();
            ctx.begin(EngineOu::Output);
            let feats = vec![rows.len() as u64, bytes as u64];
            let mem = ctx.charge(EngineOu::Output, &feats);
            ctx.finish(EngineOu::Output, feats, mem);
            Ok(ExecOutcome {
                rows_affected: rows.len() as u64,
                rows,
            })
        }
        Err(e) => Err(e),
    };

    if fused {
        let groups = ctx.fused.take().unwrap_or_default();
        if let (Some(ts), Some(id)) = (ctx.ts.as_deref_mut(), pipeline_id) {
            ts.ou_end(ctx.kernel, ctx.task, id);
            ts.ou_features_vec(ctx.kernel, ctx.task, id, &groups);
        }
        // Fan-out of the fused pipeline: how many OUs one marker pair
        // covered (what the Processor de-aggregates, §5.2).
        ctx.kernel.telemetry.counter_inc("db_pipelines_total", &[]);
        ctx.kernel
            .telemetry
            .counter_add("db_pipeline_ous_total", &[], groups.len() as u64);
        ctx.kernel
            .telemetry
            .hist_record("db_pipeline_fanout", &[], groups.len() as f64);
    }
    outcome
}

fn exec_node(
    ctx: &mut ExecCtx<'_>,
    node: &PlanNode,
    params: &[Value],
) -> Result<Vec<Row>, ExecError> {
    // Observation nodes are assigned in pre-order execution order — the
    // same order `plan::explain` renders operator lines — so annotations
    // line up with the rendered tree by ordinal.
    let tok = ctx.obs_enter();
    let result = exec_node_inner(ctx, node, params);
    ctx.obs_exit(tok, result.as_ref().map_or(0, |r| r.len() as u64));
    result
}

fn exec_node_inner(
    ctx: &mut ExecCtx<'_>,
    node: &PlanNode,
    params: &[Value],
) -> Result<Vec<Row>, ExecError> {
    match node {
        PlanNode::Scan(s) => Ok(exec_scan(ctx, s, params)?
            .into_iter()
            .map(|(_, r)| r)
            .collect()),
        PlanNode::VirtualScan { name, residual } => {
            // Materialize from the live telemetry registry. Virtual scans
            // are introspection, not workload: they charge CPU (registry
            // lock + per-row formatting) but emit no TScout markers, so
            // they never pollute the training data they report on.
            let _frame = ctx.kernel.profile_frame(ctx.task, "ou:virtual_scan", false);
            let all = crate::stat::virtual_rows(name, &ctx.kernel.telemetry);
            let ws: u64 = all.iter().map(|r| row_bytes(r) as u64).sum();
            ctx.kernel
                .charge_cpu(ctx.task, 2_000.0 + 400.0 * all.len() as f64, ws);
            ctx.kernel
                .telemetry
                .counter_inc("db_virtual_scans_total", &[("table", name)]);
            let mut rows = Vec::new();
            for row in all {
                if let Some(f) = residual {
                    if !truthy(&eval(f, &row, params)?) {
                        continue;
                    }
                }
                rows.push(row);
            }
            Ok(rows)
        }
        PlanNode::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => {
            let build_rows = exec_node(ctx, left, params)?;
            let probe_rows = exec_node(ctx, right, params)?;

            // Build phase.
            ctx.begin(EngineOu::HashJoinBuild);
            let build_bytes: usize = build_rows.iter().map(row_bytes).sum();
            let mut table: std::collections::HashMap<Value, Vec<usize>> =
                std::collections::HashMap::new();
            for (i, r) in build_rows.iter().enumerate() {
                table.entry(eval(left_key, r, params)?).or_default().push(i);
            }
            let feats = vec![build_rows.len() as u64, build_bytes as u64];
            let mem = ctx.charge(EngineOu::HashJoinBuild, &feats);
            ctx.finish(EngineOu::HashJoinBuild, feats, mem);

            // Probe phase.
            ctx.begin(EngineOu::HashJoinProbe);
            let mut out = Vec::new();
            for pr in &probe_rows {
                let key = eval(right_key, pr, params)?;
                if let Some(matches) = table.get(&key) {
                    for &bi in matches {
                        let mut row = build_rows[bi].clone();
                        row.extend(pr.iter().cloned());
                        match residual {
                            Some(f) if !truthy(&eval(f, &row, params)?) => {}
                            _ => out.push(row),
                        }
                    }
                }
            }
            let feats = vec![probe_rows.len() as u64, out.len() as u64];
            let mem = ctx.charge(EngineOu::HashJoinProbe, &feats);
            ctx.finish(EngineOu::HashJoinProbe, feats, mem);
            Ok(out)
        }
        PlanNode::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rows = exec_node(ctx, input, params)?;
            ctx.begin(EngineOu::AggBuild);
            let mut groups: std::collections::BTreeMap<Vec<Value>, Vec<AggState>> =
                std::collections::BTreeMap::new();
            for r in &rows {
                let key: Vec<Value> = group_by.iter().map(|c| r[*c].clone()).collect();
                let states = groups
                    .entry(key)
                    .or_insert_with(|| aggs.iter().map(|(f, _)| AggState::new(*f)).collect());
                for (state, (_, col)) in states.iter_mut().zip(aggs) {
                    state.update(col.map(|c| &r[c]));
                }
            }
            // A global aggregate over zero rows still yields one group.
            if groups.is_empty() && group_by.is_empty() {
                groups.insert(
                    Vec::new(),
                    aggs.iter().map(|(f, _)| AggState::new(*f)).collect(),
                );
            }
            let out: Vec<Row> = groups
                .into_iter()
                .map(|(key, states)| {
                    let mut row = key;
                    row.extend(states.into_iter().map(AggState::finish));
                    row
                })
                .collect();
            let feats = vec![rows.len() as u64, out.len() as u64];
            let mem = ctx.charge(EngineOu::AggBuild, &feats);
            ctx.finish(EngineOu::AggBuild, feats, mem);
            Ok(out)
        }
        PlanNode::Sort { input, by } => {
            let mut rows = exec_node(ctx, input, params)?;
            ctx.begin(EngineOu::Sort);
            let bytes: usize = rows.iter().map(row_bytes).sum();
            rows.sort_by(|a, b| {
                for (col, desc) in by {
                    let ord = a[*col].cmp(&b[*col]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let feats = vec![rows.len() as u64, bytes as u64];
            let mem = ctx.charge(EngineOu::Sort, &feats);
            ctx.finish(EngineOu::Sort, feats, mem);
            Ok(rows)
        }
        PlanNode::Limit { input, n } => {
            let mut rows = exec_node(ctx, input, params)?;
            rows.truncate(*n as usize);
            Ok(rows)
        }
        PlanNode::Project { input, exprs } => {
            let rows = exec_node(ctx, input, params)?;
            rows.iter()
                .map(|r| exprs.iter().map(|e| eval(e, r, params)).collect())
                .collect()
        }
    }
}

enum AggState {
    Count(u64),
    Sum(AggFunc, f64, bool, u64), // (func, accum, saw_float, count) — Sum/Avg
    MinMax(AggFunc, Option<Value>),
}

impl AggState {
    fn new(f: AggFunc) -> AggState {
        match f {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum | AggFunc::Avg => AggState::Sum(f, 0.0, false, 0),
            AggFunc::Min | AggFunc::Max => AggState::MinMax(f, None),
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(_, acc, saw_float, n) => {
                if let Some(v) = v {
                    if let Some(x) = v.as_float() {
                        *acc += x;
                        *saw_float |= matches!(v, Value::Float(_));
                        *n += 1;
                    }
                }
            }
            AggState::MinMax(f, cur) => {
                let Some(v) = v else { return };
                if v.is_null() {
                    return;
                }
                let better = match cur {
                    None => true,
                    Some(c) => {
                        if *f == AggFunc::Min {
                            v < c
                        } else {
                            v > c
                        }
                    }
                };
                if better {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n as i64),
            AggState::Sum(AggFunc::Avg, acc, _, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(acc / n as f64)
                }
            }
            AggState::Sum(_, acc, saw_float, n) => {
                if n == 0 {
                    Value::Null
                } else if saw_float {
                    Value::Float(acc)
                } else {
                    Value::Int(acc as i64)
                }
            }
            AggState::MinMax(_, cur) => cur.unwrap_or(Value::Null),
        }
    }
}

/// Execute a scan, returning `(slot, row)` pairs (DML needs the slots).
fn exec_scan(
    ctx: &mut ExecCtx<'_>,
    scan: &ScanNode,
    params: &[Value],
) -> Result<Vec<(SlotId, Row)>, ExecError> {
    let (read_ts, me) = (ctx.txn.read_ts, ctx.txn.id);
    match &scan.access {
        Access::Full => {
            ctx.begin(EngineOu::SeqScan);
            let table = ctx.table(scan.table);
            let mut rows = Vec::new();
            let mut examined = 0u64;
            let mut bytes = 0usize;
            for slot in table.scan_slots() {
                examined += 1;
                if let Some(r) = table.read(slot, read_ts, me) {
                    bytes += row_bytes(r);
                    rows.push((slot, r.clone()));
                }
            }
            let avg = if rows.is_empty() {
                0
            } else {
                (bytes / rows.len()) as u64
            };
            let feats = vec![examined, avg];
            let mem = ctx.charge(EngineOu::SeqScan, &feats);
            ctx.finish(EngineOu::SeqScan, feats, mem);

            if let Some(f) = &scan.residual {
                ctx.begin(EngineOu::Filter);
                let tuples_in = rows.len() as u64;
                let mut kept = Vec::with_capacity(rows.len());
                for (slot, r) in rows {
                    if truthy(&eval(f, &r, params)?) {
                        kept.push((slot, r));
                    }
                }
                let feats = vec![tuples_in];
                let mem = ctx.charge(EngineOu::Filter, &feats);
                ctx.finish(EngineOu::Filter, feats, mem);
                return Ok(kept);
            }
            Ok(rows)
        }
        Access::Point { index, key } => {
            let key: IndexKey = key
                .iter()
                .map(|e| eval(e, &[], params))
                .collect::<Result<_, _>>()?;
            ctx.begin(EngineOu::IdxLookup);
            let meta = ctx.catalog.index(*index);
            let idx = &ctx.indexes[index.0 as usize];
            let (slots, examined) = idx.get(&key);
            let depth = idx.depth() as u64;
            let table = ctx.table(scan.table);
            let mut rows = Vec::new();
            for slot in slots {
                if let Some(r) = table.read(slot, read_ts, me) {
                    // Re-check the key: stale index entries may point at
                    // slots whose visible version no longer matches.
                    if key_from_row(r, &meta.columns) == key {
                        rows.push((slot, r.clone()));
                    }
                }
            }
            if let Some(f) = &scan.residual {
                let mut kept = Vec::with_capacity(rows.len());
                for (slot, r) in rows {
                    if truthy(&eval(f, &r, params)?) {
                        kept.push((slot, r));
                    }
                }
                rows = kept;
            }
            let feats = vec![examined as u64, depth, rows.len() as u64];
            let mem = ctx.charge(EngineOu::IdxLookup, &feats);
            ctx.finish(EngineOu::IdxLookup, feats, mem);
            Ok(rows)
        }
        Access::Prefix { index, key } => {
            let prefix: Vec<Value> = key
                .iter()
                .map(|e| eval(e, &[], params))
                .collect::<Result<_, _>>()?;
            ctx.begin(EngineOu::IdxRangeScan);
            let meta = ctx.catalog.index(*index);
            let (slots, examined) = ctx.indexes[index.0 as usize].prefix(&prefix);
            let table = ctx.table(scan.table);
            let mut rows = Vec::new();
            for slot in slots {
                if let Some(r) = table.read(slot, read_ts, me) {
                    let k = key_from_row(r, &meta.columns);
                    if k.len() >= prefix.len() && k[..prefix.len()] == prefix[..] {
                        rows.push((slot, r.clone()));
                    }
                }
            }
            if let Some(f) = &scan.residual {
                let mut kept = Vec::with_capacity(rows.len());
                for (slot, r) in rows {
                    if truthy(&eval(f, &r, params)?) {
                        kept.push((slot, r));
                    }
                }
                rows = kept;
            }
            let feats = vec![examined as u64, rows.len() as u64];
            let mem = ctx.charge(EngineOu::IdxRangeScan, &feats);
            ctx.finish(EngineOu::IdxRangeScan, feats, mem);
            Ok(rows)
        }
        Access::Range { index, lo, hi } => {
            let lo_key: Option<IndexKey> = match lo {
                Some(e) => Some(vec![eval(e, &[], params)?]),
                None => None,
            };
            let hi_key: Option<IndexKey> = match hi {
                Some(e) => Some(vec![eval(e, &[], params)?]),
                None => None,
            };
            ctx.begin(EngineOu::IdxRangeScan);
            let meta = ctx.catalog.index(*index);
            let (slots, examined) =
                ctx.indexes[index.0 as usize].range(lo_key.as_ref(), hi_key.as_ref());
            let table = ctx.table(scan.table);
            let mut rows = Vec::new();
            for slot in slots {
                if let Some(r) = table.read(slot, read_ts, me) {
                    let k = key_from_row(r, &meta.columns);
                    let lo_ok = lo_key.as_ref().is_none_or(|l| k >= *l);
                    let hi_ok = hi_key.as_ref().is_none_or(|h| k <= *h);
                    if lo_ok && hi_ok {
                        rows.push((slot, r.clone()));
                    }
                }
            }
            if let Some(f) = &scan.residual {
                let mut kept = Vec::with_capacity(rows.len());
                for (slot, r) in rows {
                    if truthy(&eval(f, &r, params)?) {
                        kept.push((slot, r));
                    }
                }
                rows = kept;
            }
            let feats = vec![examined as u64, rows.len() as u64];
            let mem = ctx.charge(EngineOu::IdxRangeScan, &feats);
            ctx.finish(EngineOu::IdxRangeScan, feats, mem);
            Ok(rows)
        }
    }
}

fn exec_insert(
    ctx: &mut ExecCtx<'_>,
    table_id: crate::catalog::TableId,
    row_exprs: &[Vec<PExpr>],
    params: &[Value],
) -> Result<ExecOutcome, ExecError> {
    let tok = ctx.obs_enter();
    ctx.begin(EngineOu::Insert);
    let meta = ctx.catalog.table(table_id);
    let index_metas = ctx.catalog.table_indexes(table_id);
    let mut total_bytes = 0u64;
    let mut inserted = 0u64;
    for exprs in row_exprs {
        let mut row: Row = exprs
            .iter()
            .map(|e| eval(e, &[], params))
            .collect::<Result<_, _>>()?;
        coerce_row(&mut row, &meta.schema);
        // Unique-constraint enforcement.
        for im in &index_metas {
            if !im.unique {
                continue;
            }
            let key = key_from_row(&row, &im.columns);
            let (slots, _) = ctx.indexes[im.id.0 as usize].get(&key);
            let table = &ctx.tables[table_id.0 as usize];
            for slot in slots {
                if let Some(existing) = table.read(slot, ctx.txn.read_ts, ctx.txn.id) {
                    if key_from_row(existing, &im.columns) == key {
                        // Still finish the marker triple before erroring so
                        // the collector state machine stays consistent.
                        let feats = vec![inserted, total_bytes, index_metas.len() as u64];
                        ctx.finish(EngineOu::Insert, feats, total_bytes);
                        ctx.obs_exit(tok, inserted);
                        return Err(ExecError::UniqueViolation(im.name.clone()));
                    }
                }
            }
        }
        let bytes = row_bytes(&row) as u64;
        let slot = ctx.tables[table_id.0 as usize].insert(row.clone(), ctx.txn.id);
        for im in &index_metas {
            ctx.indexes[im.id.0 as usize].insert(key_from_row(&row, &im.columns), slot);
        }
        ctx.txns.log_write(
            ctx.txn,
            UndoRef {
                table: table_id,
                slot,
                redo_bytes: bytes + 32,
            },
        );
        total_bytes += bytes;
        inserted += 1;
    }
    let feats = vec![inserted, total_bytes, index_metas.len() as u64];
    let mem = ctx.charge(EngineOu::Insert, &feats);
    ctx.finish(EngineOu::Insert, feats, mem.max(total_bytes));
    ctx.obs_exit(tok, inserted);
    Ok(ExecOutcome {
        rows: Vec::new(),
        rows_affected: inserted,
    })
}

fn exec_update(
    ctx: &mut ExecCtx<'_>,
    scan: &ScanNode,
    sets: &[(usize, PExpr)],
    params: &[Value],
) -> Result<ExecOutcome, ExecError> {
    // The child scan runs first (emitting its own OUs); the UPDATE OU
    // covers only the update work itself so its features explain its
    // metrics — the OU-decomposition principle of §2.1.
    let hdr = ctx.obs_enter();
    let run_result = {
        let scan_tok = ctx.obs_enter();
        let targets = exec_scan(ctx, scan, params);
        ctx.obs_exit(scan_tok, targets.as_ref().map_or(0, |t| t.len() as u64));
        ctx.begin(EngineOu::Update);
        match targets {
            Err(e) => Err(e),
            Ok(targets) => {
                let schema = ctx.catalog.table(scan.table).schema.clone();
                let index_metas: Vec<_> = ctx
                    .catalog
                    .table_indexes(scan.table)
                    .into_iter()
                    .cloned()
                    .collect();
                let mut bytes = 0u64;
                let mut touched = 0u64;
                let mut n = 0u64;
                let mut err = None;
                for (slot, old) in targets {
                    let mut new = old.clone();
                    let mut eval_err = None;
                    for (col, e) in sets {
                        match eval(e, &old, params) {
                            Ok(v) => new[*col] = v,
                            Err(e) => {
                                eval_err = Some(e);
                                break;
                            }
                        }
                    }
                    if let Some(e) = eval_err {
                        err = Some(e);
                        break;
                    }
                    coerce_row(&mut new, &schema);
                    if ctx.tables[scan.table.0 as usize]
                        .update(slot, new.clone(), ctx.txn.id)
                        .is_err()
                    {
                        err = Some(ExecError::Conflict);
                        break;
                    }
                    for im in &index_metas {
                        let old_key = key_from_row(&old, &im.columns);
                        let new_key = key_from_row(&new, &im.columns);
                        if old_key != new_key {
                            // Stale old-key entries are lazily re-checked
                            // by scans and reclaimed by GC; insert the
                            // fresh key now.
                            ctx.indexes[im.id.0 as usize].insert(new_key, slot);
                            touched += 1;
                        }
                    }
                    let b = row_bytes(&new) as u64;
                    ctx.txns.log_write(
                        ctx.txn,
                        UndoRef {
                            table: scan.table,
                            slot,
                            redo_bytes: b + 32,
                        },
                    );
                    bytes += b;
                    n += 1;
                }
                match err {
                    Some(e) => Err(e),
                    None => Ok((n, bytes, touched)),
                }
            }
        }
    };
    match run_result {
        Ok((n, bytes, touched)) => {
            let feats = vec![n, bytes, touched.max(1)];
            let mem = ctx.charge(EngineOu::Update, &feats);
            ctx.finish(EngineOu::Update, feats, mem);
            ctx.obs_exit(hdr, n);
            Ok(ExecOutcome {
                rows: Vec::new(),
                rows_affected: n,
            })
        }
        Err(e) => {
            let feats = vec![0, 0, 0];
            ctx.finish(EngineOu::Update, feats, 0);
            ctx.obs_exit(hdr, 0);
            Err(e)
        }
    }
}

fn exec_delete(
    ctx: &mut ExecCtx<'_>,
    scan: &ScanNode,
    params: &[Value],
) -> Result<ExecOutcome, ExecError> {
    let hdr = ctx.obs_enter();
    let scan_tok = ctx.obs_enter();
    let targets = exec_scan(ctx, scan, params);
    ctx.obs_exit(scan_tok, targets.as_ref().map_or(0, |t| t.len() as u64));
    ctx.begin(EngineOu::Delete);
    let targets = match targets {
        Ok(t) => t,
        Err(e) => {
            ctx.finish(EngineOu::Delete, vec![0, 0], 0);
            ctx.obs_exit(hdr, 0);
            return Err(e);
        }
    };
    let n_indexes = ctx.catalog.table_indexes(scan.table).len() as u64;
    let mut n = 0u64;
    let mut conflict = false;
    for (slot, row) in targets {
        if ctx.tables[scan.table.0 as usize]
            .delete(slot, ctx.txn.id)
            .is_err()
        {
            conflict = true;
            break;
        }
        ctx.txns.log_write(
            ctx.txn,
            UndoRef {
                table: scan.table,
                slot,
                redo_bytes: row_bytes(&row) as u64 / 4 + 32,
            },
        );
        n += 1;
    }
    let feats = vec![n, n_indexes];
    let mem = ctx.charge(EngineOu::Delete, &feats);
    ctx.finish(EngineOu::Delete, feats, mem);
    ctx.obs_exit(hdr, n);
    if conflict {
        Err(ExecError::Conflict)
    } else {
        Ok(ExecOutcome {
            rows: Vec::new(),
            rows_affected: n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Schema;

    fn i(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn eval_arithmetic_and_coercion() {
        let row = vec![i(10), Value::Float(2.5)];
        let e = PExpr::bin(PExpr::Col(0), BinOp::Add, PExpr::Col(1));
        assert_eq!(eval(&e, &row, &[]).unwrap(), Value::Float(12.5));
        let e = PExpr::bin(PExpr::Col(0), BinOp::Mul, PExpr::Lit(i(3)));
        assert_eq!(eval(&e, &row, &[]).unwrap(), i(30));
        let e = PExpr::bin(PExpr::Param(0), BinOp::Sub, PExpr::Lit(i(1)));
        assert_eq!(eval(&e, &row, &[i(5)]).unwrap(), i(4));
    }

    #[test]
    fn eval_comparisons_and_logic() {
        let row = vec![i(10)];
        let lt = PExpr::bin(PExpr::Col(0), BinOp::Lt, PExpr::Lit(i(20)));
        let gt = PExpr::bin(PExpr::Col(0), BinOp::Gt, PExpr::Lit(i(20)));
        assert_eq!(eval(&lt, &row, &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval(&gt, &row, &[]).unwrap(), Value::Bool(false));
        let and = PExpr::bin(lt.clone(), BinOp::And, gt.clone());
        let or = PExpr::bin(lt, BinOp::Or, gt);
        assert_eq!(eval(&and, &row, &[]).unwrap(), Value::Bool(false));
        assert_eq!(eval(&or, &row, &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn eval_errors_are_reported_not_panics() {
        assert!(matches!(
            eval(&PExpr::Col(5), &[], &[]),
            Err(ExecError::Eval(_))
        ));
        assert!(matches!(
            eval(&PExpr::Param(2), &[], &[]),
            Err(ExecError::Eval(_))
        ));
        let bad = PExpr::bin(
            PExpr::Lit(Value::Text("x".into())),
            BinOp::Add,
            PExpr::Lit(i(1)),
        );
        assert!(matches!(eval(&bad, &[], &[]), Err(ExecError::Eval(_))));
    }

    #[test]
    fn truthiness_treats_null_and_nonbool_as_false() {
        assert!(!truthy(&Value::Null));
        assert!(!truthy(&i(1)));
        assert!(!truthy(&Value::Bool(false)));
        assert!(truthy(&Value::Bool(true)));
    }

    #[test]
    fn coerce_row_widens_ints_for_float_columns() {
        let schema = Schema::new(&[("a", DataType::Int), ("b", DataType::Float)]);
        let mut row = vec![i(1), i(2)];
        coerce_row(&mut row, &schema);
        assert_eq!(row, vec![i(1), Value::Float(2.0)]);
    }

    #[test]
    fn agg_states_compute_sql_semantics() {
        // COUNT counts rows including nulls; SUM/AVG/MIN/MAX skip nulls.
        let mut count = AggState::new(AggFunc::Count);
        let mut sum = AggState::new(AggFunc::Sum);
        let mut avg = AggState::new(AggFunc::Avg);
        let mut min = AggState::new(AggFunc::Min);
        let mut max = AggState::new(AggFunc::Max);
        for v in [i(4), Value::Null, i(10)] {
            count.update(Some(&v));
            sum.update(Some(&v));
            avg.update(Some(&v));
            min.update(Some(&v));
            max.update(Some(&v));
        }
        assert_eq!(count.finish(), i(3));
        assert_eq!(sum.finish(), i(14));
        assert_eq!(avg.finish(), Value::Float(7.0));
        assert_eq!(min.finish(), i(4));
        assert_eq!(max.finish(), i(10));
    }

    #[test]
    fn empty_aggregates_yield_null_and_zero() {
        assert_eq!(AggState::new(AggFunc::Count).finish(), i(0));
        assert_eq!(AggState::new(AggFunc::Sum).finish(), Value::Null);
        assert_eq!(AggState::new(AggFunc::Avg).finish(), Value::Null);
        assert_eq!(AggState::new(AggFunc::Min).finish(), Value::Null);
    }

    #[test]
    fn float_sum_stays_float() {
        let mut sum = AggState::new(AggFunc::Sum);
        sum.update(Some(&Value::Float(1.5)));
        sum.update(Some(&i(2)));
        assert_eq!(sum.finish(), Value::Float(3.5));
    }
}
