//! Per-statement execution observation: actual virtual-clock cost per
//! plan node and per OU.
//!
//! When a [`StmtObs`] is attached to the [`ExecCtx`](super::ExecCtx),
//! the executor assigns each plan node an index in *pre-order execution
//! order* — the same order [`plan::explain`](super::plan::explain)
//! renders operator lines — and brackets the node's inclusive work with
//! virtual-clock reads. Every [`ExecCtx::charge`](super::ExecCtx) call
//! additionally records the OU's name, its modeled elapsed ns, and the
//! feature vector it was charged with, attributed to the innermost open
//! node (or to the statement as a whole when no node is open, e.g. the
//! Output OU).
//!
//! Observation is *clock-neutral*: it only reads `Kernel::now` and
//! pushes into vectors — it never charges the session task, so the
//! training samples a traced workload produces are bit-identical whether
//! statement observation is on or off. The accounting cost of the
//! bookkeeping is charged separately (`stmt_fingerprint_ns` /
//! `stmt_record_ns` on the Processor task at pump cadence, and
//! `explain_analyze_node_ns` on the session task for EXPLAIN ANALYZE).

/// Observed actuals for one plan node.
#[derive(Debug, Clone, Default)]
pub struct NodeObs {
    /// Inclusive virtual-clock ns (children included), summed over loops.
    pub ns: f64,
    /// Rows produced (rows affected for DML header nodes).
    pub rows: u64,
    /// Times the node was entered.
    pub loops: u64,
}

/// One OU charge observed during statement execution.
#[derive(Debug, Clone)]
pub struct OuCharge {
    /// OU name (e.g. `seq_scan`).
    pub name: &'static str,
    /// Modeled elapsed ns the charge advanced the session clock by.
    pub ns: f64,
    /// Feature vector as charged (empty unless
    /// [`StmtObs::keep_features`] was set).
    pub features: Vec<u64>,
    /// Index of the innermost open node when the charge landed, or
    /// `None` for statement-level charges (e.g. the Output OU).
    pub node: Option<usize>,
}

/// Observed actuals for one statement execution.
///
/// The buffer is reusable: [`StmtObs::reset`] clears it while keeping
/// vector capacity, so the engine can pool one instance across the
/// per-statement hot path instead of reallocating per execution.
#[derive(Debug, Clone, Default)]
pub struct StmtObs {
    /// One entry per plan node, indexed in pre-order execution order.
    pub nodes: Vec<NodeObs>,
    /// OU charges in the order they landed.
    pub ou: Vec<OuCharge>,
    /// Open nodes: (node index, entry clock).
    stack: Vec<(usize, f64)>,
    /// Copy feature vectors into [`Self::ou`]. Features feed per-OU
    /// model predictions, so they are only worth the per-charge
    /// allocation when someone will predict from them (a live model is
    /// installed, or the statement is an EXPLAIN ANALYZE).
    pub keep_features: bool,
}

impl StmtObs {
    /// An observation buffer; `keep_features` controls whether per-OU
    /// feature vectors are retained (see the field docs).
    pub fn new(keep_features: bool) -> StmtObs {
        StmtObs {
            keep_features,
            ..StmtObs::default()
        }
    }

    /// Clear observations while retaining vector capacity, readying the
    /// buffer for the next statement.
    pub fn reset(&mut self, keep_features: bool) {
        self.nodes.clear();
        self.ou.clear();
        self.stack.clear();
        self.keep_features = keep_features;
    }

    /// Open a new node at clock `now`; returns its index.
    pub fn enter(&mut self, now: f64) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(NodeObs {
            loops: 1,
            ..NodeObs::default()
        });
        self.stack.push((idx, now));
        idx
    }

    /// Close node `idx` at clock `now` with `rows` produced.
    pub fn exit(&mut self, idx: usize, now: f64, rows: u64) {
        if let Some((top, t0)) = self.stack.pop() {
            debug_assert_eq!(top, idx, "node enter/exit must nest");
            let n = &mut self.nodes[idx];
            n.ns += now - t0;
            n.rows = rows;
        }
    }

    /// Record an OU charge, attributed to the innermost open node.
    pub fn record_ou(&mut self, name: &'static str, ns: f64, features: &[u64]) {
        let features = if self.keep_features {
            features.to_vec()
        } else {
            Vec::new()
        };
        let node = self.stack.last().map(|&(node, _)| node);
        self.ou.push(OuCharge {
            name,
            ns,
            features,
            node,
        });
    }

    /// OU charges attributed to node `idx` (children excluded).
    pub fn node_charges(&self, idx: usize) -> impl Iterator<Item = &OuCharge> {
        self.ou.iter().filter(move |c| c.node == Some(idx))
    }

    /// Total actual ns summed over all OU charges (the statement's
    /// OU-accounted cost — what `ts_stat_ou` sees).
    pub fn ou_total_ns(&self) -> f64 {
        self.ou.iter().map(|c| c.ns).sum()
    }

    /// Per-OU actual-ns totals, sorted by OU name. A statement charges
    /// a handful of distinct OUs at most, so a linear merge beats a map
    /// on this per-statement path.
    pub fn ou_breakdown(&self) -> Vec<(&'static str, f64)> {
        let mut out = Vec::new();
        self.ou_breakdown_into(&mut out);
        out
    }

    /// [`Self::ou_breakdown`] into a caller-supplied buffer (cleared
    /// first) so the hot path can reuse its capacity.
    pub fn ou_breakdown_into(&self, out: &mut Vec<(&'static str, f64)>) {
        out.clear();
        for c in &self.ou {
            match out.iter_mut().find(|(n, _)| *n == c.name) {
                Some((_, acc)) => *acc += c.ns,
                None => out.push((c.name, c.ns)),
            }
        }
        out.sort_unstable_by_key(|(n, _)| *n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_attributes_ous_to_innermost_open_node() {
        let mut o = StmtObs::default();
        let root = o.enter(0.0);
        let child = o.enter(10.0);
        o.record_ou("seq_scan", 50.0, &[100, 8]);
        o.exit(child, 70.0, 42);
        o.record_ou("hash_join_build", 30.0, &[42]);
        o.exit(root, 100.0, 7);
        o.record_ou("output", 5.0, &[7]);

        assert_eq!(o.nodes.len(), 2);
        let root_ous: Vec<&str> = o.node_charges(root).map(|c| c.name).collect();
        let child_ous: Vec<&str> = o.node_charges(child).map(|c| c.name).collect();
        assert_eq!(root_ous, ["hash_join_build"]);
        assert_eq!(child_ous, ["seq_scan"]);
        // Inclusive: parent window covers the child's.
        assert!(o.nodes[root].ns >= o.nodes[child].ns);
        assert_eq!(o.nodes[root].rows, 7);
        assert_eq!(o.nodes[child].rows, 42);
        // The Output OU lands on no node (statement-level).
        assert_eq!(o.ou.len(), 3);
        assert_eq!(o.ou[2].node, None);
        assert!((o.ou_total_ns() - 85.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state_and_keeps_capacity() {
        let mut o = StmtObs::new(true);
        let n = o.enter(0.0);
        o.record_ou("seq_scan", 10.0, &[5]);
        o.exit(n, 10.0, 1);
        let node_cap = o.nodes.capacity();
        o.reset(false);
        assert!(o.nodes.is_empty() && o.ou.is_empty());
        assert!(!o.keep_features);
        assert!(o.nodes.capacity() >= node_cap);
        // Reused buffer observes a fresh statement from index 0.
        assert_eq!(o.enter(0.0), 0);
        o.record_ou("idx_lookup", 3.0, &[9]);
        assert!(o.ou[0].features.is_empty()); // keep_features now off
    }

    #[test]
    fn breakdown_merges_by_name() {
        let mut o = StmtObs::default();
        o.record_ou("filter", 10.0, &[1]);
        o.record_ou("seq_scan", 20.0, &[2, 3]);
        o.record_ou("filter", 5.0, &[4]);
        assert_eq!(o.ou_breakdown(), vec![("filter", 15.0), ("seq_scan", 20.0)]);
    }
}
