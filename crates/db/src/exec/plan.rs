//! Physical plans: name-resolved, access-path-selected statement forms.

use crate::catalog::{IndexId, TableId};
use crate::index::IndexKind;
use crate::sql::ast::{AggFunc, BinOp};
use crate::types::{DataType, Value};

/// A resolved expression: columns are positional offsets into the
/// operator's input row.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    Col(usize),
    Lit(Value),
    Param(usize),
    Bin(Box<PExpr>, BinOp, Box<PExpr>),
}

impl PExpr {
    pub fn bin(l: PExpr, op: BinOp, r: PExpr) -> PExpr {
        PExpr::Bin(Box::new(l), op, Box::new(r))
    }

    /// Conjunction of multiple predicates (`None` when empty).
    pub fn conjoin(mut preds: Vec<PExpr>) -> Option<PExpr> {
        let first = preds.pop()?;
        Some(
            preds
                .into_iter()
                .fold(first, |acc, p| PExpr::bin(acc, BinOp::And, p)),
        )
    }

    /// Does this expression reference any column?
    pub fn references_columns(&self) -> bool {
        match self {
            PExpr::Col(_) => true,
            PExpr::Lit(_) | PExpr::Param(_) => false,
            PExpr::Bin(l, _, r) => l.references_columns() || r.references_columns(),
        }
    }
}

/// How a scan reaches its tuples.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Full sequential scan.
    Full,
    /// Point lookup on a (hash or btree) index covering all key columns.
    Point { index: IndexId, key: Vec<PExpr> },
    /// Prefix scan on a composite btree index.
    Prefix { index: IndexId, key: Vec<PExpr> },
    /// Range scan on a single-column btree index.
    Range {
        index: IndexId,
        lo: Option<PExpr>,
        hi: Option<PExpr>,
    },
}

/// A table scan with residual filter.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanNode {
    pub table: TableId,
    pub access: Access,
    pub residual: Option<PExpr>,
}

/// Query plan operators.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    Scan(ScanNode),
    /// Scan of a `ts_stat_*` virtual introspection table: rows are
    /// materialized from the live telemetry registry at execution time
    /// (no storage, no index — always a full scan with a residual filter).
    VirtualScan {
        /// Canonical (lowercase) virtual table name.
        name: String,
        residual: Option<PExpr>,
    },
    HashJoin {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        /// Key expressions over the respective child outputs.
        left_key: PExpr,
        right_key: PExpr,
        /// Post-join filter over the concatenated row.
        residual: Option<PExpr>,
    },
    Aggregate {
        input: Box<PlanNode>,
        /// Grouping column offsets in the input.
        group_by: Vec<usize>,
        /// Aggregates: function + input column (None = COUNT(*)).
        aggs: Vec<(AggFunc, Option<usize>)>,
    },
    Sort {
        input: Box<PlanNode>,
        /// (column offset, descending).
        by: Vec<(usize, bool)>,
    },
    Limit {
        input: Box<PlanNode>,
        n: u64,
    },
    Project {
        input: Box<PlanNode>,
        exprs: Vec<PExpr>,
    },
}

impl PlanNode {
    /// Iterate the operators of the plan tree (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&PlanNode)) {
        f(self);
        match self {
            PlanNode::Scan(_) | PlanNode::VirtualScan { .. } => {}
            PlanNode::HashJoin { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            PlanNode::Aggregate { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. }
            | PlanNode::Project { input, .. } => input.walk(f),
        }
    }
}

/// A fully planned statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    CreateTable {
        name: String,
        columns: Vec<(String, DataType)>,
        primary_key: Vec<String>,
    },
    CreateIndex {
        name: String,
        table: TableId,
        columns: Vec<usize>,
        kind: IndexKind,
        unique: bool,
    },
    Insert {
        table: TableId,
        rows: Vec<Vec<PExpr>>,
    },
    Update {
        scan: ScanNode,
        /// (column offset, new-value expression over the old row).
        sets: Vec<(usize, PExpr)>,
    },
    Delete {
        scan: ScanNode,
    },
    Query {
        root: PlanNode,
    },
    Begin,
    Commit,
    Rollback,
    Explain {
        analyze: bool,
        inner: Box<Plan>,
    },
}

/// Render a physical plan as `EXPLAIN` output lines (one per operator,
/// indented by tree depth) — the human-readable plan description the
/// paper's §2.2 external collection approach decomposes into features.
pub fn explain(plan: &Plan, catalog: &crate::catalog::Catalog) -> Vec<String> {
    render(plan, catalog, &[])
}

/// Render the plan with a per-operator suffix appended to each operator
/// line. `annots` is indexed by the operator's *pre-order ordinal* — the
/// same order the executor assigns [`StmtObs`](super::obs::StmtObs) node
/// indices — so `annots[i]` lands on the operator that produced
/// `nodes[i]`. Detail lines (`Filter: …`) are never annotated. Missing
/// entries render unannotated.
pub fn explain_annotated(
    plan: &Plan,
    catalog: &crate::catalog::Catalog,
    annots: &[String],
) -> Vec<String> {
    render(plan, catalog, annots)
}

fn render(plan: &Plan, catalog: &crate::catalog::Catalog, annots: &[String]) -> Vec<String> {
    /// Annotation suffix for the next operator line (pre-order).
    fn tag(annots: &[String], ord: &mut usize) -> String {
        let s = annots.get(*ord).cloned().unwrap_or_default();
        *ord += 1;
        s
    }
    fn expr(e: &PExpr) -> String {
        match e {
            PExpr::Col(i) => format!("#{i}"),
            PExpr::Lit(v) => v.to_string(),
            PExpr::Param(p) => format!("${}", p + 1),
            PExpr::Bin(l, op, r) => format!("({} {op:?} {})", expr(l), expr(r)),
        }
    }
    fn scan(
        s: &ScanNode,
        catalog: &crate::catalog::Catalog,
        depth: usize,
        out: &mut Vec<String>,
        annots: &[String],
        ord: &mut usize,
    ) {
        let pad = "  ".repeat(depth);
        let table = &catalog.table(s.table).name;
        let line = match &s.access {
            Access::Full => format!("{pad}SeqScan on {table}"),
            Access::Point { index, key } => format!(
                "{pad}IndexPointLookup on {table} using {} key=[{}]",
                catalog.index(*index).name,
                key.iter().map(expr).collect::<Vec<_>>().join(", ")
            ),
            Access::Prefix { index, key } => format!(
                "{pad}IndexPrefixScan on {table} using {} prefix=[{}]",
                catalog.index(*index).name,
                key.iter().map(expr).collect::<Vec<_>>().join(", ")
            ),
            Access::Range { index, lo, hi } => format!(
                "{pad}IndexRangeScan on {table} using {} lo={} hi={}",
                catalog.index(*index).name,
                lo.as_ref().map(expr).unwrap_or_else(|| "-inf".into()),
                hi.as_ref().map(expr).unwrap_or_else(|| "+inf".into()),
            ),
        };
        out.push(line + &tag(annots, ord));
        if let Some(f) = &s.residual {
            out.push(format!("{}Filter: {}", "  ".repeat(depth + 1), expr(f)));
        }
    }
    fn node(
        n: &PlanNode,
        catalog: &crate::catalog::Catalog,
        depth: usize,
        out: &mut Vec<String>,
        annots: &[String],
        ord: &mut usize,
    ) {
        let pad = "  ".repeat(depth);
        match n {
            PlanNode::Scan(s) => scan(s, catalog, depth, out, annots, ord),
            PlanNode::VirtualScan { name, residual } => {
                out.push(format!("{pad}VirtualScan on {name}") + &tag(annots, ord));
                if let Some(f) = residual {
                    out.push(format!("{pad}  Filter: {}", expr(f)));
                }
            }
            PlanNode::HashJoin {
                left,
                right,
                left_key,
                right_key,
                residual,
            } => {
                out.push(
                    format!(
                        "{pad}HashJoin build_key={} probe_key={}",
                        expr(left_key),
                        expr(right_key)
                    ) + &tag(annots, ord),
                );
                if let Some(f) = residual {
                    out.push(format!("{pad}  Filter: {}", expr(f)));
                }
                node(left, catalog, depth + 1, out, annots, ord);
                node(right, catalog, depth + 1, out, annots, ord);
            }
            PlanNode::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                out.push(
                    format!(
                        "{pad}Aggregate group_by={group_by:?} aggs=[{}]",
                        aggs.iter()
                            .map(|(f, c)| match c {
                                Some(c) => format!("{}(#{c})", f.name()),
                                None => format!("{}(*)", f.name()),
                            })
                            .collect::<Vec<_>>()
                            .join(", ")
                    ) + &tag(annots, ord),
                );
                node(input, catalog, depth + 1, out, annots, ord);
            }
            PlanNode::Sort { input, by } => {
                out.push(format!("{pad}Sort by={by:?}") + &tag(annots, ord));
                node(input, catalog, depth + 1, out, annots, ord);
            }
            PlanNode::Limit { input, n } => {
                out.push(format!("{pad}Limit {n}") + &tag(annots, ord));
                node(input, catalog, depth + 1, out, annots, ord);
            }
            PlanNode::Project { input, exprs } => {
                out.push(
                    format!(
                        "{pad}Project [{}]",
                        exprs.iter().map(expr).collect::<Vec<_>>().join(", ")
                    ) + &tag(annots, ord),
                );
                node(input, catalog, depth + 1, out, annots, ord);
            }
        }
    }
    let mut out = Vec::new();
    let mut ord = 0usize;
    match plan {
        Plan::Query { root } => node(root, catalog, 0, &mut out, annots, &mut ord),
        Plan::Insert { table, rows } => out.push(
            format!(
                "Insert into {} ({} rows)",
                catalog.table(*table).name,
                rows.len()
            ) + &tag(annots, &mut ord),
        ),
        Plan::Update { scan: s, sets } => {
            out.push(
                format!(
                    "Update {} set=[{}]",
                    catalog.table(s.table).name,
                    sets.iter()
                        .map(|(c, e)| format!("#{c} = {}", expr(e)))
                        .collect::<Vec<_>>()
                        .join(", ")
                ) + &tag(annots, &mut ord),
            );
            scan(s, catalog, 1, &mut out, annots, &mut ord);
        }
        Plan::Delete { scan: s } => {
            out.push(
                format!("Delete from {}", catalog.table(s.table).name) + &tag(annots, &mut ord),
            );
            scan(s, catalog, 1, &mut out, annots, &mut ord);
        }
        other => out.push(format!("{other:?}")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjoin_builds_and_tree() {
        assert_eq!(PExpr::conjoin(vec![]), None);
        let one = PExpr::conjoin(vec![PExpr::Lit(Value::Bool(true))]).unwrap();
        assert_eq!(one, PExpr::Lit(Value::Bool(true)));
        let two = PExpr::conjoin(vec![PExpr::Col(0), PExpr::Col(1)]).unwrap();
        assert!(matches!(two, PExpr::Bin(_, BinOp::And, _)));
    }

    #[test]
    fn references_columns_detects() {
        assert!(PExpr::Col(0).references_columns());
        assert!(
            !PExpr::bin(PExpr::Lit(Value::Int(1)), BinOp::Add, PExpr::Param(0))
                .references_columns()
        );
    }

    #[test]
    fn walk_visits_all_nodes() {
        let plan = PlanNode::Limit {
            input: Box::new(PlanNode::Scan(ScanNode {
                table: TableId(0),
                access: Access::Full,
                residual: None,
            })),
            n: 5,
        };
        let mut count = 0;
        plan.walk(&mut |_| count += 1);
        assert_eq!(count, 2);
    }
}
