//! The engine's operating units (OUs) and their cost model.
//!
//! Every discrete unit of DBMS work is an OU with a marker triple around
//! it (paper §3.1). This module declares the OU catalog — name, owning
//! subsystem, input-feature schema — and the simulation cost model that
//! converts an OU's features into abstract work (instructions, working
//! set, allocated bytes) charged to the kernel.
//!
//! The cost formulas are the *ground truth* the behavior models must
//! learn. They are deliberately workload- and environment-sensitive in
//! the ways the paper's evaluation exploits: per-batch fixed costs in the
//! log serializer (group commit amortization), device-dependent disk
//! writes, cache-pressure terms in scans, and contention inflation under
//! concurrency (applied by the kernel).

use tscout::{OuId, Subsystem, TScout};

/// All OUs the NoiseTap engine is annotated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineOu {
    // Execution engine.
    SeqScan,
    IdxLookup,
    IdxRangeScan,
    Filter,
    HashJoinBuild,
    HashJoinProbe,
    AggBuild,
    Sort,
    Output,
    Insert,
    Update,
    Delete,
    /// Fused-pipeline wrapper (JIT mode, §5.2).
    Pipeline,
    // Networking.
    NetworkRead,
    NetworkWrite,
    // WAL.
    LogSerialize,
    DiskWrite,
    // Background.
    GcSweep,
    TxnCommit,
}

/// Number of OU kinds.
pub const ENGINE_OU_COUNT: usize = 19;

/// All OUs in index order.
pub const ALL_ENGINE_OUS: [EngineOu; ENGINE_OU_COUNT] = [
    EngineOu::SeqScan,
    EngineOu::IdxLookup,
    EngineOu::IdxRangeScan,
    EngineOu::Filter,
    EngineOu::HashJoinBuild,
    EngineOu::HashJoinProbe,
    EngineOu::AggBuild,
    EngineOu::Sort,
    EngineOu::Output,
    EngineOu::Insert,
    EngineOu::Update,
    EngineOu::Delete,
    EngineOu::Pipeline,
    EngineOu::NetworkRead,
    EngineOu::NetworkWrite,
    EngineOu::LogSerialize,
    EngineOu::DiskWrite,
    EngineOu::GcSweep,
    EngineOu::TxnCommit,
];

impl EngineOu {
    pub fn index(self) -> usize {
        ALL_ENGINE_OUS.iter().position(|o| *o == self).unwrap()
    }

    pub fn name(self) -> &'static str {
        match self {
            EngineOu::SeqScan => "seq_scan",
            EngineOu::IdxLookup => "idx_lookup",
            EngineOu::IdxRangeScan => "idx_range_scan",
            EngineOu::Filter => "filter",
            EngineOu::HashJoinBuild => "hash_join_build",
            EngineOu::HashJoinProbe => "hash_join_probe",
            EngineOu::AggBuild => "agg_build",
            EngineOu::Sort => "sort",
            EngineOu::Output => "output",
            EngineOu::Insert => "insert",
            EngineOu::Update => "update",
            EngineOu::Delete => "delete",
            EngineOu::Pipeline => "pipeline",
            EngineOu::NetworkRead => "network_read",
            EngineOu::NetworkWrite => "network_write",
            EngineOu::LogSerialize => "log_serialize",
            EngineOu::DiskWrite => "disk_write",
            EngineOu::GcSweep => "gc_sweep",
            EngineOu::TxnCommit => "txn_commit",
        }
    }

    pub fn subsystem(self) -> Subsystem {
        match self {
            EngineOu::NetworkRead | EngineOu::NetworkWrite => Subsystem::Networking,
            EngineOu::LogSerialize => Subsystem::LogSerializer,
            EngineOu::DiskWrite => Subsystem::DiskWriter,
            EngineOu::GcSweep => Subsystem::GarbageCollector,
            EngineOu::TxnCommit => Subsystem::Transactions,
            _ => Subsystem::ExecutionEngine,
        }
    }

    /// Input-feature schema (names double as documentation).
    pub fn feature_names(self) -> &'static [&'static str] {
        match self {
            EngineOu::SeqScan => &["tuples_examined", "avg_row_bytes"],
            EngineOu::IdxLookup => &["entries_examined", "index_depth", "matches"],
            EngineOu::IdxRangeScan => &["entries_examined", "matches"],
            EngineOu::Filter => &["tuples_in"],
            EngineOu::HashJoinBuild => &["rows", "bytes"],
            EngineOu::HashJoinProbe => &["probes", "matches"],
            EngineOu::AggBuild => &["rows", "groups"],
            EngineOu::Sort => &["rows", "bytes"],
            EngineOu::Output => &["rows", "bytes"],
            EngineOu::Insert => &["rows", "bytes", "num_indexes"],
            EngineOu::Update => &["rows", "bytes", "num_indexes"],
            EngineOu::Delete => &["rows", "num_indexes"],
            EngineOu::Pipeline => &["num_ous"],
            EngineOu::NetworkRead => &["bytes", "messages"],
            EngineOu::NetworkWrite => &["bytes", "messages"],
            EngineOu::LogSerialize => &["records", "bytes"],
            EngineOu::DiskWrite => &["bytes", "ios"],
            EngineOu::GcSweep => &["versions_pruned"],
            EngineOu::TxnCommit => &["writes"],
        }
    }

    pub fn n_features(self) -> usize {
        self.feature_names().len()
    }
}

/// The OU-id table filled in when TScout is attached.
#[derive(Debug, Clone)]
pub struct OuMap {
    ids: [OuId; ENGINE_OU_COUNT],
}

impl OuMap {
    /// Register every engine OU with a deployed TScout instance.
    pub fn register(ts: &mut TScout) -> OuMap {
        let mut ids = [OuId(0); ENGINE_OU_COUNT];
        for ou in ALL_ENGINE_OUS {
            ids[ou.index()] = ts.register_ou(ou.name(), ou.subsystem(), ou.n_features());
        }
        OuMap { ids }
    }

    pub fn id(&self, ou: EngineOu) -> OuId {
        self.ids[ou.index()]
    }
}

/// Abstract work an OU performs, fed to the kernel's charge APIs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Work {
    /// Dynamic instruction count.
    pub instructions: f64,
    /// Working-set bytes (drives LLC pressure).
    pub ws_bytes: u64,
    /// Bytes allocated — the user-level memory probe's value (§4.2).
    pub mem_bytes: u64,
}

/// The simulation cost model: features → abstract work.
pub fn work_for(ou: EngineOu, f: &[u64]) -> Work {
    let g = |i: usize| f.get(i).copied().unwrap_or(0) as f64;
    // Calibration note: constants target production-DBMS magnitudes on
    // the paper's hardware — a networked point query lands around
    // 25-40 us, a TPC-C NewOrder around 1 ms, so that marker/collection
    // overheads (hundreds of ns to a few us per sampled OU) sit in the
    // same proportion as the paper's Figs. 1/5.
    let (instructions, ws_bytes, mem_bytes) = match ou {
        EngineOu::SeqScan => {
            let (tuples, width) = (g(0), g(1));
            (
                2_000.0 + tuples * (120.0 + width / 2.0),
                (tuples * width) as u64,
                0,
            )
        }
        EngineOu::IdxLookup => {
            let (examined, depth, matches) = (g(0), g(1), g(2));
            (
                15_000.0 + 1_200.0 * examined + 2_500.0 * depth + 500.0 * matches,
                (examined * 512.0) as u64,
                0,
            )
        }
        EngineOu::IdxRangeScan => {
            let (examined, matches) = (g(0), g(1));
            (
                16_000.0 + 400.0 * examined + 500.0 * matches,
                (examined * 256.0) as u64,
                0,
            )
        }
        EngineOu::Filter => (1_500.0 + 80.0 * g(0), (g(0) * 64.0) as u64, 0),
        EngineOu::HashJoinBuild => {
            let (rows, bytes) = (g(0), g(1));
            (
                8_000.0 + 350.0 * rows + bytes,
                bytes as u64,
                (bytes as u64) + (rows as u64) * 16,
            )
        }
        EngineOu::HashJoinProbe => (
            8_000.0 + 300.0 * g(0) + 200.0 * g(1),
            (g(0) * 64.0) as u64,
            0,
        ),
        EngineOu::AggBuild => (
            6_000.0 + 250.0 * g(0) + 400.0 * g(1),
            (g(1) * 48.0) as u64,
            (g(1) * 48.0) as u64,
        ),
        EngineOu::Sort => {
            let rows = g(0).max(1.0);
            (
                4_000.0 + 220.0 * rows * rows.max(2.0).log2(),
                g(1) as u64,
                g(1) as u64,
            )
        }
        EngineOu::Output => (
            3_000.0 + 100.0 * g(0) + g(1) / 2.0,
            g(1) as u64,
            g(1) as u64,
        ),
        EngineOu::Insert => {
            let (rows, bytes, nidx) = (g(0), g(1), g(2));
            (
                rows * (9_000.0 + bytes / rows.max(1.0) + nidx * 2_500.0),
                bytes as u64,
                bytes as u64,
            )
        }
        EngineOu::Update => {
            let (rows, bytes, nidx) = (g(0), g(1), g(2));
            (
                rows * (10_000.0 + bytes / rows.max(1.0) + nidx * 3_000.0),
                bytes as u64,
                bytes as u64,
            )
        }
        EngineOu::Delete => (g(0) * (8_000.0 + g(1) * 2_200.0), 0, 0),
        EngineOu::Pipeline => (500.0, 0, 0),
        EngineOu::NetworkRead | EngineOu::NetworkWrite => {
            (8_000.0 + g(0) * 2.0, g(0) as u64, g(0) as u64)
        }
        // Group commit amortization: a large fixed cost per batch plus a
        // modest per-record cost — the per-record economics the offline
        // runners mispredict (paper Figs. 2/7/9).
        EngineOu::LogSerialize => {
            let (records, bytes) = (g(0), g(1));
            (
                60_000.0 + 6_000.0 * records + bytes * 3.0,
                bytes as u64,
                bytes as u64,
            )
        }
        // Device time is charged separately via the kernel's I/O model;
        // this is only the submission-path CPU.
        EngineOu::DiskWrite => (15_000.0 + g(0) / 16.0, 4096, 0),
        EngineOu::GcSweep => (3_000.0 + 600.0 * g(0), (g(0) * 128.0) as u64, 0),
        EngineOu::TxnCommit => (12_000.0 + 300.0 * g(0), 2048, 0),
    };
    Work {
        instructions,
        ws_bytes,
        mem_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ou_has_distinct_name_and_index() {
        let mut names = std::collections::HashSet::new();
        for (i, ou) in ALL_ENGINE_OUS.iter().enumerate() {
            assert_eq!(ou.index(), i);
            assert!(names.insert(ou.name()));
            assert!(ou.n_features() >= 1);
        }
        assert_eq!(names.len(), ENGINE_OU_COUNT);
    }

    #[test]
    fn subsystem_assignment_matches_paper() {
        assert_eq!(EngineOu::SeqScan.subsystem(), Subsystem::ExecutionEngine);
        assert_eq!(EngineOu::NetworkRead.subsystem(), Subsystem::Networking);
        assert_eq!(EngineOu::LogSerialize.subsystem(), Subsystem::LogSerializer);
        assert_eq!(EngineOu::DiskWrite.subsystem(), Subsystem::DiskWriter);
        assert_eq!(EngineOu::GcSweep.subsystem(), Subsystem::GarbageCollector);
        assert_eq!(EngineOu::TxnCommit.subsystem(), Subsystem::Transactions);
    }

    #[test]
    fn cost_model_scales_with_features() {
        let small = work_for(EngineOu::SeqScan, &[10, 100]);
        let big = work_for(EngineOu::SeqScan, &[10_000, 100]);
        assert!(big.instructions > 100.0 * small.instructions / 2.0);
        assert!(big.ws_bytes > small.ws_bytes);
    }

    #[test]
    fn log_serializer_amortizes_per_record_cost() {
        let one = work_for(EngineOu::LogSerialize, &[1, 100]);
        let hundred = work_for(EngineOu::LogSerialize, &[100, 10_000]);
        let per_record_single = one.instructions / 1.0;
        let per_record_batched = hundred.instructions / 100.0;
        assert!(
            per_record_batched < per_record_single / 5.0,
            "group commit must amortize: single {per_record_single}, batched {per_record_batched}"
        );
    }

    #[test]
    fn sort_is_superlinear() {
        let a = work_for(EngineOu::Sort, &[1_000, 8_000]).instructions;
        let b = work_for(EngineOu::Sort, &[10_000, 80_000]).instructions;
        assert!(b > 10.0 * a, "n log n growth expected");
    }

    #[test]
    fn missing_features_default_to_zero() {
        let w = work_for(EngineOu::IdxLookup, &[]);
        assert!(w.instructions > 0.0);
    }

    #[test]
    fn memory_probe_values_present_where_allocations_happen() {
        assert!(work_for(EngineOu::HashJoinBuild, &[100, 6400]).mem_bytes > 0);
        assert!(work_for(EngineOu::Sort, &[100, 6400]).mem_bytes > 0);
        assert_eq!(work_for(EngineOu::Filter, &[100]).mem_bytes, 0);
    }
}
