//! Recursive-descent SQL parser.

use crate::index::IndexKind;
use crate::types::{DataType, Value};

use super::ast::{AggFunc, BinOp, Expr, Projection, SelectStmt, Stmt, TableRef};
use super::lexer::{lex, LexError, Token};

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    Lex(LexError),
    Unexpected {
        got: Option<Token>,
        expected: String,
    },
    Trailing(Token),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                got: Some(t),
                expected,
            } => {
                write!(f, "unexpected token {t}; expected {expected}")
            }
            ParseError::Unexpected {
                got: None,
                expected,
            } => {
                write!(f, "unexpected end of input; expected {expected}")
            }
            ParseError::Trailing(t) => write!(f, "trailing input starting at {t}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Stmt, ParseError> {
    let tokens = lex(sql).map_err(ParseError::Lex)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&Token::Semicolon);
    if let Some(t) = p.peek() {
        return Err(ParseError::Trailing(t.clone()));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, expected: &str) -> Result<T, ParseError> {
        Err(ParseError::Unexpected {
            got: self.peek().cloned(),
            expected: expected.into(),
        })
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume a keyword (case-insensitive identifier) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(&format!("keyword {kw}"))
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        if self.eat_if(&t) {
            Ok(())
        } else {
            self.err(&t.to_string())
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.to_lowercase()),
            got => Err(ParseError::Unexpected {
                got,
                expected: "identifier".into(),
            }),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("explain") {
            let analyze = self.eat_kw("analyze");
            return Ok(Stmt::Explain {
                analyze,
                stmt: Box::new(self.statement()?),
            });
        }
        if self.eat_kw("create") {
            return self.create();
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("select") {
            return Ok(Stmt::Select(self.select()?));
        }
        if self.eat_kw("update") {
            return self.update();
        }
        if self.eat_kw("delete") {
            return self.delete();
        }
        if self.eat_kw("begin") || self.eat_kw("start") {
            self.eat_kw("transaction");
            return Ok(Stmt::Begin);
        }
        if self.eat_kw("commit") {
            return Ok(Stmt::Commit);
        }
        if self.eat_kw("rollback") || self.eat_kw("abort") {
            return Ok(Stmt::Rollback);
        }
        self.err("a statement keyword")
    }

    fn data_type(&mut self) -> Result<DataType, ParseError> {
        let name = self.ident()?;
        // Swallow optional length args, e.g. VARCHAR(16).
        if self.eat_if(&Token::LParen) {
            while !self.eat_if(&Token::RParen) {
                if self.next().is_none() {
                    return self.err(")");
                }
            }
        }
        match name.as_str() {
            "int" | "integer" | "bigint" | "smallint" => Ok(DataType::Int),
            "float" | "double" | "real" | "decimal" | "numeric" => Ok(DataType::Float),
            "text" | "varchar" | "char" | "string" => Ok(DataType::Text),
            "bool" | "boolean" => Ok(DataType::Bool),
            other => self.err(&format!("a data type (got {other})")),
        }
    }

    fn create(&mut self) -> Result<Stmt, ParseError> {
        let unique = self.eat_kw("unique");
        if self.eat_kw("table") {
            let name = self.ident()?;
            self.expect(Token::LParen)?;
            let mut columns = Vec::new();
            let mut primary_key = Vec::new();
            loop {
                if self.eat_kw("primary") {
                    self.expect_kw("key")?;
                    self.expect(Token::LParen)?;
                    loop {
                        primary_key.push(self.ident()?);
                        if !self.eat_if(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(Token::RParen)?;
                } else {
                    let col = self.ident()?;
                    let dtype = self.data_type()?;
                    if self.eat_kw("primary") {
                        self.expect_kw("key")?;
                        primary_key.push(col.clone());
                    }
                    self.eat_kw("not").then(|| self.eat_kw("null"));
                    columns.push((col, dtype));
                }
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            return Ok(Stmt::CreateTable {
                name,
                columns,
                primary_key,
            });
        }
        if self.eat_kw("index") {
            let name = self.ident()?;
            self.expect_kw("on")?;
            let table = self.ident()?;
            self.expect(Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.ident()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            let kind = if self.eat_kw("using") {
                let k = self.ident()?;
                match k.as_str() {
                    "hash" => IndexKind::Hash,
                    "btree" => IndexKind::BTree,
                    other => return self.err(&format!("index kind (got {other})")),
                }
            } else {
                IndexKind::BTree
            };
            return Ok(Stmt::CreateIndex {
                name,
                table,
                columns,
                kind,
                unique,
            });
        }
        self.err("TABLE or INDEX after CREATE")
    }

    fn insert(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        // Optional column list is accepted but must match schema order.
        if self.eat_if(&Token::LParen) {
            while !self.eat_if(&Token::RParen) {
                if self.next().is_none() {
                    return self.err(")");
                }
            }
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            rows.push(row);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(Stmt::Insert { table, rows })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            // Bare alias, unless it's a clause keyword.
            const CLAUSES: [&str; 9] = [
                "where", "join", "inner", "group", "order", "limit", "on", "for", "set",
            ];
            if CLAUSES.iter().any(|c| s.eq_ignore_ascii_case(c)) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        let mut projections = Vec::new();
        loop {
            if self.eat_if(&Token::Star) {
                projections.push(Projection::Star);
            } else {
                projections.push(Projection::Expr(self.expr()?));
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("from")?;
        let from = self.table_ref()?;
        let mut join = None;
        if self.eat_kw("inner") || self.peek_kw("join") {
            self.expect_kw("join")?;
            let right = self.table_ref()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            join = Some((right, on));
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.qualified_column_name()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let col = self.qualified_column_name()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((col, desc));
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                got => {
                    return Err(ParseError::Unexpected {
                        got,
                        expected: "LIMIT count".into(),
                    })
                }
            }
        } else {
            None
        };
        let for_update = if self.eat_kw("for") {
            self.expect_kw("update")?;
            true
        } else {
            false
        };
        Ok(SelectStmt {
            projections,
            from,
            join,
            where_clause,
            group_by,
            order_by,
            limit,
            for_update,
        })
    }

    /// `col` or `tbl.col` — returns the bare column name (qualifier is
    /// redundant in GROUP/ORDER for our two-table scope).
    fn qualified_column_name(&mut self) -> Result<String, ParseError> {
        let first = self.ident()?;
        if self.eat_if(&Token::Dot) {
            self.ident()
        } else {
            Ok(first)
        }
    }

    fn update(&mut self) -> Result<Stmt, ParseError> {
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(Token::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("from")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete {
            table,
            where_clause,
        })
    }

    // -- expressions, loosest to tightest ---------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(lhs, BinOp::Or, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_kw("and") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(lhs, BinOp::And, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(Expr::bin(lhs, op, rhs));
        }
        // BETWEEN a AND b desugars to two comparisons.
        if self.eat_kw("between") {
            let lo = self.add_expr()?;
            self.expect_kw("and")?;
            let hi = self.add_expr()?;
            return Ok(Expr::bin(
                Expr::bin(lhs.clone(), BinOp::Ge, lo),
                BinOp::And,
                Expr::bin(lhs, BinOp::Le, hi),
            ));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_if(&Token::Plus) {
                lhs = Expr::bin(lhs, BinOp::Add, self.mul_expr()?);
            } else if self.eat_if(&Token::Minus) {
                lhs = Expr::bin(lhs, BinOp::Sub, self.mul_expr()?);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.primary()?;
        while self.eat_if(&Token::Star) {
            lhs = Expr::bin(lhs, BinOp::Mul, self.primary()?);
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Token::Float(x)) => Ok(Expr::Literal(Value::Float(x))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Param(p)) => Ok(Expr::Param(p)),
            Some(Token::Minus) => match self.next() {
                Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(-i))),
                Some(Token::Float(x)) => Ok(Expr::Literal(Value::Float(-x))),
                got => Err(ParseError::Unexpected {
                    got,
                    expected: "numeric literal".into(),
                }),
            },
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                let lower = name.to_lowercase();
                // Aggregate?
                let agg = match lower.as_str() {
                    "count" => Some(AggFunc::Count),
                    "sum" => Some(AggFunc::Sum),
                    "avg" => Some(AggFunc::Avg),
                    "min" => Some(AggFunc::Min),
                    "max" => Some(AggFunc::Max),
                    "true" => return Ok(Expr::Literal(Value::Bool(true))),
                    "false" => return Ok(Expr::Literal(Value::Bool(false))),
                    "null" => return Ok(Expr::Literal(Value::Null)),
                    _ => None,
                };
                if let Some(agg) = agg {
                    if self.peek() == Some(&Token::LParen) {
                        self.pos += 1;
                        let arg = if self.eat_if(&Token::Star) {
                            None
                        } else {
                            Some(self.qualified_column_name()?)
                        };
                        self.expect(Token::RParen)?;
                        return Ok(Expr::Agg(agg, arg));
                    }
                }
                if self.eat_if(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column(Some(lower), col));
                }
                Ok(Expr::Column(None, lower))
            }
            got => Err(ParseError::Unexpected {
                got,
                expected: "an expression".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table_inline_and_table_level_pk() {
        let s = parse("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(16), w FLOAT)").unwrap();
        match s {
            Stmt::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[1], ("name".into(), DataType::Text));
                assert_eq!(primary_key, vec!["id"]);
            }
            other => panic!("{other:?}"),
        }
        let s = parse("CREATE TABLE t2 (a INT, b INT, PRIMARY KEY (a, b))").unwrap();
        match s {
            Stmt::CreateTable { primary_key, .. } => assert_eq!(primary_key, vec!["a", "b"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_index() {
        let s = parse("CREATE UNIQUE INDEX ix ON t (a, b) USING HASH").unwrap();
        match s {
            Stmt::CreateIndex {
                name,
                table,
                columns,
                kind,
                unique,
            } => {
                assert_eq!((name.as_str(), table.as_str()), ("ix", "t"));
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(kind, IndexKind::Hash);
                assert!(unique);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_multi_row_with_params() {
        let s = parse("INSERT INTO t VALUES ($1, 'x', 1.5), ($2, NULL, -2)").unwrap();
        match s {
            Stmt::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0], Expr::Param(0));
                assert_eq!(rows[1][2], Expr::Literal(Value::Int(-2)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_select_with_everything() {
        let s = parse(
            "SELECT o.id, count(*) FROM orders o JOIN lines l ON o.id = l.oid \
             WHERE o.ts BETWEEN $1 AND $2 AND l.qty > 3 \
             GROUP BY o.id ORDER BY o.id DESC LIMIT 10",
        )
        .unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert_eq!(sel.projections.len(), 2);
        assert_eq!(sel.from.binding(), "o");
        assert!(sel.join.is_some());
        assert_eq!(sel.group_by, vec!["id"]);
        assert_eq!(sel.order_by, vec![("id".into(), true)]);
        assert_eq!(sel.limit, Some(10));
        // BETWEEN desugared into a conjunction.
        assert!(sel.where_clause.unwrap().conjuncts().len() >= 3);
    }

    #[test]
    fn parses_select_for_update() {
        let Stmt::Select(sel) = parse("SELECT * FROM t WHERE id = $1 FOR UPDATE").unwrap() else {
            panic!()
        };
        assert!(sel.for_update);
    }

    #[test]
    fn parses_update_and_delete() {
        let s = parse("UPDATE acct SET bal = bal + $1, touched = true WHERE id = $2").unwrap();
        match s {
            Stmt::Update {
                table,
                sets,
                where_clause,
            } => {
                assert_eq!(table, "acct");
                assert_eq!(sets.len(), 2);
                assert!(where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse("DELETE FROM t").unwrap(),
            Stmt::Delete {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn parses_txn_control() {
        assert_eq!(parse("BEGIN").unwrap(), Stmt::Begin);
        assert_eq!(parse("START TRANSACTION").unwrap(), Stmt::Begin);
        assert_eq!(parse("COMMIT;").unwrap(), Stmt::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Stmt::Rollback);
        assert_eq!(parse("ABORT").unwrap(), Stmt::Rollback);
    }

    #[test]
    fn parses_explain_and_explain_analyze() {
        let s = parse("EXPLAIN SELECT * FROM t").unwrap();
        match s {
            Stmt::Explain { analyze, stmt } => {
                assert!(!analyze);
                assert!(matches!(*stmt, Stmt::Select(_)));
            }
            other => panic!("{other:?}"),
        }
        let s = parse("EXPLAIN ANALYZE UPDATE t SET a = 1").unwrap();
        match s {
            Stmt::Explain { analyze, stmt } => {
                assert!(analyze);
                assert!(matches!(*stmt, Stmt::Update { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let Stmt::Select(sel) = parse("SELECT a + b * 2 FROM t").unwrap() else {
            panic!()
        };
        let Projection::Expr(Expr::Binary(_, BinOp::Add, rhs)) = &sel.projections[0] else {
            panic!("add should be outermost")
        };
        assert!(matches!(**rhs, Expr::Binary(_, BinOp::Mul, _)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT 1 FROM t garbage garbage").is_err());
        assert!(matches!(
            parse("COMMIT extra"),
            Err(ParseError::Trailing(_))
        ));
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let e = parse("SELECT FROM").unwrap_err();
        assert!(e.to_string().contains("expected"));
        assert!(parse("CREATE VIEW v").is_err());
        assert!(parse("UPDATE t SET").is_err());
    }
}
