//! Statement fingerprinting for the statement-stats registry.
//!
//! A fingerprint is the statement's AST rendered back to canonical SQL
//! with every literal replaced by `?`. Because it is computed from the
//! parsed tree — where the lexer already lowercased identifiers and
//! discarded whitespace — `SELECT  V FROM T WHERE ID=42` and
//! `select v from t where id = 7` produce the same template, while any
//! structural difference (different columns, extra predicate, ORDER BY)
//! produces a distinct one. Parameters keep their `$n` positions: a
//! prepared statement and its literal-inlined equivalent collapse to the
//! same shape only up to literal positions, which is exactly
//! pg_stat_statements' behavior.

use crate::sql::ast::{BinOp, Expr, Projection, SelectStmt, Stmt};

/// Render a canonical, literal-normalized template for `stmt`.
pub fn fingerprint(stmt: &Stmt) -> String {
    let mut out = String::with_capacity(64);
    render_stmt(stmt, &mut out);
    out
}

fn render_stmt(stmt: &Stmt, out: &mut String) {
    match stmt {
        Stmt::CreateTable { name, .. } => {
            out.push_str("create table ");
            out.push_str(name);
        }
        Stmt::CreateIndex { name, table, .. } => {
            out.push_str("create index ");
            out.push_str(name);
            out.push_str(" on ");
            out.push_str(table);
        }
        Stmt::Insert { table, rows } => {
            // Row count is part of the shape: a 1-row and a 100-row
            // INSERT have very different costs.
            out.push_str("insert into ");
            out.push_str(table);
            out.push_str(" values ");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('(');
                for (j, e) in row.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    render_expr(e, out);
                }
                out.push(')');
            }
        }
        Stmt::Select(sel) => render_select(sel, out),
        Stmt::Update {
            table,
            sets,
            where_clause,
        } => {
            out.push_str("update ");
            out.push_str(table);
            out.push_str(" set ");
            for (i, (col, e)) in sets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(col);
                out.push_str(" = ");
                render_expr(e, out);
            }
            if let Some(w) = where_clause {
                out.push_str(" where ");
                render_expr(w, out);
            }
        }
        Stmt::Delete {
            table,
            where_clause,
        } => {
            out.push_str("delete from ");
            out.push_str(table);
            if let Some(w) = where_clause {
                out.push_str(" where ");
                render_expr(w, out);
            }
        }
        Stmt::Begin => out.push_str("begin"),
        Stmt::Commit => out.push_str("commit"),
        Stmt::Rollback => out.push_str("rollback"),
        Stmt::Explain { analyze, stmt } => {
            out.push_str(if *analyze {
                "explain analyze "
            } else {
                "explain "
            });
            render_stmt(stmt, out);
        }
    }
}

fn render_select(sel: &SelectStmt, out: &mut String) {
    out.push_str("select ");
    for (i, p) in sel.projections.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match p {
            Projection::Star => out.push('*'),
            Projection::Expr(e) => render_expr(e, out),
        }
    }
    out.push_str(" from ");
    out.push_str(&sel.from.name);
    if let Some(alias) = &sel.from.alias {
        out.push(' ');
        out.push_str(alias);
    }
    if let Some((t, on)) = &sel.join {
        out.push_str(" join ");
        out.push_str(&t.name);
        if let Some(alias) = &t.alias {
            out.push(' ');
            out.push_str(alias);
        }
        out.push_str(" on ");
        render_expr(on, out);
    }
    if let Some(w) = &sel.where_clause {
        out.push_str(" where ");
        render_expr(w, out);
    }
    if !sel.group_by.is_empty() {
        out.push_str(" group by ");
        out.push_str(&sel.group_by.join(", "));
    }
    if !sel.order_by.is_empty() {
        out.push_str(" order by ");
        for (i, (col, desc)) in sel.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(col);
            if *desc {
                out.push_str(" desc");
            }
        }
    }
    if sel.limit.is_some() {
        // The limit value is a literal: normalize it away too.
        out.push_str(" limit ?");
    }
    if sel.for_update {
        out.push_str(" for update");
    }
}

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Column(q, c) => {
            if let Some(q) = q {
                out.push_str(q);
                out.push('.');
            }
            out.push_str(c);
        }
        Expr::Literal(_) => out.push('?'),
        Expr::Param(p) => {
            out.push('$');
            out.push_str(&(p + 1).to_string());
        }
        Expr::Binary(l, op, r) => {
            out.push('(');
            render_expr(l, out);
            out.push(' ');
            out.push_str(op_str(*op));
            out.push(' ');
            render_expr(r, out);
            out.push(')');
        }
        Expr::Agg(f, arg) => {
            out.push_str(f.name());
            out.push('(');
            out.push_str(arg.as_deref().unwrap_or("*"));
            out.push(')');
        }
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Or => "or",
        BinOp::And => "and",
        BinOp::Eq => "=",
        BinOp::Ne => "<>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse;

    fn fp(sql: &str) -> String {
        fingerprint(&parse(sql).unwrap())
    }

    #[test]
    fn literals_whitespace_and_case_collapse() {
        let a = fp("SELECT bal FROM acct WHERE id = 7");
        let b = fp("select   BAL from ACCT\n where ID=42");
        assert_eq!(a, b);
        assert_eq!(a, "select bal from acct where (id = ?)");
        // Text and float literals normalize the same way.
        assert_eq!(
            fp("UPDATE t SET name = 'x' WHERE id = 1.5"),
            fp("update t set name='other' where id=99.0"),
        );
        // LIMIT values are literals too.
        assert_eq!(
            fp("SELECT * FROM t LIMIT 5"),
            fp("SELECT * FROM t LIMIT 500")
        );
    }

    #[test]
    fn distinct_shapes_stay_distinct() {
        let shapes = [
            fp("SELECT bal FROM acct WHERE id = 1"),
            fp("SELECT bal FROM acct WHERE id > 1"),
            fp("SELECT bal FROM acct"),
            fp("SELECT id FROM acct WHERE id = 1"),
            fp("SELECT bal FROM acct WHERE id = 1 ORDER BY bal"),
            fp("SELECT bal FROM acct WHERE id = 1 ORDER BY bal DESC"),
            fp("SELECT bal FROM other WHERE id = 1"),
            fp("DELETE FROM acct WHERE id = 1"),
            fp("EXPLAIN SELECT bal FROM acct WHERE id = 1"),
            fp("EXPLAIN ANALYZE SELECT bal FROM acct WHERE id = 1"),
        ];
        for (i, a) in shapes.iter().enumerate() {
            for (j, b) in shapes.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "shapes {i} and {j} must differ");
                }
            }
        }
    }

    #[test]
    fn params_keep_their_positions() {
        assert_eq!(
            fp("SELECT * FROM t WHERE a = $1 AND b = $2"),
            "select * from t where ((a = $1) and (b = $2))"
        );
        // A param and a literal are different shapes (prepared vs inline).
        assert_ne!(
            fp("SELECT * FROM t WHERE a = $1"),
            fp("SELECT * FROM t WHERE a = 1")
        );
    }

    #[test]
    fn joins_aggregates_and_dml_render() {
        assert_eq!(
            fp("SELECT a.x, count(*) FROM a JOIN b ON a.id = b.aid \
                WHERE a.x > 3 GROUP BY x"),
            "select a.x, count(*) from a join b on (a.id = b.aid) \
             where (a.x > ?) group by x"
        );
        assert_eq!(
            fp("INSERT INTO t VALUES (1, 'x'), ($1, 'y')"),
            "insert into t values (?, ?), ($1, ?)"
        );
    }
}
