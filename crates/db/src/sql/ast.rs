//! The abstract syntax tree for NoiseTap's SQL dialect.
//!
//! The dialect covers what the benchmark workloads (YCSB, SmallBank,
//! TATP, TPC-C, CH-benCHmark) and the examples need: DDL, single- and
//! two-table SELECT with filters/joins/aggregates/ordering/limits,
//! parameterized DML, and transaction control.

use crate::index::IndexKind;
use crate::types::{DataType, Value};

/// Binary operators, loosest-binding last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// An (unresolved) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `[table.]column`
    Column(Option<String>, String),
    Literal(Value),
    /// `$1`-style placeholder (0-based index).
    Param(usize),
    Binary(Box<Expr>, BinOp, Box<Expr>),
    /// `AGG(column)` or `COUNT(*)` (`None`).
    Agg(AggFunc, Option<String>),
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column(None, name.into())
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn bin(lhs: Expr, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary(Box::new(lhs), op, Box::new(rhs))
    }

    /// Flatten a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary(l, BinOp::And, r) => {
                let mut out = l.conjuncts();
                out.extend(r.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

/// A projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    Star,
    Expr(Expr),
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table binds in the query's scope.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub projections: Vec<Projection>,
    pub from: TableRef,
    /// `JOIN <table> ON <expr>`; at most one join (two-table queries).
    pub join: Option<(TableRef, Expr)>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<String>,
    pub order_by: Vec<(String, bool)>, // (column, descending)
    pub limit: Option<u64>,
    pub for_update: bool,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    CreateTable {
        name: String,
        columns: Vec<(String, DataType)>,
        primary_key: Vec<String>,
    },
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        kind: IndexKind,
        unique: bool,
    },
    Insert {
        table: String,
        rows: Vec<Vec<Expr>>,
    },
    Select(SelectStmt),
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        where_clause: Option<Expr>,
    },
    Delete {
        table: String,
        where_clause: Option<Expr>,
    },
    Begin,
    Commit,
    Rollback,
    /// `EXPLAIN [ANALYZE] <statement>` — the paper's §2.2 external
    /// feature-collection path: plain EXPLAIN returns the physical plan
    /// without executing; with ANALYZE the statement executes for real
    /// and each plan node is annotated with its actual virtual-clock
    /// cost and the live model's predicted cost.
    Explain {
        analyze: bool,
        stmt: Box<Stmt>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_flattening() {
        let e = Expr::bin(
            Expr::bin(Expr::col("a"), BinOp::Eq, Expr::lit(Value::Int(1))),
            BinOp::And,
            Expr::bin(
                Expr::bin(Expr::col("b"), BinOp::Gt, Expr::lit(Value::Int(2))),
                BinOp::And,
                Expr::bin(Expr::col("c"), BinOp::Lt, Expr::lit(Value::Int(3))),
            ),
        );
        assert_eq!(e.conjuncts().len(), 3);
        let single = Expr::bin(Expr::col("a"), BinOp::Or, Expr::col("b"));
        assert_eq!(single.conjuncts().len(), 1);
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef {
            name: "orders".into(),
            alias: Some("o".into()),
        };
        assert_eq!(t.binding(), "o");
        let t2 = TableRef {
            name: "orders".into(),
            alias: None,
        };
        assert_eq!(t2.binding(), "orders");
    }
}
