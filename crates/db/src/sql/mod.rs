//! SQL front end: lexer, parser, AST, and planner.

pub mod ast;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod planner;
