//! The SQL lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (kept verbatim; parser matches
    /// case-insensitively).
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// `$n` placeholder, 0-based after lexing (`$1` → `Param(0)`).
    Param(usize),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Param(p) => write!(f, "${}", p + 1),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '-' => {
                // `--` comment to end of line.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some(b'\'') => break,
                        Some(b) => {
                            s.push(*b as char);
                            j += 1;
                        }
                        None => {
                            return Err(LexError {
                                pos: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                out.push(Token::Str(s));
                i = j + 1;
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        pos: i,
                        message: "expected digits after $".into(),
                    });
                }
                let n: usize = input[start..j].parse().map_err(|_| LexError {
                    pos: i,
                    message: "parameter number out of range".into(),
                })?;
                if n == 0 {
                    return Err(LexError {
                        pos: i,
                        message: "parameters start at $1".into(),
                    });
                }
                out.push(Token::Param(n - 1));
                i = j;
            }
            '0'..='9' => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit()
                        || (bytes[j] == b'.' && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)))
                {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &input[start..j];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad float literal {text}"),
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad int literal {text}"),
                    })?));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push(Token::Ident(input[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_query() {
        let toks = lex("SELECT a.x, 'it''s' FROM t WHERE y >= $2 AND z <> 1.5;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("x".into()),
                Token::Comma,
                Token::Str("it's".into()),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("y".into()),
                Token::Ge,
                Token::Param(1),
                Token::Ident("AND".into()),
                Token::Ident("z".into()),
                Token::Ne,
                Token::Float(1.5),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT 1 -- trailing\n , 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn minus_vs_comment() {
        assert_eq!(
            lex("1 - 2").unwrap(),
            vec![Token::Int(1), Token::Minus, Token::Int(2)]
        );
    }

    #[test]
    fn errors_are_positioned() {
        let err = lex("SELECT 'oops").unwrap_err();
        assert_eq!(err.pos, 7);
        assert!(lex("SELECT $0").is_err());
        assert!(lex("SELECT #").is_err());
    }

    #[test]
    fn ne_variants() {
        assert_eq!(lex("a != b").unwrap()[1], Token::Ne);
        assert_eq!(lex("a <> b").unwrap()[1], Token::Ne);
    }
}
